//! Test-only crate; see the repository-level `tests/` directory.
