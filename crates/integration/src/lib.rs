//! Test-only crate; see the repository-level `tests/` directory.

#![forbid(unsafe_code)]
