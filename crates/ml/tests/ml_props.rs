//! Property-based tests for the ML substrate: metric identities, trainer
//! determinism, and model-invariance properties the optimizer relies on.

use co_ml::cluster::{KMeans, KMeansParams};
use co_ml::linear::{LogisticParams, LogisticRegression};
use co_ml::metrics::{
    accuracy, confusion_counts, f1_score, log_loss, precision, recall, rmse, roc_auc,
};
use co_ml::tree::{DecisionTree, TreeParams};
use co_ml::Matrix;
use proptest::prelude::*;

fn arb_labels_scores(max: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((proptest::bool::ANY, 0.0f64..1.0), 2..max).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(y, s)| (f64::from(u8::from(y)), s))
            .unzip()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auc_is_bounded_and_flip_symmetric((y, s) in arb_labels_scores(60)) {
        let auc = roc_auc(&y, &s);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating scores flips the ranking (when both classes exist).
        let n_pos = y.iter().filter(|&&v| v > 0.5).count();
        if n_pos > 0 && n_pos < y.len() {
            let flipped: Vec<f64> = s.iter().map(|v| 1.0 - v).collect();
            prop_assert!((roc_auc(&y, &flipped) - (1.0 - auc)).abs() < 1e-9);
        }
    }

    #[test]
    fn auc_is_invariant_to_monotone_transforms((y, s) in arb_labels_scores(60)) {
        let squashed: Vec<f64> = s.iter().map(|v| (5.0 * v).exp() / 200.0).collect();
        prop_assert!((roc_auc(&y, &s) - roc_auc(&y, &squashed)).abs() < 1e-9);
    }

    #[test]
    fn confusion_identities((y, s) in arb_labels_scores(60)) {
        let (tp, fp, fn_, tn) = confusion_counts(&y, &s);
        prop_assert_eq!(tp + fp + fn_ + tn, y.len());
        let acc = accuracy(&y, &s);
        prop_assert!((acc - (tp + tn) as f64 / y.len() as f64).abs() < 1e-12);
        // F1 is the harmonic mean of precision and recall.
        let (p, r) = (precision(&y, &s), recall(&y, &s));
        let f1 = f1_score(&y, &s);
        if p + r > 0.0 {
            prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        } else {
            prop_assert_eq!(f1, 0.0);
        }
    }

    #[test]
    fn log_loss_is_minimised_by_truth((y, _) in arb_labels_scores(40)) {
        // Predicting the labels exactly beats any constant prediction.
        let exact = log_loss(&y, &y);
        for c in [0.1, 0.5, 0.9] {
            let constant = vec![c; y.len()];
            prop_assert!(exact <= log_loss(&y, &constant) + 1e-12);
        }
    }

    #[test]
    fn rmse_triangle_ish(a in proptest::collection::vec(-10.0f64..10.0, 2..30)) {
        prop_assert!(rmse(&a, &a) < 1e-12);
        let shifted: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        prop_assert!((rmse(&a, &shifted) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn logistic_probability_bounds(
        xs in proptest::collection::vec(-3.0f64..3.0, 8..40),
        lr in 0.05f64..0.5,
    ) {
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&v| f64::from(v > 0.0)).collect();
        if y.iter().any(|&v| v > 0.5) && y.iter().any(|&v| v < 0.5) {
            let model = LogisticRegression::new(LogisticParams {
                lr,
                max_iter: 30,
                ..LogisticParams::default()
            })
            .fit(&x, &y)
            .unwrap();
            for p in model.predict_proba(&x) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            // Determinism.
            let again = LogisticRegression::new(LogisticParams {
                lr,
                max_iter: 30,
                ..LogisticParams::default()
            })
            .fit(&x, &y)
            .unwrap();
            prop_assert_eq!(model.state.weights, again.state.weights);
        }
    }

    #[test]
    fn tree_predictions_stay_in_target_hull(
        data in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0, 0.0f64..1.0), 6..60),
    ) {
        let x = Matrix::from_rows(&data.iter().map(|(a, b, _)| vec![*a, *b]).collect::<Vec<_>>());
        let y: Vec<f64> = data.iter().map(|(_, _, t)| *t).collect();
        let tree = DecisionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in tree.predict(&x) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
        // Tree structure is bounded by the depth.
        prop_assert!(tree.n_nodes() <= (1 << (TreeParams::default().max_depth + 1)));
    }

    #[test]
    fn kmeans_inertia_never_increases_with_k(
        data in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 8..40),
    ) {
        let x = Matrix::from_rows(&data.iter().map(|(a, b)| vec![*a, *b]).collect::<Vec<_>>());
        let fit = |k: usize| {
            KMeans::new(KMeansParams { k, max_iter: 30, seed: 7 }).fit(&x).unwrap()
        };
        let k1 = fit(1);
        let k3 = fit(3.min(x.rows()));
        // More clusters never hurt much (k-means++ is a heuristic; allow
        // a tiny tolerance).
        prop_assert!(k3.inertia <= k1.inertia + 1e-9);
        // Assignments are valid cluster indices.
        for c in k3.predict(&x) {
            prop_assert!(c < k3.centroids.rows());
        }
    }

    #[test]
    fn matrix_ops_are_consistent(
        rows in proptest::collection::vec(proptest::collection::vec(-9.0f64..9.0, 3), 1..20),
    ) {
        let m = Matrix::from_rows(&rows);
        // hstack with itself doubles the columns and keeps the rows.
        let h = m.hstack(&m).unwrap();
        prop_assert_eq!(h.cols(), 6);
        prop_assert_eq!(h.rows(), m.rows());
        // dot with a basis vector extracts the column.
        let e0 = vec![1.0, 0.0, 0.0];
        prop_assert_eq!(m.dot(&e0), m.column(0));
        // take_cols then col_means matches the slice of means.
        let means = m.col_means();
        let sub = m.take_cols(&[1, 2]);
        let sub_means = sub.col_means();
        prop_assert!((sub_means[0] - means[1]).abs() < 1e-12);
        prop_assert!((sub_means[1] - means[2]).abs() < 1e-12);
    }
}
