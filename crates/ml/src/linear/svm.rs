//! Linear support-vector classifier (hinge loss, L2 regularisation),
//! trained by full-batch subgradient descent. This is the `svm.SVC`
//! stand-in used by the paper's Listing 1 workload.

use super::{gradient_descent, init_state, sigmoid, LinearState};
use crate::error::Result;
use crate::matrix::Matrix;
use co_dataframe::hash::{self, float_digest};

/// Hyperparameters for [`LinearSvc`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmParams {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Maximum subgradient epochs.
    pub max_iter: usize,
    /// Early-stopping tolerance on the update norm.
    pub tol: f64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lr: 0.1,
            l2: 1e-3,
            max_iter: 200,
            tol: 1e-5,
        }
    }
}

impl SvmParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "lr={},l2={},max_iter={},tol={}",
            float_digest(self.lr),
            float_digest(self.l2),
            self.max_iter,
            float_digest(self.tol)
        )
    }
}

/// Linear SVM trainer.
#[derive(Debug, Clone)]
pub struct LinearSvc {
    params: SvmParams,
}

/// A trained linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    /// Weights, bias, and convergence bookkeeping.
    pub state: LinearState,
    /// The hyperparameters that produced the model.
    pub params: SvmParams,
}

impl LinearSvc {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: SvmParams) -> Self {
        LinearSvc { params }
    }

    /// Train from scratch.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<SvmModel> {
        self.fit_warm(x, y, None)
    }

    /// Train with an optional warmstart model.
    pub fn fit_warm(
        &self,
        x: &Matrix,
        y: &[f64],
        warmstart: Option<&SvmModel>,
    ) -> Result<SvmModel> {
        let init = init_state(x, y, warmstart.map(|m| &m.state))?;
        let n = x.rows() as f64;
        let l2 = self.params.l2;
        // Labels in {-1, +1} for the hinge loss.
        let signed: Vec<f64> = y
            .iter()
            .map(|&v| if v > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let state = gradient_descent(
            init,
            self.params.max_iter,
            self.params.lr,
            self.params.tol,
            |state, gw, gb| {
                let z = state.decision(x);
                for (i, zi) in z.iter().enumerate() {
                    // Subgradient of max(0, 1 - y·z).
                    if signed[i] * zi < 1.0 {
                        for (g, xij) in gw.iter_mut().zip(x.row(i)) {
                            *g -= signed[i] * xij / n;
                        }
                        *gb -= signed[i] / n;
                    }
                }
                for (g, w) in gw.iter_mut().zip(&state.weights) {
                    *g += l2 * w;
                }
            },
        );
        Ok(SvmModel {
            state,
            params: self.params.clone(),
        })
    }
}

impl SvmModel {
    /// Raw margins `x·w + b`.
    #[must_use]
    pub fn decision(&self, x: &Matrix) -> Vec<f64> {
        self.state.decision(x)
    }

    /// Pseudo-probabilities: a sigmoid over the margin (Platt-style
    /// squashing without calibration), so SVMs can be scored with AUC and
    /// log-loss alongside the other models.
    #[must_use]
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.decision(x).into_iter().map(sigmoid).collect()
    }

    /// Hard 0/1 predictions.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.decision(x)
            .into_iter()
            .map(|z| if z > 0.0 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.state.nbytes()
    }

    /// Stable digest of model type + hyperparameters.
    #[must_use]
    pub fn op_digest(params: &SvmParams) -> u64 {
        hash::fnv1a_parts(&["train_svm", &params.digest()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let t = (i % 20) as f64 / 10.0;
            if i < 20 {
                rows.push(vec![t, t + 2.0]);
                y.push(1.0);
            } else {
                rows.push(vec![t, t - 2.0]);
                y.push(0.0);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let model = LinearSvc::new(SvmParams::default()).fit(&x, &y).unwrap();
        assert!(accuracy(&y, &model.predict(&x)) > 0.95);
    }

    #[test]
    fn warmstart_reduces_epochs() {
        let (x, y) = blobs();
        let trainer = LinearSvc::new(SvmParams {
            max_iter: 1000,
            tol: 1e-7,
            ..SvmParams::default()
        });
        let cold = trainer.fit(&x, &y).unwrap();
        let warm = trainer.fit_warm(&x, &y, Some(&cold)).unwrap();
        assert!(warm.state.epochs_run <= cold.state.epochs_run);
    }

    #[test]
    fn probabilities_are_ordered_with_margin() {
        let (x, y) = blobs();
        let model = LinearSvc::new(SvmParams::default()).fit(&x, &y).unwrap();
        let margins = model.decision(&x);
        let probs = model.predict_proba(&x);
        for (m, p) in margins.iter().zip(&probs) {
            assert_eq!(*m > 0.0, *p > 0.5);
        }
    }
}
