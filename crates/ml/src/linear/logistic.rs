//! L2-regularised logistic regression trained by full-batch gradient
//! descent.

use super::{gradient_descent, init_state, sigmoid, LinearState};
use crate::error::Result;
use crate::matrix::Matrix;
use co_dataframe::hash::{self, float_digest};

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticParams {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Maximum gradient epochs.
    pub max_iter: usize,
    /// Early-stopping tolerance on the parameter update norm.
    pub tol: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            lr: 0.5,
            l2: 1e-4,
            max_iter: 200,
            tol: 1e-5,
        }
    }
}

impl LogisticParams {
    /// Stable digest of the hyperparameters (used in operation
    /// signatures).
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "lr={},l2={},max_iter={},tol={}",
            float_digest(self.lr),
            float_digest(self.l2),
            self.max_iter,
            float_digest(self.tol)
        )
    }
}

/// Logistic-regression trainer.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    params: LogisticParams,
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Weights, bias, and convergence bookkeeping.
    pub state: LinearState,
    /// The hyperparameters that produced the model.
    pub params: LogisticParams,
}

impl LogisticRegression {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: LogisticParams) -> Self {
        LogisticRegression { params }
    }

    /// Train from scratch.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<LogisticModel> {
        self.fit_warm(x, y, None)
    }

    /// Train, optionally warmstarting from a previous model's parameters
    /// (paper §6.2). The warmstart model may come from different
    /// hyperparameters; only the feature count must match.
    pub fn fit_warm(
        &self,
        x: &Matrix,
        y: &[f64],
        warmstart: Option<&LogisticModel>,
    ) -> Result<LogisticModel> {
        let init = init_state(x, y, warmstart.map(|m| &m.state))?;
        let n = x.rows() as f64;
        let l2 = self.params.l2;
        let state = gradient_descent(
            init,
            self.params.max_iter,
            self.params.lr,
            self.params.tol,
            |state, gw, gb| {
                let z = state.decision(x);
                for (i, zi) in z.iter().enumerate() {
                    let err = sigmoid(*zi) - y[i];
                    for (g, xij) in gw.iter_mut().zip(x.row(i)) {
                        *g += err * xij / n;
                    }
                    *gb += err / n;
                }
                for (g, w) in gw.iter_mut().zip(&state.weights) {
                    *g += l2 * w;
                }
            },
        );
        Ok(LogisticModel {
            state,
            params: self.params.clone(),
        })
    }
}

impl LogisticModel {
    /// Class-1 probabilities.
    #[must_use]
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.state.decision(x).into_iter().map(sigmoid).collect()
    }

    /// Hard 0/1 predictions at threshold 0.5.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.state.nbytes()
    }

    /// Stable digest of model type + hyperparameters (not the learned
    /// weights): two training operations are *the same operation* iff their
    /// digests and input artifacts agree.
    #[must_use]
    pub fn op_digest(params: &LogisticParams) -> u64 {
        hash::fnv1a_parts(&["train_logistic", &params.digest()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, roc_auc};

    fn separable() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let v = i as f64 / 25.0; // 0..2
            rows.push(vec![v, 1.0 - v]);
            y.push(if v > 1.0 { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let model = LogisticRegression::new(LogisticParams::default())
            .fit(&x, &y)
            .unwrap();
        assert!(roc_auc(&y, &model.predict_proba(&x)) > 0.99);
        assert!(accuracy(&y, &model.predict(&x)) > 0.95);
    }

    #[test]
    fn deterministic() {
        let (x, y) = separable();
        let t = LogisticRegression::new(LogisticParams::default());
        let a = t.fit(&x, &y).unwrap();
        let b = t.fit(&x, &y).unwrap();
        assert_eq!(a.state.weights, b.state.weights);
    }

    #[test]
    fn warmstart_converges_faster() {
        let (x, y) = separable();
        // Strong regularisation keeps the optimum at finite weights so the
        // cold run converges well before max_iter.
        let params = LogisticParams {
            l2: 0.1,
            max_iter: 20_000,
            tol: 1e-7,
            ..LogisticParams::default()
        };
        let trainer = LogisticRegression::new(params);
        let cold = trainer.fit(&x, &y).unwrap();
        assert!(cold.state.converged, "cold run must converge for this test");
        let warm = trainer.fit_warm(&x, &y, Some(&cold)).unwrap();
        assert!(warm.state.epochs_run < cold.state.epochs_run);
        assert!(warm.state.converged);
    }

    #[test]
    fn warmstart_improves_capped_training() {
        let (x, y) = separable();
        let capped = LogisticParams {
            max_iter: 3,
            tol: 1e-12,
            ..LogisticParams::default()
        };
        let trainer = LogisticRegression::new(capped);
        let cold = trainer.fit(&x, &y).unwrap();
        // Simulate a high-quality prior model from a longer run.
        let long = LogisticRegression::new(LogisticParams {
            max_iter: 400,
            ..LogisticParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let warm = trainer.fit_warm(&x, &y, Some(&long)).unwrap();
        let cold_auc = roc_auc(&y, &cold.predict_proba(&x));
        let warm_auc = roc_auc(&y, &warm.predict_proba(&x));
        assert!(warm_auc >= cold_auc);
    }

    #[test]
    fn incompatible_warmstart_is_rejected() {
        let (x, y) = separable();
        let trainer = LogisticRegression::new(LogisticParams::default());
        let model = trainer.fit(&x, &y).unwrap();
        let narrow = x.take_cols(&[0]);
        assert!(trainer.fit_warm(&narrow, &y, Some(&model)).is_err());
    }

    #[test]
    fn op_digest_tracks_hyperparameters() {
        let a = LogisticParams::default();
        let b = LogisticParams {
            lr: 0.1,
            ..LogisticParams::default()
        };
        assert_ne!(LogisticModel::op_digest(&a), LogisticModel::op_digest(&b));
        assert_eq!(
            LogisticModel::op_digest(&a),
            LogisticModel::op_digest(&a.clone())
        );
    }
}
