//! Ridge (L2-regularised linear) regression by full-batch gradient
//! descent. Used for regression-flavoured pipelines in the OpenML workload
//! sampler and as a warmstartable baseline trainer.

use super::{gradient_descent, init_state, LinearState};
use crate::error::Result;
use crate::matrix::Matrix;
use co_dataframe::hash::{self, float_digest};

/// Hyperparameters for [`RidgeRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeParams {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Maximum gradient epochs.
    pub max_iter: usize,
    /// Early-stopping tolerance on the update norm.
    pub tol: f64,
}

impl Default for RidgeParams {
    fn default() -> Self {
        RidgeParams {
            lr: 0.1,
            l2: 1e-4,
            max_iter: 200,
            tol: 1e-6,
        }
    }
}

impl RidgeParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "lr={},l2={},max_iter={},tol={}",
            float_digest(self.lr),
            float_digest(self.l2),
            self.max_iter,
            float_digest(self.tol)
        )
    }
}

/// Ridge-regression trainer.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    params: RidgeParams,
}

/// A trained ridge-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeModel {
    /// Weights, bias, and convergence bookkeeping.
    pub state: LinearState,
    /// The hyperparameters that produced the model.
    pub params: RidgeParams,
}

impl RidgeRegression {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: RidgeParams) -> Self {
        RidgeRegression { params }
    }

    /// Train from scratch.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<RidgeModel> {
        self.fit_warm(x, y, None)
    }

    /// Train with an optional warmstart model.
    pub fn fit_warm(
        &self,
        x: &Matrix,
        y: &[f64],
        warmstart: Option<&RidgeModel>,
    ) -> Result<RidgeModel> {
        let init = init_state(x, y, warmstart.map(|m| &m.state))?;
        let n = x.rows() as f64;
        let l2 = self.params.l2;
        let state = gradient_descent(
            init,
            self.params.max_iter,
            self.params.lr,
            self.params.tol,
            |state, gw, gb| {
                let z = state.decision(x);
                for (i, zi) in z.iter().enumerate() {
                    let err = zi - y[i];
                    for (g, xij) in gw.iter_mut().zip(x.row(i)) {
                        *g += err * xij / n;
                    }
                    *gb += err / n;
                }
                for (g, w) in gw.iter_mut().zip(&state.weights) {
                    *g += l2 * w;
                }
            },
        );
        Ok(RidgeModel {
            state,
            params: self.params.clone(),
        })
    }
}

impl RidgeModel {
    /// Predicted values.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.state.decision(x)
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.state.nbytes()
    }

    /// Stable digest of model type + hyperparameters.
    #[must_use]
    pub fn op_digest(params: &RidgeParams) -> u64 {
        hash::fnv1a_parts(&["train_ridge", &params.digest()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn fits_a_line() {
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..20).map(|i| 2.0 * (i as f64 / 10.0) + 1.0).collect();
        let model = RidgeRegression::new(RidgeParams {
            max_iter: 2000,
            ..RidgeParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        assert!(rmse(&y, &model.predict(&x)) < 0.1);
        assert!((model.state.weights[0] - 2.0).abs() < 0.3);
    }

    #[test]
    fn warmstart_continues_from_given_weights() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let y = vec![1.0, 2.0];
        let zero_iter = RidgeRegression::new(RidgeParams {
            max_iter: 0,
            ..RidgeParams::default()
        });
        let warm_src = RidgeModel {
            state: LinearState {
                weights: vec![5.0],
                bias: 1.0,
                epochs_run: 0,
                converged: false,
            },
            params: RidgeParams::default(),
        };
        let out = zero_iter.fit_warm(&x, &y, Some(&warm_src)).unwrap();
        assert_eq!(out.state.weights, vec![5.0]);
        assert_eq!(out.state.bias, 1.0);
    }
}
