//! Linear models trained by full-batch gradient descent with early
//! stopping.
//!
//! All three trainers (logistic regression, linear SVM, ridge regression)
//! share the same loop: start from zero weights *or from a warmstart model*
//! (paper §6.2), take gradient steps until the parameter change falls below
//! `tol` or `max_iter` epochs elapse, and record how many epochs ran. The
//! epoch count is what makes warmstarting observable: a warmstarted model
//! begins near an optimum, converges in fewer epochs (less compute time),
//! and — when `max_iter` caps training — ends closer to the optimum
//! (higher accuracy), which is exactly the effect Figure 10 of the paper
//! measures.

mod logistic;
mod ridge;
mod svm;

pub use logistic::{LogisticModel, LogisticParams, LogisticRegression};
pub use ridge::{RidgeModel, RidgeParams, RidgeRegression};
pub use svm::{LinearSvc, SvmModel, SvmParams};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// The trained state shared by all linear models.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearState {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
    /// Number of gradient epochs actually run.
    pub epochs_run: usize,
    /// Whether the parameter-change tolerance was reached before
    /// `max_iter`.
    pub converged: bool,
}

impl LinearState {
    /// Approximate model size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        (self.weights.len() + 1) * 8
    }

    /// Raw decision values `x·w + b`.
    #[must_use]
    pub fn decision(&self, x: &Matrix) -> Vec<f64> {
        let mut out = x.dot(&self.weights);
        for v in &mut out {
            *v += self.bias;
        }
        out
    }
}

/// Validate inputs common to all linear trainers and produce the initial
/// state (zeros, or a copy of the warmstart model's parameters).
pub(crate) fn init_state(
    x: &Matrix,
    y: &[f64],
    warmstart: Option<&LinearState>,
) -> Result<LinearState> {
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch {
            context: "linear fit labels".into(),
            expected: x.rows(),
            found: y.len(),
        });
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::DegenerateData("empty feature matrix".into()));
    }
    match warmstart {
        Some(w) => {
            if w.weights.len() != x.cols() {
                return Err(MlError::IncompatibleWarmstart(format!(
                    "warmstart has {} weights, data has {} features",
                    w.weights.len(),
                    x.cols()
                )));
            }
            Ok(LinearState {
                weights: w.weights.clone(),
                bias: w.bias,
                epochs_run: 0,
                converged: false,
            })
        }
        None => Ok(LinearState {
            weights: vec![0.0; x.cols()],
            bias: 0.0,
            epochs_run: 0,
            converged: false,
        }),
    }
}

/// Run full-batch gradient descent. `grad` fills the weight/bias gradient
/// of the loss (including regularisation) for the current state and returns
/// nothing; the loop applies the step and checks the update norm against
/// `tol`.
pub(crate) fn gradient_descent(
    mut state: LinearState,
    max_iter: usize,
    lr: f64,
    tol: f64,
    mut grad: impl FnMut(&LinearState, &mut [f64], &mut f64),
) -> LinearState {
    let mut gw = vec![0.0; state.weights.len()];
    for epoch in 0..max_iter {
        gw.iter_mut().for_each(|g| *g = 0.0);
        let mut gb = 0.0;
        grad(&state, &mut gw, &mut gb);
        let mut delta_sq = 0.0;
        for (w, g) in state.weights.iter_mut().zip(&gw) {
            let step = lr * g;
            *w -= step;
            delta_sq += step * step;
        }
        let bias_step = lr * gb;
        state.bias -= bias_step;
        delta_sq += bias_step * bias_step;
        state.epochs_run = epoch + 1;
        if delta_sq.sqrt() < tol {
            state.converged = true;
            break;
        }
    }
    state
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn init_state_validates() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(init_state(&x, &[1.0], None).is_err());
        assert!(init_state(&Matrix::zeros(0, 3), &[], None).is_err());
        let s = init_state(&x, &[0.0, 1.0], None).unwrap();
        assert_eq!(s.weights, vec![0.0]);
        let warm = LinearState {
            weights: vec![1.0, 2.0],
            bias: 0.0,
            epochs_run: 5,
            converged: true,
        };
        assert!(matches!(
            init_state(&x, &[0.0, 1.0], Some(&warm)),
            Err(MlError::IncompatibleWarmstart(_))
        ));
    }
}
