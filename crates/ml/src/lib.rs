//! # co-ml
//!
//! The machine-learning substrate of the collaborative workload optimizer:
//! a from-scratch, dependency-free analogue of the scikit-learn subset the
//! paper's workloads use (Derakhshan et al., SIGMOD 2020).
//!
//! * **Models** — logistic regression, linear SVM, ridge regression,
//!   decision trees, random forests, gradient-boosted trees. Every trainer
//!   is deterministic under a seed; the iterative trainers support
//!   **warmstarting** (paper §6.2): initialise from a previously trained
//!   model instead of from scratch, which reduces epochs-to-convergence and
//!   (under a `max_iter` cap) can improve final accuracy.
//! * **Feature operators** — standard/min-max scalers, `CountVectorizer`,
//!   `SelectKBest`, PCA, imputation, polynomial features. Feature operators
//!   consume and produce [`co_dataframe::DataFrame`]s and follow the
//!   column-id lineage rules, so their outputs participate in the
//!   storage-aware materializer's deduplication.
//! * **Metrics** — ROC AUC (the paper's score function for the Kaggle
//!   use case), accuracy, log-loss, F1, RMSE.
//! * **Model selection** — train/test split, k-fold CV, grid search.
//!
//! ```
//! use co_ml::linear::{LogisticRegression, LogisticParams};
//! use co_ml::matrix::Matrix;
//! use co_ml::metrics::roc_auc;
//!
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
//! let y = vec![0.0, 0.0, 1.0, 1.0];
//! let model = LogisticRegression::new(LogisticParams::default()).fit(&x, &y).unwrap();
//! let auc = roc_auc(&y, &model.predict_proba(&x));
//! assert!(auc > 0.9);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod dataset;
pub mod error;
pub mod feature;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod select;
pub mod tree;

pub use error::{MlError, Result};
pub use matrix::Matrix;
pub use model::{ModelKind, TrainedModel};
