//! K-means clustering (Lloyd's algorithm) — the second kind of
//! feature-engineering model the paper's data model anticipates ("a Model
//! is used either in other feature engineering operations, e.g., PCA
//! model, or to perform predictions", §4.1). Deterministic under a seed.

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use co_dataframe::hash;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyperparameters for [`KMeans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// RNG seed for centroid initialisation (k-means++-style sampling).
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams {
            k: 4,
            max_iter: 50,
            seed: 42,
        }
    }
}

impl KMeansParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!("k={},max_iter={},seed={}", self.k, self.max_iter, self.seed)
    }
}

/// K-means trainer.
#[derive(Debug, Clone)]
pub struct KMeans {
    params: KMeansParams,
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// Cluster centroids, row-major (`k x d`).
    pub centroids: Matrix,
    /// Lloyd iterations actually run.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// The hyperparameters that produced the model.
    pub params: KMeansParams,
}

impl KMeans {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: KMeansParams) -> Self {
        KMeans { params }
    }

    /// Fit centroids to the samples.
    pub fn fit(&self, x: &Matrix) -> Result<KMeansModel> {
        let (n, d) = (x.rows(), x.cols());
        if self.params.k == 0 || self.params.k > n {
            return Err(MlError::InvalidParam(format!(
                "k={} out of range for {n} samples",
                self.params.k
            )));
        }
        if d == 0 {
            return Err(MlError::DegenerateData("no features".into()));
        }
        let k = self.params.k;
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        // k-means++-style init: first centroid uniform, the rest sampled
        // proportional to squared distance from the nearest chosen one.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(x.row(rng.random_range(0..n)).to_vec());
        let mut dist2: Vec<f64> = (0..n).map(|i| sq_dist(x.row(i), &centroids[0])).collect();
        while centroids.len() < k {
            let total: f64 = dist2.iter().sum();
            let next = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &d2) in dist2.iter().enumerate() {
                    if target <= d2 {
                        chosen = i;
                        break;
                    }
                    target -= d2;
                }
                chosen
            };
            let c = x.row(next).to_vec();
            for (i, d) in dist2.iter_mut().enumerate() {
                *d = d.min(sq_dist(x.row(i), &c));
            }
            centroids.push(c);
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..self.params.max_iter {
            iterations = iter + 1;
            let mut changed = false;
            for (i, slot) in assignment.iter_mut().enumerate() {
                let (best, _) = nearest(x.row(i), &centroids);
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // Recompute centroids; empty clusters keep their position.
            let mut sums = vec![vec![0.0f64; d]; k];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assignment[i]] += 1;
                for (s, v) in sums[assignment[i]].iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cv, sv) in c.iter_mut().zip(sum) {
                        *cv = sv / count as f64;
                    }
                }
            }
            if !changed && iter > 0 {
                break;
            }
        }
        let inertia = (0..n).map(|i| nearest(x.row(i), &centroids).1).sum();
        Ok(KMeansModel {
            centroids: Matrix::from_rows(&centroids),
            iterations,
            inertia,
            params: self.params.clone(),
        })
    }
}

impl KMeansModel {
    /// Nearest-centroid index per sample.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| nearest_in(x.row(i), &self.centroids).0)
            .collect()
    }

    /// Distance to each centroid per sample (`n x k`) — the cluster
    /// features a feature-engineering step appends.
    #[must_use]
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let k = self.centroids.rows();
        let mut rows = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let row = x.row(i);
            rows.push(
                (0..k)
                    .map(|c| sq_dist(row, self.centroids.row(c)).sqrt())
                    .collect::<Vec<f64>>(),
            );
        }
        Matrix::from_rows(&rows)
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.centroids.nbytes() + 16
    }

    /// Stable digest of model type + hyperparameters.
    #[must_use]
    pub fn op_digest(params: &KMeansParams) -> u64 {
        hash::fnv1a_parts(&["train_kmeans", &params.digest()])
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(row, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn nearest_in(row: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d = sq_dist(row, centroids.row(c));
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            let center = match i % 3 {
                0 => (0.0, 0.0),
                1 => (10.0, 0.0),
                _ => (0.0, 10.0),
            };
            rows.push(vec![center.0 + jitter, center.1 - jitter]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_separated_blobs() {
        let x = blobs();
        let model = KMeans::new(KMeansParams {
            k: 3,
            ..KMeansParams::default()
        })
        .fit(&x)
        .unwrap();
        let labels = model.predict(&x);
        // All members of a blob share a label, and blobs differ.
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
        assert!(model.inertia < 1.0, "inertia = {}", model.inertia);
        assert!(model.iterations >= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let x = blobs();
        let a = KMeans::new(KMeansParams::default()).fit(&x).unwrap();
        let b = KMeans::new(KMeansParams::default()).fit(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transform_gives_k_distance_features() {
        let x = blobs();
        let model = KMeans::new(KMeansParams {
            k: 3,
            ..KMeansParams::default()
        })
        .fit(&x)
        .unwrap();
        let features = model.transform(&x);
        assert_eq!(features.rows(), 30);
        assert_eq!(features.cols(), 3);
        // The distance to the own cluster's centroid is the minimum.
        let labels = model.predict(&x);
        for i in 0..30 {
            let row = features.row(i);
            let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((row[labels[i]] - min).abs() < 1e-12);
        }
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let x = blobs();
        let k2 = KMeans::new(KMeansParams {
            k: 2,
            ..KMeansParams::default()
        })
        .fit(&x)
        .unwrap();
        let k3 = KMeans::new(KMeansParams {
            k: 3,
            ..KMeansParams::default()
        })
        .fit(&x)
        .unwrap();
        assert!(k3.inertia < k2.inertia);
    }

    #[test]
    fn validates_inputs() {
        let x = blobs();
        assert!(KMeans::new(KMeansParams {
            k: 0,
            ..KMeansParams::default()
        })
        .fit(&x)
        .is_err());
        assert!(KMeans::new(KMeansParams {
            k: 31,
            ..KMeansParams::default()
        })
        .fit(&x)
        .is_err());
    }
}
