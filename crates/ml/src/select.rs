//! Model selection: train/test splitting, k-fold cross-validation, and
//! grid search (the machinery behind the paper's Workload 5, which runs
//! random and grid search over gradient-boosted-tree hyperparameters).

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split `(x, y)` into train and test partitions with a seeded shuffle.
/// `test_fraction` must be in (0, 1).
pub fn train_test_split(
    x: &Matrix,
    y: &[f64],
    test_fraction: f64,
    seed: u64,
) -> Result<(Matrix, Vec<f64>, Matrix, Vec<f64>)> {
    if !(0.0 < test_fraction && test_fraction < 1.0) {
        return Err(MlError::InvalidParam(
            "test_fraction must be in (0, 1)".into(),
        ));
    }
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch {
            context: "train_test_split".into(),
            expected: x.rows(),
            found: y.len(),
        });
    }
    let mut indices: Vec<usize> = (0..x.rows()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((x.rows() as f64 * test_fraction).round() as usize).clamp(1, x.rows() - 1);
    let (test_idx, train_idx) = indices.split_at(n_test);
    let gather = |idx: &[usize]| -> (Matrix, Vec<f64>) {
        (x.take_rows(idx), idx.iter().map(|&i| y[i]).collect())
    };
    let (xte, yte) = gather(test_idx);
    let (xtr, ytr) = gather(train_idx);
    Ok((xtr, ytr, xte, yte))
}

/// Deterministic k-fold index sets: returns `k` (train, validation)
/// index pairs.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 || k > n {
        return Err(MlError::InvalidParam(format!(
            "k={k} out of range for n={n}"
        )));
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let val: Vec<usize> = indices.iter().copied().skip(f).step_by(k).collect();
        let train: Vec<usize> = indices
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != f)
            .map(|(_, i)| i)
            .collect();
        folds.push((train, val));
    }
    Ok(folds)
}

/// Exhaustive grid search: evaluate `fit_score(params, train, val)` on a
/// holdout split for every candidate and return the best (params index,
/// score). Higher scores win; ties go to the earlier candidate.
pub fn grid_search<P>(
    x: &Matrix,
    y: &[f64],
    candidates: &[P],
    seed: u64,
    mut fit_score: impl FnMut(&P, &Matrix, &[f64], &Matrix, &[f64]) -> Result<f64>,
) -> Result<(usize, f64)> {
    if candidates.is_empty() {
        return Err(MlError::InvalidParam("empty candidate grid".into()));
    }
    let (xtr, ytr, xval, yval) = train_test_split(x, y, 0.25, seed)?;
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in candidates.iter().enumerate() {
        let score = fit_score(p, &xtr, &ytr, &xval, &yval)?;
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((i, score));
        }
    }
    best.ok_or_else(|| MlError::InvalidParam("empty candidate grid".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LogisticParams, LogisticRegression};
    use crate::metrics::roc_auc;

    fn data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&(0..40).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..40).map(|i| if i >= 20 { 1.0 } else { 0.0 }).collect();
        (x, y)
    }

    #[test]
    fn split_partitions_all_rows() {
        let (x, y) = data();
        let (xtr, ytr, xte, yte) = train_test_split(&x, &y, 0.25, 1).unwrap();
        assert_eq!(xtr.rows() + xte.rows(), 40);
        assert_eq!(ytr.len(), xtr.rows());
        assert_eq!(yte.len(), xte.rows());
        assert_eq!(xte.rows(), 10);
        // Deterministic under seed.
        let (xtr2, ..) = train_test_split(&x, &y, 0.25, 1).unwrap();
        assert_eq!(xtr.data(), xtr2.data());
        assert!(train_test_split(&x, &y, 0.0, 1).is_err());
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = k_fold(10, 3, 0).unwrap();
        assert_eq!(folds.len(), 3);
        let mut seen = [0usize; 10];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        assert!(k_fold(3, 5, 0).is_err());
    }

    #[test]
    fn grid_search_prefers_better_hyperparameters() {
        let (x, y) = data();
        // Score with negative log-loss: unlike AUC it keeps improving with
        // more epochs, so the longer run must win strictly.
        let grid = vec![
            LogisticParams {
                max_iter: 1,
                ..LogisticParams::default()
            },
            LogisticParams {
                max_iter: 300,
                ..LogisticParams::default()
            },
        ];
        let (best, score) = grid_search(&x, &y, &grid, 7, |p, xtr, ytr, xval, yval| {
            let m = LogisticRegression::new(p.clone()).fit(xtr, ytr)?;
            Ok(-crate::metrics::log_loss(yval, &m.predict_proba(xval)))
        })
        .unwrap();
        assert_eq!(best, 1);
        assert!(score > -0.69); // better than the chance baseline ln(2)
                                // AUC still sanity-checks the winner.
        let m = LogisticRegression::new(grid[1].clone())
            .fit(&x, &y)
            .unwrap();
        assert!(roc_auc(&y, &m.predict_proba(&x)) > 0.9);
    }
}
