//! Missing-value imputation (`SimpleImputer`).

use crate::error::Result;
use co_dataframe::hash;
use co_dataframe::{Column, ColumnData, DataFrame};

/// How to fill missing (`NaN`) values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean of the present values.
    Mean,
    /// Column median of the present values.
    Median,
    /// A fixed constant.
    Constant(f64),
}

impl ImputeStrategy {
    /// Stable digest of the strategy.
    #[must_use]
    pub fn digest(&self) -> String {
        match self {
            ImputeStrategy::Mean => "mean".to_owned(),
            ImputeStrategy::Median => "median".to_owned(),
            ImputeStrategy::Constant(c) => {
                format!("const({})", hash::float_digest(*c))
            }
        }
    }
}

/// Stable operation signature for [`impute`].
#[must_use]
pub fn impute_signature(strategy: ImputeStrategy, columns: &[&str]) -> u64 {
    let digest = strategy.digest();
    let mut parts = vec!["impute", digest.as_str()];
    parts.extend_from_slice(columns);
    hash::fnv1a_parts(&parts)
}

/// Fill missing values in the named numeric columns. A column with no
/// present values is filled with zero. Unnamed columns keep their ids.
pub fn impute(df: &DataFrame, strategy: ImputeStrategy, columns: &[&str]) -> Result<DataFrame> {
    let sig = impute_signature(strategy, columns);
    let mut out = df.clone();
    for name in columns {
        let col = df.column(name)?;
        let values = col.to_f64()?;
        let mut present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let fill = match strategy {
            ImputeStrategy::Constant(c) => c,
            ImputeStrategy::Mean if present.is_empty() => 0.0,
            ImputeStrategy::Mean => present.iter().sum::<f64>() / present.len() as f64,
            ImputeStrategy::Median if present.is_empty() => 0.0,
            ImputeStrategy::Median => {
                present.sort_unstable_by(f64::total_cmp);
                let mid = present.len() / 2;
                if present.len().is_multiple_of(2) {
                    (present[mid - 1] + present[mid]) / 2.0
                } else {
                    present[mid]
                }
            }
        };
        let filled: Vec<f64> = values
            .into_iter()
            .map(|v| if v.is_nan() { fill } else { v })
            .collect();
        out = out.with_column(Column::derived(
            name,
            col.id().derive(sig),
            ColumnData::Float(filled),
        ))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source(
                "t",
                "x",
                ColumnData::Float(vec![1.0, f64::NAN, 3.0, f64::NAN]),
            ),
            Column::source("t", "k", ColumnData::Int(vec![1, 2, 3, 4])),
        ])
        .unwrap()
    }

    #[test]
    fn mean_and_median_and_constant() {
        let out = impute(&df(), ImputeStrategy::Mean, &["x"]).unwrap();
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[1.0, 2.0, 3.0, 2.0]
        );
        let out = impute(&df(), ImputeStrategy::Median, &["x"]).unwrap();
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[1.0, 2.0, 3.0, 2.0]
        );
        let out = impute(&df(), ImputeStrategy::Constant(-1.0), &["x"]).unwrap();
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[1.0, -1.0, 3.0, -1.0]
        );
    }

    #[test]
    fn all_missing_fills_zero() {
        let d = DataFrame::new(vec![Column::source(
            "t",
            "x",
            ColumnData::Float(vec![f64::NAN, f64::NAN]),
        )])
        .unwrap();
        let out = impute(&d, ImputeStrategy::Mean, &["x"]).unwrap();
        assert_eq!(out.column("x").unwrap().floats().unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn lineage_only_changes_imputed_columns() {
        let d = df();
        let out = impute(&d, ImputeStrategy::Mean, &["x"]).unwrap();
        assert_ne!(out.column("x").unwrap().id(), d.column("x").unwrap().id());
        assert_eq!(out.column("k").unwrap().id(), d.column("k").unwrap().id());
        assert_ne!(
            impute_signature(ImputeStrategy::Mean, &["x"]),
            impute_signature(ImputeStrategy::Median, &["x"])
        );
    }
}
