//! `SelectKBest`: univariate feature selection by ANOVA F-score against a
//! binary target (paper Listing 1: `SelectKBest(k=2).fit_transform(...)`).

use crate::error::{MlError, Result};
use co_dataframe::hash;
use co_dataframe::DataFrame;

/// Stable operation signature for [`select_k_best`].
#[must_use]
pub fn select_k_best_signature(k: usize, label: &str) -> u64 {
    hash::fnv1a_parts(&["select_k_best", &k.to_string(), label])
}

/// Keep the `k` numeric feature columns with the highest ANOVA F-score
/// against the binary label column. The selected columns are *projected*,
/// not transformed, so they keep their lineage ids — a selection over
/// previously materialized features is nearly free to store.
///
/// Ties and the output order follow the original column order, like
/// sklearn's `SelectKBest` (which preserves input order).
pub fn select_k_best(df: &DataFrame, label: &str, k: usize) -> Result<DataFrame> {
    if k == 0 {
        return Err(MlError::InvalidParam("k must be positive".into()));
    }
    let y = df.column(label)?.to_f64()?;
    let mut scored: Vec<(usize, f64)> = Vec::new();
    for (idx, col) in df.columns().iter().enumerate() {
        if col.name() == label {
            continue;
        }
        let Ok(values) = col.to_f64() else { continue };
        scored.push((idx, f_score(&values, &y)));
    }
    if scored.is_empty() {
        return Err(MlError::DegenerateData("no numeric feature columns".into()));
    }
    let k = k.min(scored.len());
    // Highest score first; stable by original position for determinism.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep: Vec<usize> = scored[..k].iter().map(|(i, _)| *i).collect();
    keep.sort_unstable(); // restore original column order
    let names: Vec<&str> = keep
        .iter()
        // co-lint:allow(no-panic) kept indices come from enumerating this frame
        .map(|&i| df.column_at(i).expect("index valid").name())
        .collect();
    df.select(&names).map_err(MlError::from)
}

/// One-way ANOVA F-statistic of a feature against binary classes. Missing
/// values are ignored; degenerate cases score zero.
fn f_score(values: &[f64], y: &[f64]) -> f64 {
    let mut groups: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (&v, &label) in values.iter().zip(y) {
        if !v.is_nan() {
            groups[usize::from(label > 0.5)].push(v);
        }
    }
    let (g0, g1) = (&groups[0], &groups[1]);
    if g0.len() < 2 || g1.len() < 2 {
        return 0.0;
    }
    let n = (g0.len() + g1.len()) as f64;
    let mean_all = (g0.iter().sum::<f64>() + g1.iter().sum::<f64>()) / n;
    let (m0, m1) = (
        g0.iter().sum::<f64>() / g0.len() as f64,
        g1.iter().sum::<f64>() / g1.len() as f64,
    );
    let between =
        g0.len() as f64 * (m0 - mean_all).powi(2) + g1.len() as f64 * (m1 - mean_all).powi(2);
    let within: f64 = g0.iter().map(|v| (v - m0).powi(2)).sum::<f64>()
        + g1.iter().map(|v| (v - m1).powi(2)).sum::<f64>();
    if within <= 0.0 {
        // Perfectly separated feature: arbitrarily large but finite score.
        return f64::MAX / 2.0;
    }
    (between / 1.0) / (within / (n - 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData};

    fn df() -> DataFrame {
        // "good" separates classes perfectly, "weak" partially, "noise" not.
        DataFrame::new(vec![
            Column::source(
                "t",
                "good",
                ColumnData::Float(vec![0.0, 0.1, 0.2, 5.0, 5.1, 5.2]),
            ),
            Column::source(
                "t",
                "noise",
                ColumnData::Float(vec![1.0, 2.0, 1.5, 1.2, 1.8, 1.4]),
            ),
            Column::source(
                "t",
                "weak",
                ColumnData::Float(vec![0.0, 1.0, 0.5, 0.8, 1.5, 1.2]),
            ),
            Column::source("t", "y", ColumnData::Int(vec![0, 0, 0, 1, 1, 1])),
        ])
        .unwrap()
    }

    #[test]
    fn selects_most_discriminative() {
        let out = select_k_best(&df(), "y", 1).unwrap();
        assert_eq!(out.column_names(), vec!["good"]);
        let out = select_k_best(&df(), "y", 2).unwrap();
        assert_eq!(out.column_names(), vec!["good", "weak"]);
    }

    #[test]
    fn selection_preserves_ids() {
        let d = df();
        let out = select_k_best(&d, "y", 2).unwrap();
        assert_eq!(
            out.column("good").unwrap().id(),
            d.column("good").unwrap().id()
        );
    }

    #[test]
    fn k_larger_than_features_keeps_all() {
        let out = select_k_best(&df(), "y", 99).unwrap();
        assert_eq!(out.n_cols(), 3); // label excluded
        assert!(!out.has_column("y"));
    }

    #[test]
    fn invalid_inputs() {
        assert!(select_k_best(&df(), "y", 0).is_err());
        assert!(select_k_best(&df(), "missing", 1).is_err());
    }

    #[test]
    fn f_score_degenerate_cases() {
        assert_eq!(f_score(&[1.0, 2.0], &[0.0, 0.0]), 0.0); // single class
        assert_eq!(
            f_score(&[f64::NAN, f64::NAN, 1.0, 2.0], &[0.0, 0.0, 1.0, 1.0]),
            0.0
        );
        let perfect = f_score(&[0.0, 0.0, 1.0, 1.0], &[0.0, 0.0, 1.0, 1.0]);
        assert!(perfect > 1e100); // zero within-variance
    }
}
