//! Feature-engineering operators in the scikit-learn mold. All operators
//! consume and produce [`DataFrame`]s and follow the column-id lineage
//! rules: produced columns derive their ids from the operator signature and
//! the input column ids; untouched columns keep theirs.

mod impute;
mod pca;
mod poly;
mod scaler;
mod select_kbest;
mod vectorizer;

pub use impute::{impute, impute_signature, ImputeStrategy};
pub use pca::{pca, pca_signature, PcaParams};
pub use poly::{polynomial_features, polynomial_signature};
pub use scaler::{scale, scale_signature, ScaleKind};
pub use select_kbest::{select_k_best, select_k_best_signature};
pub use vectorizer::{
    count_vectorize, count_vectorize_signature, tfidf_vectorize, tfidf_vectorize_signature,
    VectorizerParams,
};

use co_dataframe::DataFrame;

/// Names of the numeric columns of a frame (the default feature set for
/// operators that act on "all numeric columns").
#[must_use]
pub fn numeric_columns(df: &DataFrame) -> Vec<String> {
    df.columns()
        .iter()
        .filter(|c| c.to_f64().is_ok())
        .map(|c| c.name().to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData};

    #[test]
    fn numeric_columns_filters_strings() {
        let df = DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Int(vec![1])),
            Column::source("t", "s", ColumnData::Str(vec!["x".into()])),
            Column::source("t", "b", ColumnData::Bool(vec![true])),
        ])
        .unwrap();
        assert_eq!(numeric_columns(&df), vec!["a".to_owned(), "b".to_owned()]);
    }
}
