//! `CountVectorizer`: bag-of-words token counts over a text column
//! (paper Listing 1: `CountVectorizer().fit_transform(ad_desc)`).

use crate::error::{MlError, Result};
use co_dataframe::hash;
use co_dataframe::{Column, ColumnData, DataFrame};
use std::collections::HashMap;

/// Parameters for [`count_vectorize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorizerParams {
    /// Keep the `max_features` most frequent tokens (by total count, ties
    /// broken lexicographically).
    pub max_features: usize,
    /// Ignore tokens shorter than this many characters.
    pub min_token_len: usize,
}

impl Default for VectorizerParams {
    fn default() -> Self {
        VectorizerParams {
            max_features: 100,
            min_token_len: 2,
        }
    }
}

impl VectorizerParams {
    /// Stable digest of the parameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "max_features={},min_len={}",
            self.max_features, self.min_token_len
        )
    }
}

/// Stable operation signature for [`count_vectorize`].
#[must_use]
pub fn count_vectorize_signature(col: &str, params: &VectorizerParams) -> u64 {
    hash::fnv1a_parts(&["count_vectorize", col, &params.digest()])
}

/// Tokenise a string column (lowercased alphanumeric runs) and produce one
/// `Float` count column per vocabulary token, named `"{col}#{token}"`.
/// The output frame contains only the token columns (like sklearn's
/// vectorizer, which returns a document-term matrix).
pub fn count_vectorize(df: &DataFrame, col: &str, params: &VectorizerParams) -> Result<DataFrame> {
    if params.max_features == 0 {
        return Err(MlError::InvalidParam(
            "max_features must be positive".into(),
        ));
    }
    let source = df.column(col)?;
    let texts = source.strs().map_err(MlError::from)?;
    let sig = count_vectorize_signature(col, params);

    // Tokenise once, counting totals for vocabulary selection.
    let mut totals: HashMap<String, usize> = HashMap::new();
    let docs: Vec<Vec<String>> = texts
        .iter()
        .map(|t| {
            let tokens = tokenize(t, params.min_token_len);
            for tok in &tokens {
                *totals.entry(tok.clone()).or_insert(0) += 1;
            }
            tokens
        })
        .collect();

    let mut vocab: Vec<(String, usize)> = totals.into_iter().collect();
    vocab.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    vocab.truncate(params.max_features);
    if vocab.is_empty() {
        return Err(MlError::DegenerateData(format!(
            "no tokens in column {col:?}"
        )));
    }

    let index: HashMap<&str, usize> = vocab
        .iter()
        .enumerate()
        .map(|(i, (t, _))| (t.as_str(), i))
        .collect();
    let mut counts: Vec<Vec<f64>> = vec![vec![0.0; texts.len()]; vocab.len()];
    for (row, tokens) in docs.iter().enumerate() {
        for tok in tokens {
            if let Some(&j) = index.get(tok.as_str()) {
                counts[j][row] += 1.0;
            }
        }
    }

    let columns = vocab
        .iter()
        .zip(counts)
        .map(|((token, _), data)| {
            let id = source
                .id()
                .derive(hash::combine(sig, hash::fnv1a_parts(&["token", token])));
            Column::derived(&format!("{col}#{token}"), id, ColumnData::Float(data))
        })
        .collect();
    DataFrame::new(columns).map_err(MlError::from)
}

/// Stable operation signature for [`tfidf_vectorize`].
#[must_use]
pub fn tfidf_vectorize_signature(col: &str, params: &VectorizerParams) -> u64 {
    hash::fnv1a_parts(&["tfidf_vectorize", col, &params.digest()])
}

/// TF-IDF weighting over the same vocabulary selection as
/// [`count_vectorize`]: each count is scaled by
/// `ln((1 + n_docs) / (1 + doc_freq)) + 1` (sklearn's smoothed IDF).
pub fn tfidf_vectorize(df: &DataFrame, col: &str, params: &VectorizerParams) -> Result<DataFrame> {
    let counts = count_vectorize(df, col, params)?;
    let sig = tfidf_vectorize_signature(col, params);
    let n_docs = counts.n_rows() as f64;
    let source_id = df.column(col)?.id();
    let columns = counts
        .columns()
        .iter()
        .map(|c| {
            let values = c.floats().expect("count columns are floats"); // co-lint:allow(no-panic) this function built every count column as floats
            let doc_freq = values.iter().filter(|&&v| v > 0.0).count() as f64;
            let idf = ((1.0 + n_docs) / (1.0 + doc_freq)).ln() + 1.0;
            let token = c.name().rsplit('#').next().unwrap_or_default();
            let id = source_id.derive(hash::combine(sig, hash::fnv1a_parts(&["token", token])));
            Column::derived(
                c.name(),
                id,
                ColumnData::Float(values.iter().map(|v| v * idf).collect()),
            )
        })
        .collect();
    DataFrame::new(columns).map_err(MlError::from)
}

/// Lowercased alphanumeric tokens of at least `min_len` characters.
fn tokenize(text: &str, min_len: usize) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.chars().count() >= min_len.max(1))
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![Column::source(
            "t",
            "desc",
            ColumnData::Str(vec![
                "red shoes for sale".into(),
                "blue shoes, great SHOES!".into(),
                "a hat".into(),
            ]),
        )])
        .unwrap()
    }

    #[test]
    fn counts_tokens() {
        let out = count_vectorize(
            &df(),
            "desc",
            &VectorizerParams {
                max_features: 50,
                min_token_len: 2,
            },
        )
        .unwrap();
        let shoes = out.column("desc#shoes").unwrap().floats().unwrap();
        assert_eq!(shoes, &[1.0, 2.0, 0.0]); // case-insensitive, punctuation split
        assert!(out.has_column("desc#hat"));
        assert!(!out.has_column("desc#a")); // below min_token_len
    }

    #[test]
    fn vocabulary_is_capped_by_frequency() {
        let out = count_vectorize(
            &df(),
            "desc",
            &VectorizerParams {
                max_features: 1,
                min_token_len: 2,
            },
        )
        .unwrap();
        assert_eq!(out.n_cols(), 1);
        assert!(out.has_column("desc#shoes")); // most frequent token
    }

    #[test]
    fn lineage_per_token_and_deterministic() {
        let params = VectorizerParams::default();
        let a = count_vectorize(&df(), "desc", &params).unwrap();
        let b = count_vectorize(&df(), "desc", &params).unwrap();
        assert_eq!(a.column_ids(), b.column_ids());
        assert_ne!(
            a.column("desc#shoes").unwrap().id(),
            a.column("desc#hat").unwrap().id()
        );
    }

    #[test]
    fn tfidf_downweights_ubiquitous_tokens() {
        let params = VectorizerParams {
            max_features: 50,
            min_token_len: 2,
        };
        let counts = count_vectorize(&df(), "desc", &params).unwrap();
        let tfidf = tfidf_vectorize(&df(), "desc", &params).unwrap();
        assert_eq!(counts.column_names(), tfidf.column_names());
        // "shoes" appears in 2 of 3 docs, "hat" in 2 of 3, "red" in 1...
        // use "sale" (1 doc) vs "shoes" (2 docs): rarer token gets the
        // larger IDF multiplier.
        let ratio = |name: &str| {
            let c = counts.column(name).unwrap().floats().unwrap();
            let t = tfidf.column(name).unwrap().floats().unwrap();
            let (i, _) = c.iter().enumerate().find(|(_, &v)| v > 0.0).unwrap();
            t[i] / c[i]
        };
        assert!(ratio("desc#sale") > ratio("desc#shoes"));
        // Lineage differs from plain counts (a different operation).
        assert_ne!(
            counts.column("desc#shoes").unwrap().id(),
            tfidf.column("desc#shoes").unwrap().id()
        );
    }

    #[test]
    fn rejects_numeric_column_and_empty_text() {
        let d = DataFrame::new(vec![Column::source("t", "x", ColumnData::Int(vec![1]))]).unwrap();
        assert!(count_vectorize(&d, "x", &VectorizerParams::default()).is_err());
        let empty = DataFrame::new(vec![Column::source(
            "t",
            "s",
            ColumnData::Str(vec!["!!".into()]),
        )])
        .unwrap();
        assert!(count_vectorize(&empty, "s", &VectorizerParams::default()).is_err());
    }
}
