//! Degree-2 polynomial feature expansion.

use crate::error::{MlError, Result};
use co_dataframe::hash;
use co_dataframe::{Column, ColumnData, ColumnId, DataFrame};

/// Stable operation signature for [`polynomial_features`].
#[must_use]
pub fn polynomial_signature(columns: &[&str]) -> u64 {
    let mut parts = vec!["poly2"];
    parts.extend_from_slice(columns);
    hash::fnv1a_parts(&parts)
}

/// Add squared terms (`{a}^2`) and pairwise products (`{a}*{b}`) of the
/// named numeric columns. The original columns are kept untouched (ids
/// preserved); each new column derives from its source column ids.
pub fn polynomial_features(df: &DataFrame, columns: &[&str]) -> Result<DataFrame> {
    if columns.is_empty() {
        return Err(MlError::InvalidParam(
            "polynomial_features needs columns".into(),
        ));
    }
    let sig = polynomial_signature(columns);
    let mut out = df.clone();
    let values: Vec<(&str, ColumnId, Vec<f64>)> = columns
        .iter()
        .map(|&name| {
            let c = df.column(name)?;
            Ok((name, c.id(), c.to_f64()?))
        })
        .collect::<Result<_>>()?;

    for (name, id, v) in &values {
        let squared: Vec<f64> = v.iter().map(|x| x * x).collect();
        let col_sig = hash::combine(sig, hash::fnv1a_parts(&["sq", name]));
        out = out.with_column(Column::derived(
            &format!("{name}^2"),
            id.derive(col_sig),
            ColumnData::Float(squared),
        ))?;
    }
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            let (na, ia, va) = &values[i];
            let (nb, ib, vb) = &values[j];
            let product: Vec<f64> = va.iter().zip(vb.iter()).map(|(x, y)| x * y).collect();
            let col_sig = hash::combine(sig, hash::fnv1a_parts(&["cross", na, nb]));
            out = out.with_column(Column::derived(
                &format!("{na}*{nb}"),
                ColumnId::derive_many(&[*ia, *ib], col_sig),
                ColumnData::Float(product),
            ))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_squares_and_crosses() {
        let d = DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Float(vec![1.0, 2.0])),
            Column::source("t", "b", ColumnData::Float(vec![3.0, 4.0])),
        ])
        .unwrap();
        let out = polynomial_features(&d, &["a", "b"]).unwrap();
        assert_eq!(out.column("a^2").unwrap().floats().unwrap(), &[1.0, 4.0]);
        assert_eq!(out.column("b^2").unwrap().floats().unwrap(), &[9.0, 16.0]);
        assert_eq!(out.column("a*b").unwrap().floats().unwrap(), &[3.0, 8.0]);
        // Originals untouched.
        assert_eq!(out.column("a").unwrap().id(), d.column("a").unwrap().id());
        assert!(polynomial_features(&d, &[]).is_err());
    }
}
