//! Principal component analysis via power iteration with deflation —
//! dependency-free and deterministic, sufficient for the low component
//! counts the workloads use.

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use co_dataframe::hash;
use co_dataframe::{Column, ColumnData, ColumnId, DataFrame};

/// Parameters for [`pca`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcaParams {
    /// Number of components to extract.
    pub n_components: usize,
    /// Power-iteration steps per component.
    pub n_iter: usize,
}

impl Default for PcaParams {
    fn default() -> Self {
        PcaParams {
            n_components: 2,
            n_iter: 50,
        }
    }
}

impl PcaParams {
    /// Stable digest of the parameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!("k={},iter={}", self.n_components, self.n_iter)
    }
}

/// Stable operation signature for [`pca`].
#[must_use]
pub fn pca_signature(columns: &[&str], params: &PcaParams) -> u64 {
    let digest = params.digest();
    let mut parts = vec!["pca", digest.as_str()];
    parts.extend_from_slice(columns);
    hash::fnv1a_parts(&parts)
}

/// Project the named numeric columns onto their top principal components.
///
/// (Index-based loops over the covariance matrix are intentional: the
/// symmetric updates read and write both triangles.)
/// Output columns are `pc0..pc{k-1}` (`Float`), each deriving from all
/// input column ids. Missing values are treated as the column mean
/// (i.e. they contribute zero after centring).
#[allow(clippy::needless_range_loop)] // lint:reason loops index multiple matrices in lockstep
pub fn pca(df: &DataFrame, columns: &[&str], params: &PcaParams) -> Result<DataFrame> {
    if params.n_components == 0 || params.n_components > columns.len() {
        return Err(MlError::InvalidParam(format!(
            "n_components={} out of range for {} columns",
            params.n_components,
            columns.len()
        )));
    }
    let sig = pca_signature(columns, params);
    let mut ids = Vec::with_capacity(columns.len());
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(columns.len());
    for &name in columns {
        let c = df.column(name)?;
        ids.push(c.id());
        cols.push(c.to_f64()?);
    }
    let n = cols[0].len();
    if n == 0 {
        return Err(MlError::DegenerateData("pca on empty frame".into()));
    }
    // Centre; NaN -> 0 after centring.
    for col in &mut cols {
        let present: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
        let mean = if present.is_empty() {
            0.0
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        };
        for v in col.iter_mut() {
            *v = if v.is_nan() { 0.0 } else { *v - mean };
        }
    }
    let x = Matrix::from_columns(&cols)?;
    let d = columns.len();

    // Covariance matrix (d x d).
    let mut cov = vec![vec![0.0f64; d]; d];
    for i in 0..n {
        let row = x.row(i);
        for a in 0..d {
            for b in a..d {
                cov[a][b] += row[a] * row[b];
            }
        }
    }
    for a in 0..d {
        for b in 0..a {
            cov[a][b] = cov[b][a];
        }
        for b in a..d {
            cov[a][b] /= n as f64;
            if b != a {
                cov[b][a] = cov[a][b];
            }
        }
    }

    // Power iteration with deflation.
    let mut components: Vec<Vec<f64>> = Vec::with_capacity(params.n_components);
    for k in 0..params.n_components {
        // Deterministic start vector (basis-dependent, varies per k).
        let mut v: Vec<f64> = (0..d)
            .map(|i| if (i + k) % 2 == 0 { 1.0 } else { 0.5 })
            .collect();
        normalize(&mut v);
        for _ in 0..params.n_iter {
            let mut next = vec![0.0; d];
            for (a, row) in cov.iter().enumerate() {
                next[a] = row.iter().zip(&v).map(|(c, vi)| c * vi).sum();
            }
            if normalize(&mut next) < 1e-15 {
                break; // null space: keep the previous direction
            }
            v = next;
        }
        // Rayleigh quotient = eigenvalue; deflate.
        let mut cv = vec![0.0; d];
        for (a, row) in cov.iter().enumerate() {
            cv[a] = row.iter().zip(&v).map(|(c, vi)| c * vi).sum();
        }
        let lambda: f64 = cv.iter().zip(&v).map(|(a, b)| a * b).sum();
        for a in 0..d {
            for b in 0..d {
                cov[a][b] -= lambda * v[a] * v[b];
            }
        }
        components.push(v);
    }

    let base = ColumnId::derive_many(&ids, sig);
    let out_cols = components
        .iter()
        .enumerate()
        .map(|(k, comp)| {
            let scores: Vec<f64> = (0..n)
                .map(|i| x.row(i).iter().zip(comp).map(|(xv, c)| xv * c).sum())
                .collect();
            let id = base.derive(hash::fnv1a_parts(&["pc", &k.to_string()]));
            Column::derived(&format!("pc{k}"), id, ColumnData::Float(scores))
        })
        .collect();
    DataFrame::new(out_cols).map_err(MlError::from)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        // Strongly correlated a/b plus small noise dimension c.
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        let c: Vec<f64> = (0..50).map(|i| ((i * 7919) % 13) as f64 * 0.01).collect();
        DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Float(a)),
            Column::source("t", "b", ColumnData::Float(b)),
            Column::source("t", "c", ColumnData::Float(c)),
        ])
        .unwrap()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let out = pca(
            &df(),
            &["a", "b", "c"],
            &PcaParams {
                n_components: 2,
                n_iter: 100,
            },
        )
        .unwrap();
        let pc0 = out.column("pc0").unwrap().floats().unwrap();
        let a: Vec<f64> = (0..50).map(|i| i as f64 - 24.5).collect();
        // pc0 should be (anti)correlated with the dominant a/b direction.
        let corr: f64 = pc0.iter().zip(&a).map(|(x, y)| x * y).sum::<f64>()
            / (pc0.iter().map(|x| x * x).sum::<f64>().sqrt()
                * a.iter().map(|y| y * y).sum::<f64>().sqrt());
        assert!(corr.abs() > 0.99, "corr = {corr}");
    }

    #[test]
    fn components_have_decreasing_variance() {
        // Three near-orthogonal directions with well-separated scales, so
        // power iteration resolves the spectrum cleanly.
        let a: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| ((i * 13) % 7) as f64 * 3.0).collect();
        let c: Vec<f64> = (0..60).map(|i| ((i * 7) % 5) as f64 * 0.1).collect();
        let d = DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Float(a)),
            Column::source("t", "b", ColumnData::Float(b)),
            Column::source("t", "c", ColumnData::Float(c)),
        ])
        .unwrap();
        let out = pca(
            &d,
            &["a", "b", "c"],
            &PcaParams {
                n_components: 3,
                n_iter: 300,
            },
        )
        .unwrap();
        let var = |name: &str| {
            let v = out.column(name).unwrap().floats().unwrap();
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var("pc0") >= var("pc1") * 0.99);
        assert!(var("pc1") >= var("pc2") * 0.99);
        assert!(var("pc0") > var("pc2"));
    }

    #[test]
    fn deterministic_and_validated() {
        let params = PcaParams::default();
        let a = pca(&df(), &["a", "b", "c"], &params).unwrap();
        let b = pca(&df(), &["a", "b", "c"], &params).unwrap();
        assert_eq!(
            a.column("pc0").unwrap().floats().unwrap(),
            b.column("pc0").unwrap().floats().unwrap()
        );
        assert!(pca(
            &df(),
            &["a"],
            &PcaParams {
                n_components: 2,
                n_iter: 10
            }
        )
        .is_err());
        assert!(pca(
            &df(),
            &["a"],
            &PcaParams {
                n_components: 0,
                n_iter: 10
            }
        )
        .is_err());
    }
}
