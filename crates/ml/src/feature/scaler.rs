//! Column scalers (standardisation and min-max normalisation).

use crate::error::Result;
use co_dataframe::hash;
use co_dataframe::{Column, ColumnData, DataFrame};

/// Which scaling to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleKind {
    /// Zero mean, unit variance (constant columns map to zero).
    Standard,
    /// Rescale into `[0, 1]` (constant columns map to zero).
    MinMax,
}

impl ScaleKind {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScaleKind::Standard => "standard",
            ScaleKind::MinMax => "minmax",
        }
    }
}

/// Stable operation signature for [`scale`].
#[must_use]
pub fn scale_signature(kind: ScaleKind, columns: &[&str]) -> u64 {
    let mut parts = vec!["scale", kind.name()];
    parts.extend_from_slice(columns);
    hash::fnv1a_parts(&parts)
}

/// Fit-and-transform the named numeric columns in place (`NaN`s pass
/// through untouched). Unnamed columns keep their ids.
pub fn scale(df: &DataFrame, kind: ScaleKind, columns: &[&str]) -> Result<DataFrame> {
    let sig = scale_signature(kind, columns);
    let mut out = df.clone();
    for name in columns {
        let col = df.column(name)?;
        let values = col.to_f64()?;
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let scaled: Vec<f64> = match kind {
            ScaleKind::Standard => {
                let n = present.len().max(1) as f64;
                let mean = present.iter().sum::<f64>() / n;
                let std = (present.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
                values
                    .iter()
                    .map(|&v| if std > 0.0 { (v - mean) / std } else { 0.0 })
                    .collect()
            }
            ScaleKind::MinMax => {
                let lo = present.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let range = hi - lo;
                values
                    .iter()
                    .map(|&v| if range > 0.0 { (v - lo) / range } else { 0.0 })
                    .collect()
            }
        };
        out = out.with_column(Column::derived(
            name,
            col.id().derive(sig),
            ColumnData::Float(scaled),
        ))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float(vec![0.0, 5.0, 10.0])),
            Column::source("t", "c", ColumnData::Float(vec![7.0, 7.0, 7.0])),
            Column::source("t", "k", ColumnData::Int(vec![1, 2, 3])),
        ])
        .unwrap()
    }

    #[test]
    fn standard_scaling() {
        let out = scale(&df(), ScaleKind::Standard, &["x"]).unwrap();
        let v = out.column("x").unwrap().floats().unwrap();
        assert!((v[1]).abs() < 1e-12);
        assert!((v.iter().sum::<f64>()).abs() < 1e-12);
        // Untouched column keeps id.
        assert_eq!(
            out.column("k").unwrap().id(),
            df().column("k").unwrap().id()
        );
    }

    #[test]
    fn minmax_scaling() {
        let out = scale(&df(), ScaleKind::MinMax, &["x"]).unwrap();
        assert_eq!(out.column("x").unwrap().floats().unwrap(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn constant_columns_map_to_zero() {
        for kind in [ScaleKind::Standard, ScaleKind::MinMax] {
            let out = scale(&df(), kind, &["c"]).unwrap();
            assert_eq!(out.column("c").unwrap().floats().unwrap(), &[0.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn nan_passes_through_standard() {
        let d = DataFrame::new(vec![Column::source(
            "t",
            "x",
            ColumnData::Float(vec![0.0, f64::NAN, 10.0]),
        )])
        .unwrap();
        let out = scale(&d, ScaleKind::Standard, &["x"]).unwrap();
        let v = out.column("x").unwrap().floats().unwrap();
        assert!(v[1].is_nan());
        assert!((v[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn signature_distinguishes_kind_and_columns() {
        assert_ne!(
            scale_signature(ScaleKind::Standard, &["x"]),
            scale_signature(ScaleKind::MinMax, &["x"])
        );
        assert_ne!(
            scale_signature(ScaleKind::Standard, &["x"]),
            scale_signature(ScaleKind::Standard, &["y"])
        );
    }
}
