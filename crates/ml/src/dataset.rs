//! Conversion between dataframes and training matrices.

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use co_dataframe::DataFrame;

/// A supervised training set: features plus binary/real labels.
#[derive(Debug, Clone)]
pub struct Supervised {
    /// Feature matrix (one row per sample).
    pub x: Matrix,
    /// Labels.
    pub y: Vec<f64>,
    /// Feature column names, aligned with matrix columns.
    pub feature_names: Vec<String>,
}

/// Build a supervised set from a frame: every numeric column except the
/// label becomes a feature (`NaN`s are replaced by the column mean so the
/// linear trainers stay finite; tree models see the imputed value too,
/// keeping all models comparable).
pub fn supervised(df: &DataFrame, label: &str) -> Result<Supervised> {
    let y = df.column(label)?.to_f64()?;
    let mut feature_names = Vec::new();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for col in df.columns() {
        if col.name() == label {
            continue;
        }
        let Ok(mut values) = col.to_f64() else {
            continue;
        };
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let mean = if present.is_empty() {
            0.0
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        };
        for v in &mut values {
            if v.is_nan() {
                *v = mean;
            }
        }
        feature_names.push(col.name().to_owned());
        columns.push(values);
    }
    if columns.is_empty() {
        return Err(MlError::DegenerateData("no numeric feature columns".into()));
    }
    if y.iter().any(|v| v.is_nan()) {
        return Err(MlError::DegenerateData(format!(
            "label column {label:?} has missing values"
        )));
    }
    Ok(Supervised {
        x: Matrix::from_columns(&columns)?,
        y,
        feature_names,
    })
}

/// Feature-only matrix from all numeric columns (`NaN` -> column mean).
pub fn features_only(df: &DataFrame) -> Result<Matrix> {
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for col in df.columns() {
        let Ok(mut values) = col.to_f64() else {
            continue;
        };
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let mean = if present.is_empty() {
            0.0
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        };
        for v in &mut values {
            if v.is_nan() {
                *v = mean;
            }
        }
        columns.push(values);
    }
    if columns.is_empty() {
        return Err(MlError::DegenerateData("no numeric columns".into()));
    }
    Matrix::from_columns(&columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::{Column, ColumnData};

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Float(vec![1.0, f64::NAN, 3.0])),
            Column::source("t", "s", ColumnData::Str(vec!["x".into(); 3])),
            Column::source("t", "y", ColumnData::Int(vec![0, 1, 1])),
        ])
        .unwrap()
    }

    #[test]
    fn builds_supervised_set() {
        let s = supervised(&df(), "y").unwrap();
        assert_eq!(s.feature_names, vec!["a".to_owned()]);
        assert_eq!(s.x.rows(), 3);
        assert_eq!(s.x.get(1, 0), 2.0); // NaN -> mean of {1, 3}
        assert_eq!(s.y, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_missing_labels_and_no_features() {
        let d = DataFrame::new(vec![
            Column::source("t", "y", ColumnData::Float(vec![f64::NAN])),
            Column::source("t", "a", ColumnData::Float(vec![1.0])),
        ])
        .unwrap();
        assert!(supervised(&d, "y").is_err());
        let d = DataFrame::new(vec![
            Column::source("t", "s", ColumnData::Str(vec!["x".into()])),
            Column::source("t", "y", ColumnData::Int(vec![1])),
        ])
        .unwrap();
        assert!(supervised(&d, "y").is_err());
    }

    #[test]
    fn features_only_covers_numerics() {
        let m = features_only(&df()).unwrap();
        assert_eq!(m.cols(), 2); // a and y (both numeric)
    }
}
