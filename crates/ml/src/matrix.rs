//! A dense, row-major `f64` matrix — the feature-matrix representation all
//! trainers consume. Deliberately minimal: rows are contiguous so the hot
//! loops (dot products per sample) are cache-friendly and auto-vectorise.

use crate::error::{MlError, Result};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::ShapeMismatch {
                context: "Matrix::from_vec".into(),
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from row slices (all rows must have equal length).
    ///
    /// Panics if rows are ragged; use in tests and small literals.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Build column-wise: each input vector becomes a column.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self> {
        let rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(MlError::ShapeMismatch {
                    context: format!("Matrix::from_columns (column {i})"),
                    expected: rows,
                    found: c.len(),
                });
            }
        }
        let cols = columns.len();
        let mut data = vec![0.0; rows * cols];
        for (j, c) in columns.iter().enumerate() {
            for (i, &v) in c.iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// One row as a contiguous slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Copy of column `j`.
    #[must_use]
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// `x · w` for each row (no bias term).
    #[must_use]
    pub fn dot(&self, w: &[f64]) -> Vec<f64> {
        debug_assert_eq!(w.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(w).map(|(x, wi)| x * wi).sum())
            .collect()
    }

    /// Gather a subset of rows into a new matrix.
    #[must_use]
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Gather a subset of columns into a new matrix.
    #[must_use]
    pub fn take_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            data.extend(indices.iter().map(|&j| row[j]));
        }
        Matrix {
            data,
            rows: self.rows,
            cols: indices.len(),
        }
    }

    /// Horizontally stack two matrices with equal row counts.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(MlError::ShapeMismatch {
                context: "Matrix::hstack".into(),
                expected: self.rows,
                found: other.rows,
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix {
            data,
            rows: self.rows,
            cols,
        })
    }

    /// Per-column means.
    #[must_use]
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (m, x) in means.iter_mut().zip(self.row(i)) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Per-column population standard deviations.
    #[must_use]
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut vars = vec![0.0; self.cols];
        for i in 0..self.rows {
            for ((v, x), m) in vars.iter_mut().zip(self.row(i)).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        vars.iter().map(|v| (v / self.rows as f64).sqrt()).collect()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
        assert!(Matrix::from_vec(vec![1.0; 3], 2, 2).is_err());
    }

    #[test]
    fn from_columns_transposes() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 3.0]);
        assert_eq!(m.row(1), &[2.0, 4.0]);
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn dot_products() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.dot(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn stacking_and_slicing() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.row(0), &[1.0, 3.0]);
        assert_eq!(h.take_rows(&[1]).row(0), &[2.0, 4.0]);
        assert_eq!(h.take_cols(&[1]).row(1), &[4.0]);
        let c = Matrix::zeros(3, 1);
        assert!(a.hstack(&c).is_err());
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        assert_eq!(m.col_stds(), vec![1.0, 0.0]);
    }
}
