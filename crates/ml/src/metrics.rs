//! Evaluation metrics. The paper's materializer assumes "there exists an
//! evaluation function that assigns a score to ML models" (§5); for the
//! Kaggle use case that score is ROC AUC.

/// Area under the ROC curve for binary labels (`0.0`/`1.0`) and real-valued
/// scores. Computed via the rank statistic with midrank tie handling.
/// Returns 0.5 when only one class is present.
#[must_use]
pub fn roc_auc(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "roc_auc length mismatch");
    let n_pos = y_true.iter().filter(|&&y| y > 0.5).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending; average ranks across ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y > 0.5)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

/// Fraction of predictions matching the labels (predictions are
/// thresholded at 0.5).
#[must_use]
pub fn accuracy(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "accuracy length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true
        .iter()
        .zip(scores)
        .filter(|(&y, &s)| (s > 0.5) == (y > 0.5))
        .count();
    correct as f64 / y_true.len() as f64
}

/// Binary cross-entropy of probabilistic scores (clipped to avoid infinite
/// loss).
#[must_use]
pub fn log_loss(y_true: &[f64], probs: &[f64]) -> f64 {
    assert_eq!(y_true.len(), probs.len(), "log_loss length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = y_true
        .iter()
        .zip(probs)
        .map(|(&y, &p)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    total / y_true.len() as f64
}

/// F1 score of the positive class (threshold 0.5). Zero when there are no
/// positive predictions or labels.
#[must_use]
pub fn f1_score(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "f1 length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&y, &s) in y_true.iter().zip(scores) {
        let (actual, pred) = (y > 0.5, s > 0.5);
        match (actual, pred) {
            (true, true) => tp += 1.0,
            (false, true) => fp += 1.0,
            (true, false) => fn_ += 1.0,
            (false, false) => {}
        }
    }
    // co-lint:allow(float-eq) tp counts by +1.0 increments, exact in f64
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Confusion counts at threshold 0.5: (true positives, false positives,
/// false negatives, true negatives).
#[must_use]
pub fn confusion_counts(y_true: &[f64], scores: &[f64]) -> (usize, usize, usize, usize) {
    assert_eq!(y_true.len(), scores.len(), "confusion length mismatch");
    let (mut tp, mut fp, mut fn_, mut tn) = (0, 0, 0, 0);
    for (&y, &s) in y_true.iter().zip(scores) {
        match (y > 0.5, s > 0.5) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    (tp, fp, fn_, tn)
}

/// Precision of the positive class (0 when nothing is predicted
/// positive).
#[must_use]
pub fn precision(y_true: &[f64], scores: &[f64]) -> f64 {
    let (tp, fp, ..) = confusion_counts(y_true, scores);
    if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    }
}

/// Recall of the positive class (0 when there are no positives).
#[must_use]
pub fn recall(y_true: &[f64], scores: &[f64]) -> f64 {
    let (tp, _, fn_, _) = confusion_counts(y_true, scores);
    if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    }
}

/// Root mean squared error.
#[must_use]
pub fn rmse(y_true: &[f64], preds: &[f64]) -> f64 {
    assert_eq!(y_true.len(), preds.len(), "rmse length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let mse: f64 = y_true
        .iter()
        .zip(preds)
        .map(|(&y, &p)| (y - p) * (y - p))
        .sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
        assert_eq!(roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]), 0.5);
    }

    #[test]
    fn auc_handles_ties_and_single_class() {
        let y = [0.0, 1.0, 1.0];
        let auc = roc_auc(&y, &[0.5, 0.5, 0.9]);
        assert!((auc - 0.75).abs() < 1e-12);
        assert_eq!(roc_auc(&[1.0, 1.0], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn accuracy_and_f1() {
        let y = [0.0, 1.0, 1.0, 0.0];
        let s = [0.2, 0.9, 0.4, 0.1];
        assert_eq!(accuracy(&y, &s), 0.75);
        let f1 = f1_score(&y, &s);
        assert!((f1 - (2.0 * 1.0 * 0.5 / 1.5)).abs() < 1e-12);
        assert_eq!(f1_score(&y, &[0.0; 4]), 0.0);
    }

    #[test]
    fn log_loss_is_finite_at_extremes() {
        let loss = log_loss(&[1.0, 0.0], &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(loss < 1e-10);
        let bad = log_loss(&[1.0], &[0.0]);
        assert!(bad.is_finite() && bad > 10.0);
    }

    #[test]
    fn confusion_precision_recall() {
        let y = [1.0, 1.0, 0.0, 0.0, 1.0];
        let s = [0.9, 0.2, 0.8, 0.1, 0.7];
        assert_eq!(confusion_counts(&y, &s), (2, 1, 1, 1));
        assert!((precision(&y, &s) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall(&y, &s) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision(&y, &[0.0; 5]), 0.0);
        assert_eq!(recall(&[0.0; 5], &[0.9; 5]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 4.0]), 2.0f64.sqrt());
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
