//! The unified trained-model artifact type stored in the Experiment Graph.
//!
//! An Experiment Graph vertex that represents a model needs four things
//! (paper §3.2): the model content (weights/trees), its *type* and
//! *hyperparameters* (meta-data used to find warmstart candidates), its
//! size, and its evaluation score. [`TrainedModel`] carries the first
//! three; the score lives on the graph vertex because it depends on the
//! evaluation dataset.

use crate::linear::{LogisticModel, RidgeModel, SvmModel};
use crate::matrix::Matrix;
use crate::tree::{DecisionTree, ForestModel, GbtModel};

/// Model family, used for warmstart-candidate matching (paper §6.2: "a
/// warmstarting candidate is a model that is trained on the same artifact
/// and is of the same type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression.
    Logistic,
    /// Linear SVM.
    Svm,
    /// Ridge regression.
    Ridge,
    /// Single decision tree.
    Tree,
    /// Random forest.
    Forest,
    /// Gradient-boosted trees.
    Gbt,
}

impl ModelKind {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Logistic => "logistic",
            ModelKind::Svm => "svm",
            ModelKind::Ridge => "ridge",
            ModelKind::Tree => "tree",
            ModelKind::Forest => "forest",
            ModelKind::Gbt => "gbt",
        }
    }

    /// Whether trainers of this kind accept a warmstart initialiser.
    /// Bagged forests and single trees are not iterative, so they cannot
    /// be warmstarted (users must flag this per operation, per paper §4.2).
    #[must_use]
    pub fn warmstartable(self) -> bool {
        matches!(
            self,
            ModelKind::Logistic | ModelKind::Svm | ModelKind::Ridge | ModelKind::Gbt
        )
    }
}

/// A trained model of any supported family.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainedModel {
    /// Logistic regression.
    Logistic(LogisticModel),
    /// Linear SVM.
    Svm(SvmModel),
    /// Ridge regression.
    Ridge(RidgeModel),
    /// Single decision tree (leaf means as probabilities).
    Tree(DecisionTree),
    /// Random forest.
    Forest(ForestModel),
    /// Gradient-boosted trees.
    Gbt(GbtModel),
}

impl TrainedModel {
    /// The model family.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        match self {
            TrainedModel::Logistic(_) => ModelKind::Logistic,
            TrainedModel::Svm(_) => ModelKind::Svm,
            TrainedModel::Ridge(_) => ModelKind::Ridge,
            TrainedModel::Tree(_) => ModelKind::Tree,
            TrainedModel::Forest(_) => ModelKind::Forest,
            TrainedModel::Gbt(_) => ModelKind::Gbt,
        }
    }

    /// Probabilistic (or real-valued, for ridge) predictions.
    #[must_use]
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        match self {
            TrainedModel::Logistic(m) => m.predict_proba(x),
            TrainedModel::Svm(m) => m.predict_proba(x),
            TrainedModel::Ridge(m) => m.predict(x),
            TrainedModel::Tree(m) => m.predict(x),
            TrainedModel::Forest(m) => m.predict_proba(x),
            TrainedModel::Gbt(m) => m.predict_proba(x),
        }
    }

    /// Hard 0/1 predictions (ridge thresholds its real output at 0.5).
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Serialization envelope: a persisted model carries metadata,
    /// hyperparameters, and format overhead beyond its raw parameters
    /// (a pickled sklearn estimator is KBs even for a 10-weight model).
    pub const ENVELOPE_BYTES: usize = 4096;

    /// Approximate content size in bytes — the `s` attribute of the
    /// model's Experiment Graph vertex.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        Self::ENVELOPE_BYTES
            + match self {
                TrainedModel::Logistic(m) => m.nbytes(),
                TrainedModel::Svm(m) => m.nbytes(),
                TrainedModel::Ridge(m) => m.nbytes(),
                TrainedModel::Tree(m) => m.nbytes(),
                TrainedModel::Forest(m) => m.nbytes(),
                TrainedModel::Gbt(m) => m.nbytes(),
            }
    }

    /// Hyperparameter digest — part of the model vertex meta-data.
    #[must_use]
    pub fn params_digest(&self) -> String {
        match self {
            TrainedModel::Logistic(m) => m.params.digest(),
            TrainedModel::Svm(m) => m.params.digest(),
            TrainedModel::Ridge(m) => m.params.digest(),
            TrainedModel::Tree(_) => "tree".to_owned(),
            TrainedModel::Forest(m) => m.params.digest(),
            TrainedModel::Gbt(m) => m.params.digest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LogisticParams, LogisticRegression};
    use crate::tree::{GbtParams, GradientBoosting};

    fn data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..20).map(|i| if i >= 10 { 1.0 } else { 0.0 }).collect();
        (x, y)
    }

    #[test]
    fn wraps_models_uniformly() {
        let (x, y) = data();
        let lr = LogisticRegression::new(LogisticParams::default())
            .fit(&x, &y)
            .unwrap();
        let gbt = GradientBoosting::new(GbtParams::default())
            .fit(&x, &y)
            .unwrap();
        for (model, kind) in [
            (TrainedModel::Logistic(lr), ModelKind::Logistic),
            (TrainedModel::Gbt(gbt), ModelKind::Gbt),
        ] {
            assert_eq!(model.kind(), kind);
            assert!(model.nbytes() > 0);
            assert_eq!(model.predict_proba(&x).len(), 20);
            let preds = model.predict(&x);
            assert!(preds.iter().all(|&p| p == 0.0 || p == 1.0));
        }
    }

    #[test]
    fn warmstartability_flags() {
        assert!(ModelKind::Logistic.warmstartable());
        assert!(ModelKind::Gbt.warmstartable());
        assert!(!ModelKind::Forest.warmstartable());
        assert!(!ModelKind::Tree.warmstartable());
    }
}
