//! Error type for ML training and transformation.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// Errors produced by trainers, transformers, and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Feature matrix and label vector lengths disagree, or a matrix shape
    /// is inconsistent.
    ShapeMismatch {
        context: String,
        expected: usize,
        found: usize,
    },
    /// Training data is empty or degenerate (e.g. a single class).
    DegenerateData(String),
    /// A hyperparameter is out of range.
    InvalidParam(String),
    /// An underlying dataframe error.
    Frame(co_dataframe::DfError),
    /// A warmstart initialiser is incompatible with the training task
    /// (wrong feature count or model type).
    IncompatibleWarmstart(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, found {found}"
                )
            }
            MlError::DegenerateData(msg) => write!(f, "degenerate training data: {msg}"),
            MlError::InvalidParam(msg) => write!(f, "invalid hyperparameter: {msg}"),
            MlError::Frame(e) => write!(f, "dataframe error: {e}"),
            MlError::IncompatibleWarmstart(msg) => write!(f, "incompatible warmstart: {msg}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<co_dataframe::DfError> for MlError {
    fn from(e: co_dataframe::DfError) -> Self {
        MlError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MlError::ShapeMismatch {
            context: "fit".into(),
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("fit"));
        let e = MlError::from(co_dataframe::DfError::ColumnNotFound("x".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
