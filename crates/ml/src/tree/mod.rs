//! Decision trees (CART-style regression trees) and the ensembles built on
//! them. A single tree minimises squared error with quantile-candidate
//! splits; classification uses the 0/1-target regression tree whose leaf
//! means are class probabilities.

mod forest;
mod gbt;

pub use forest::{ForestModel, ForestParams, RandomForest};
pub use gbt::{GbtModel, GbtParams, GradientBoosting};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use co_dataframe::hash::{self, float_digest};

/// Hyperparameters for a single decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds examined per feature (quantiles of the
    /// observed values).
    pub n_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_leaf: 2,
            n_thresholds: 16,
        }
    }
}

impl TreeParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "depth={},min_leaf={},thresholds={}",
            self.max_depth, self.min_samples_leaf, self.n_thresholds
        )
    }
}

/// One node of a tree arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree. `NaN` feature values follow the right branch
/// (comparisons with `NaN` are false), deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fit a regression tree to `(x, targets)` with squared-error splits.
    pub fn fit(x: &Matrix, targets: &[f64], params: &TreeParams) -> Result<DecisionTree> {
        if x.rows() != targets.len() {
            return Err(MlError::ShapeMismatch {
                context: "DecisionTree::fit".into(),
                expected: x.rows(),
                found: targets.len(),
            });
        }
        if x.rows() == 0 {
            return Err(MlError::DegenerateData("empty training set".into()));
        }
        if params.min_samples_leaf == 0 || params.n_thresholds == 0 {
            return Err(MlError::InvalidParam(
                "min_samples_leaf and n_thresholds must be positive".into(),
            ));
        }
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        // Column-major copy: the split search scans one feature across
        // all rows, which on the row-major matrix is a stride-`cols`
        // cache miss per access. One transpose per fit makes every scan
        // contiguous.
        let columns: Vec<Vec<f64>> = (0..x.cols()).map(|j| x.column(j)).collect();
        let all: Vec<usize> = (0..x.rows()).collect();
        tree.build(&columns, targets, &all, params.max_depth, params);
        Ok(tree)
    }

    /// Recursively grow the subtree over `rows`; returns the node index.
    fn build(
        &mut self,
        columns: &[Vec<f64>],
        targets: &[f64],
        rows: &[usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = rows.iter().map(|&i| targets[i]).sum::<f64>() / rows.len() as f64;
        if depth == 0 || rows.len() < 2 * params.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = best_split(columns, targets, rows, params) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&i| columns[feature][i] <= threshold);
        // Reserve our slot before recursing so children land after us.
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.build(columns, targets, &left_rows, depth - 1, params);
        let right = self.build(columns, targets, &right_rows, depth - 1, params);
        self.nodes[idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }

    /// Predict one sample.
    #[must_use]
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict all samples.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of features the tree was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Approximate size in bytes (feature index + threshold + 2 child
    /// indices per node).
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.nodes.len() * 32
    }
}

/// Find the squared-error-minimising `(feature, threshold)` split, or
/// `None` if no split improves on the parent.
///
/// Histogram-style search: per feature, candidate thresholds come from a
/// deterministic subsample of the values (capped, so candidate selection
/// is O(1) per node for large nodes), and one accumulation pass buckets
/// every row — O(rows · log thresholds) instead of O(rows · thresholds).
fn best_split(
    columns: &[Vec<f64>],
    targets: &[f64],
    rows: &[usize],
    params: &TreeParams,
) -> Option<(usize, f64)> {
    let total_sum: f64 = rows.iter().map(|&i| targets[i]).sum();
    let total_sq: f64 = rows.iter().map(|&i| targets[i] * targets[i]).sum();
    let n = rows.len() as f64;
    let parent_sse = total_sq - total_sum * total_sum / n;

    // Deterministic value subsample for threshold candidates.
    const CANDIDATE_SAMPLE: usize = 256;
    let stride = (rows.len() / CANDIDATE_SAMPLE).max(1);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut candidates: Vec<f64> = Vec::with_capacity(CANDIDATE_SAMPLE);
    // Per-bucket accumulators: bucket k holds rows with
    // candidates[k-1] < value <= candidates[k]; bucket over the end holds
    // the rest (including NaN, which routes right).
    let mut bucket_sum = vec![0.0f64; params.n_thresholds + 1];
    let mut bucket_sq = vec![0.0f64; params.n_thresholds + 1];
    let mut bucket_n = vec![0usize; params.n_thresholds + 1];

    for (feature, column) in columns.iter().enumerate() {
        candidates.clear();
        candidates.extend(
            rows.iter()
                .step_by(stride)
                .map(|&i| column[i])
                .filter(|v| !v.is_nan()),
        );
        if candidates.len() < 2 {
            continue;
        }
        candidates.sort_unstable_by(f64::total_cmp);
        candidates.dedup();
        if candidates.len() < 2 {
            continue;
        }
        // Thin to at most n_thresholds evenly spaced quantiles, dropping
        // the maximum (an always-left split is useless).
        if candidates.len() > params.n_thresholds {
            let step = candidates.len() as f64 / params.n_thresholds as f64;
            let thinned: Vec<f64> = (0..params.n_thresholds)
                .map(|k| candidates[(k as f64 * step) as usize])
                .collect();
            candidates = thinned;
            candidates.dedup();
        } else {
            candidates.pop();
        }
        let n_cand = candidates.len();

        for b in 0..=n_cand {
            bucket_sum[b] = 0.0;
            bucket_sq[b] = 0.0;
            bucket_n[b] = 0;
        }
        for &i in rows {
            let v = column[i];
            // partition_point: first candidate >= v means v <= candidate.
            let b = if v.is_nan() {
                n_cand
            } else {
                candidates.partition_point(|&c| c < v)
            };
            let t = targets[i];
            bucket_sum[b] += t;
            bucket_sq[b] += t * t;
            bucket_n[b] += 1;
        }

        // Prefix-scan the buckets: after bucket k, the left side contains
        // every row with value <= candidates[k].
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        let mut left_n = 0usize;
        for (k, &threshold) in candidates.iter().enumerate() {
            left_sum += bucket_sum[k];
            left_sq += bucket_sq[k];
            left_n += bucket_n[k];
            let right_n = rows.len() - left_n;
            if left_n < params.min_samples_leaf || right_n < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n as f64)
                + (right_sq - right_sum * right_sum / right_n as f64);
            if best.as_ref().is_none_or(|(_, _, b)| sse < *b) {
                best = Some((feature, threshold, sse));
            }
        }
    }
    match best {
        Some((f, t, sse)) if sse < parent_sse - 1e-12 => Some((f, t)),
        _ => None,
    }
}

/// Stable digest of a tree-training operation.
#[must_use]
pub fn tree_op_digest(params: &TreeParams) -> u64 {
    hash::fnv1a_parts(&["train_tree", &params.digest()])
}

/// Render a float list digest (used by ensemble params).
pub(crate) fn f(x: f64) -> String {
    float_digest(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> (Matrix, Vec<f64>) {
        // A quadrant problem: positive iff x0 > 0.5 AND x1 > 0.5.
        // Needs depth >= 2, but (unlike pure XOR) the first greedy
        // squared-error split already has gain.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = (i as f64 / 3.0, j as f64 / 3.0);
                rows.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 });
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_quadrant_with_enough_depth() {
        let (x, y) = xor_ish();
        let params = TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            n_thresholds: 8,
        };
        let tree = DecisionTree::fit(&x, &y, &params).unwrap();
        let preds = tree.predict(&x);
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 0.01, "pred {p} vs {t}");
        }
    }

    #[test]
    fn pure_xor_defeats_greedy_splitting() {
        // Documents a known CART property: on a perfectly balanced XOR no
        // single split reduces SSE, so the greedy tree stays a leaf.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0.0, 1.0, 1.0, 0.0];
        let params = TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            n_thresholds: 8,
        };
        let tree = DecisionTree::fit(&Matrix::from_rows(&rows), &y, &params).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let (x, y) = xor_ish();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&x, &y, &params).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        // Quadrant data: 4 of 16 points are positive.
        assert!((tree.predict_one(&[0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_target_stays_a_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![7.0; 4];
        let tree = DecisionTree::fit(&x, &y, &TreeParams::default()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn nan_features_route_right() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.1], vec![0.9]]);
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let params = TreeParams {
            max_depth: 2,
            min_samples_leaf: 1,
            n_thresholds: 8,
        };
        let tree = DecisionTree::fit(&x, &y, &params).unwrap();
        let p = tree.predict_one(&[f64::NAN]);
        // NaN compares false with any threshold -> right branch (the
        // high-value side here).
        assert!(p > 0.5);
    }

    #[test]
    fn input_validation() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        assert!(DecisionTree::fit(&x, &[1.0, 2.0], &TreeParams::default()).is_err());
        assert!(DecisionTree::fit(
            &x,
            &[1.0],
            &TreeParams {
                min_samples_leaf: 0,
                ..TreeParams::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let (x, y) = xor_ish();
        let params = TreeParams::default();
        let a = DecisionTree::fit(&x, &y, &params).unwrap();
        let b = DecisionTree::fit(&x, &y, &params).unwrap();
        assert_eq!(a, b);
    }
}
