//! Random forest classifier: bagged regression trees on 0/1 targets with
//! per-tree feature subsampling; the prediction is the mean of the trees'
//! leaf probabilities.

use super::{DecisionTree, TreeParams};
use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use co_dataframe::hash;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Hyperparameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Fraction of features examined by each tree (0 < f <= 1).
    pub feature_fraction: f64,
    /// RNG seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_estimators: 20,
            tree: TreeParams::default(),
            feature_fraction: 0.7,
            seed: 42,
        }
    }
}

impl ForestParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "n={},{},ff={},seed={}",
            self.n_estimators,
            self.tree.digest(),
            super::f(self.feature_fraction),
            self.seed
        )
    }
}

/// Random-forest trainer.
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: ForestParams,
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestModel {
    trees: Vec<(Vec<usize>, DecisionTree)>, // (feature subset, tree)
    /// The hyperparameters that produced the model.
    pub params: ForestParams,
}

impl RandomForest {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: ForestParams) -> Self {
        RandomForest { params }
    }

    /// Train on binary labels (0/1).
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<ForestModel> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                context: "RandomForest::fit".into(),
                expected: x.rows(),
                found: y.len(),
            });
        }
        if self.params.n_estimators == 0 {
            return Err(MlError::InvalidParam(
                "n_estimators must be positive".into(),
            ));
        }
        if !(self.params.feature_fraction > 0.0 && self.params.feature_fraction <= 1.0) {
            return Err(MlError::InvalidParam(
                "feature_fraction must be in (0, 1]".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n_sub =
            ((x.cols() as f64 * self.params.feature_fraction).ceil() as usize).clamp(1, x.cols());
        let mut trees = Vec::with_capacity(self.params.n_estimators);
        for _ in 0..self.params.n_estimators {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..x.rows())
                .map(|_| rng.random_range(0..x.rows()))
                .collect();
            // Feature subset.
            let mut features: Vec<usize> = (0..x.cols()).collect();
            features.shuffle(&mut rng);
            features.truncate(n_sub);
            features.sort_unstable();
            let xb = x.take_rows(&rows).take_cols(&features);
            let yb: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
            let tree = DecisionTree::fit(&xb, &yb, &self.params.tree)?;
            trees.push((features, tree));
        }
        Ok(ForestModel {
            trees,
            params: self.params.clone(),
        })
    }
}

impl ForestModel {
    /// Mean leaf probability across trees.
    #[must_use]
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        for (features, tree) in &self.trees {
            let sub = x.take_cols(features);
            for (a, p) in acc.iter_mut().zip(tree.predict(&sub)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        acc.iter().map(|v| (v / n).clamp(0.0, 1.0)).collect()
    }

    /// Hard 0/1 predictions.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.trees
            .iter()
            .map(|(features, t)| features.len() * 8 + t.nbytes())
            .sum()
    }

    /// Stable digest of model type + hyperparameters.
    #[must_use]
    pub fn op_digest(params: &ForestParams) -> u64 {
        hash::fnv1a_parts(&["train_forest", &params.digest()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn rings() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let angle = i as f64 * 0.5;
            let radius = if i % 2 == 0 { 1.0 } else { 3.0 };
            rows.push(vec![radius * angle.cos(), radius * angle.sin()]);
            y.push(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = rings();
        let model = RandomForest::new(ForestParams {
            n_estimators: 15,
            feature_fraction: 1.0,
            ..ForestParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        assert!(roc_auc(&y, &model.predict_proba(&x)) > 0.95);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = rings();
        let p = ForestParams {
            n_estimators: 5,
            ..ForestParams::default()
        };
        let a = RandomForest::new(p.clone()).fit(&x, &y).unwrap();
        let b = RandomForest::new(p.clone()).fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        let c = RandomForest::new(ForestParams { seed: 7, ..p })
            .fit(&x, &y)
            .unwrap();
        assert_ne!(a.predict_proba(&x), c.predict_proba(&x));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = rings();
        let model = RandomForest::new(ForestParams::default())
            .fit(&x, &y)
            .unwrap();
        for p in model.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let (x, y) = rings();
        assert!(RandomForest::new(ForestParams {
            n_estimators: 0,
            ..ForestParams::default()
        })
        .fit(&x, &y)
        .is_err());
        assert!(RandomForest::new(ForestParams {
            feature_fraction: 0.0,
            ..ForestParams::default()
        })
        .fit(&x, &y)
        .is_err());
    }
}
