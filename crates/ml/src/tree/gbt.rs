//! Gradient-boosted trees for binary classification (logistic loss,
//! squared-error trees fitted to pseudo-residuals, shrinkage). The "GBT"
//! the paper's Kaggle workloads train. Warmstarting continues boosting
//! from an existing ensemble's trees.

use super::{DecisionTree, TreeParams};
use crate::error::{MlError, Result};
use crate::linear::sigmoid;
use crate::matrix::Matrix;
use co_dataframe::hash;

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbtParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage (learning rate) applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree parameters.
    pub tree: TreeParams,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_estimators: 30,
            learning_rate: 0.2,
            tree: TreeParams::default(),
        }
    }
}

impl GbtParams {
    /// Stable digest of the hyperparameters.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            "n={},lr={},{}",
            self.n_estimators,
            super::f(self.learning_rate),
            self.tree.digest()
        )
    }
}

/// Gradient-boosting trainer.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    params: GbtParams,
}

/// A trained gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GbtModel {
    /// Initial log-odds.
    base_score: f64,
    trees: Vec<DecisionTree>,
    /// The hyperparameters that produced the model.
    pub params: GbtParams,
}

impl GradientBoosting {
    /// Create a trainer with the given hyperparameters.
    #[must_use]
    pub fn new(params: GbtParams) -> Self {
        GradientBoosting { params }
    }

    /// Train on binary labels.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<GbtModel> {
        self.fit_warm(x, y, None)
    }

    /// Train, optionally continuing from an existing ensemble: the
    /// warmstart model's trees (up to `n_estimators`, and only if they were
    /// grown with the same tree parameters on the same feature count) seed
    /// the ensemble and boosting continues for the remaining rounds.
    pub fn fit_warm(
        &self,
        x: &Matrix,
        y: &[f64],
        warmstart: Option<&GbtModel>,
    ) -> Result<GbtModel> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                context: "GradientBoosting::fit".into(),
                expected: x.rows(),
                found: y.len(),
            });
        }
        if x.rows() == 0 {
            return Err(MlError::DegenerateData("empty training set".into()));
        }
        if self.params.n_estimators == 0 {
            return Err(MlError::InvalidParam(
                "n_estimators must be positive".into(),
            ));
        }

        let pos = y.iter().filter(|&&v| v > 0.5).count() as f64;
        let rate = (pos / y.len() as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();

        let mut trees: Vec<DecisionTree> = Vec::with_capacity(self.params.n_estimators);
        if let Some(prior) = warmstart {
            if prior.trees.iter().any(|t| t.n_features() != x.cols()) {
                return Err(MlError::IncompatibleWarmstart(format!(
                    "warmstart trees expect {} features, data has {}",
                    prior.trees.first().map_or(0, DecisionTree::n_features),
                    x.cols()
                )));
            }
            if prior.params.tree == self.params.tree
                && (prior.params.learning_rate - self.params.learning_rate).abs() < 1e-12
            {
                trees.extend(prior.trees.iter().take(self.params.n_estimators).cloned());
            }
            // Different tree shapes: silently cold-start (the caller asked
            // for these hyperparameters; the prior is unusable).
        }

        // Current margin per sample: base + lr * sum(tree predictions).
        let mut margin = vec![base_score; x.rows()];
        for tree in &trees {
            for (m, p) in margin.iter_mut().zip(tree.predict(x)) {
                *m += self.params.learning_rate * p;
            }
        }

        for _ in trees.len()..self.params.n_estimators {
            let residuals: Vec<f64> = margin
                .iter()
                .zip(y)
                .map(|(&m, &yi)| yi - sigmoid(m))
                .collect();
            let tree = DecisionTree::fit(x, &residuals, &self.params.tree)?;
            for (m, p) in margin.iter_mut().zip(tree.predict(x)) {
                *m += self.params.learning_rate * p;
            }
            trees.push(tree);
        }
        Ok(GbtModel {
            base_score,
            trees,
            params: self.params.clone(),
        })
    }
}

impl GbtModel {
    /// Class-1 probabilities.
    #[must_use]
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let mut margin = vec![self.base_score; x.rows()];
        for tree in &self.trees {
            for (m, p) in margin.iter_mut().zip(tree.predict(x)) {
                *m += self.params.learning_rate * p;
            }
        }
        margin.into_iter().map(sigmoid).collect()
    }

    /// Hard 0/1 predictions.
    #[must_use]
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Number of boosting rounds in the ensemble.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Approximate size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        8 + self.trees.iter().map(DecisionTree::nbytes).sum::<usize>()
    }

    /// Stable digest of model type + hyperparameters.
    #[must_use]
    pub fn op_digest(params: &GbtParams) -> u64 {
        hash::fnv1a_parts(&["train_gbt", &params.digest()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{log_loss, roc_auc};

    fn moons() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let t = i as f64 / 50.0 * std::f64::consts::PI;
            if i % 2 == 0 {
                rows.push(vec![t.cos(), t.sin()]);
                y.push(0.0);
            } else {
                rows.push(vec![1.0 - t.cos(), 0.5 - t.sin()]);
                y.push(1.0);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_moons() {
        let (x, y) = moons();
        let model = GradientBoosting::new(GbtParams::default())
            .fit(&x, &y)
            .unwrap();
        assert!(roc_auc(&y, &model.predict_proba(&x)) > 0.95);
    }

    #[test]
    fn more_rounds_reduce_train_loss() {
        let (x, y) = moons();
        let small = GradientBoosting::new(GbtParams {
            n_estimators: 3,
            ..GbtParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let large = GradientBoosting::new(GbtParams {
            n_estimators: 40,
            ..GbtParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        assert!(log_loss(&y, &large.predict_proba(&x)) < log_loss(&y, &small.predict_proba(&x)));
    }

    #[test]
    fn warmstart_extends_ensemble_identically() {
        let (x, y) = moons();
        let params10 = GbtParams {
            n_estimators: 10,
            ..GbtParams::default()
        };
        let params25 = GbtParams {
            n_estimators: 25,
            ..GbtParams::default()
        };
        let first = GradientBoosting::new(params10).fit(&x, &y).unwrap();
        let warm = GradientBoosting::new(params25.clone())
            .fit_warm(&x, &y, Some(&first))
            .unwrap();
        let cold = GradientBoosting::new(params25).fit(&x, &y).unwrap();
        assert_eq!(warm.n_trees(), 25);
        // Boosting is deterministic, so continuing from the first 10 trees
        // reproduces the cold-start 25-tree model exactly.
        assert_eq!(warm.predict_proba(&x), cold.predict_proba(&x));
    }

    #[test]
    fn warmstart_with_different_tree_shape_cold_starts() {
        let (x, y) = moons();
        let deep = GradientBoosting::new(GbtParams {
            n_estimators: 5,
            tree: TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
            ..GbtParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let shallow = GradientBoosting::new(GbtParams {
            n_estimators: 5,
            ..GbtParams::default()
        });
        let model = shallow.fit_warm(&x, &y, Some(&deep)).unwrap();
        let cold = shallow.fit(&x, &y).unwrap();
        assert_eq!(model.predict_proba(&x), cold.predict_proba(&x));
    }

    #[test]
    fn feature_count_mismatch_rejected() {
        let (x, y) = moons();
        let model = GradientBoosting::new(GbtParams::default())
            .fit(&x, &y)
            .unwrap();
        let narrow = x.take_cols(&[0]);
        assert!(GradientBoosting::new(GbtParams::default())
            .fit_warm(&narrow, &y, Some(&model))
            .is_err());
    }
}
