//! Suppression comments: `// co-lint:allow(<rule>[,<rule>…]) <reason>`.
//!
//! A suppression covers its own line **and the next line**, so it can
//! either trail the offending code or sit on its own line directly
//! above it. The reason is mandatory — a reasonless allow is itself a
//! violation (rule `allow-reason`), because an unexplained suppression
//! is exactly the silent convention-erosion this linter exists to
//! stop. Rule names must be real: suppressing a rule the linter does
//! not have is reported rather than ignored, so typos cannot quietly
//! disable nothing.

use crate::lexer::Comment;
use crate::rules::RULES;

/// One parsed `co-lint:allow` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule names inside the parentheses.
    pub rules: Vec<String>,
    /// Justification text after the closing parenthesis.
    pub reason: String,
    /// Set when a rule actually used this suppression (for the
    /// unused-suppression report and the suppressed count).
    pub used: std::cell::Cell<bool>,
}

/// Problems with the markers themselves (missing reason, unknown
/// rule); reported under the `allow-reason` rule.
#[derive(Debug)]
pub struct MarkerIssue {
    pub line: u32,
    pub message: String,
}

const MARKER: &str = "co-lint:allow";

/// Scan the comment list for suppression markers.
#[must_use]
pub fn scan(comments: &[Comment]) -> (Vec<Suppression>, Vec<MarkerIssue>) {
    let mut sups = Vec::new();
    let mut issues = Vec::new();
    for c in comments {
        if c.doc {
            // Doc comments describe the marker syntax; they never
            // *are* markers.
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[at + MARKER.len()..];
        let Some(open) = rest.find('(') else {
            issues.push(MarkerIssue {
                line: c.line,
                message: "malformed co-lint:allow marker: expected `(<rule>)` after it".into(),
            });
            continue;
        };
        // Nothing but whitespace may sit between the marker and `(`.
        if !rest[..open].trim().is_empty() {
            issues.push(MarkerIssue {
                line: c.line,
                message: "malformed co-lint:allow marker: expected `(<rule>)` after it".into(),
            });
            continue;
        }
        let Some(close) = rest[open..].find(')') else {
            issues.push(MarkerIssue {
                line: c.line,
                message: "malformed co-lint:allow marker: unclosed rule list".into(),
            });
            continue;
        };
        let rules: Vec<String> = rest[open + 1..open + close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[open + close + 1..].trim().to_owned();
        if rules.is_empty() {
            issues.push(MarkerIssue {
                line: c.line,
                message: "co-lint:allow names no rule".into(),
            });
            continue;
        }
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                issues.push(MarkerIssue {
                    line: c.line,
                    message: format!(
                        "co-lint:allow names unknown rule `{r}` (known: {})",
                        RULES.join(", ")
                    ),
                });
            }
        }
        if reason.is_empty() {
            issues.push(MarkerIssue {
                line: c.line,
                message: format!(
                    "co-lint:allow({}) carries no reason — every suppression must say why",
                    rules.join(",")
                ),
            });
            continue;
        }
        sups.push(Suppression {
            line: c.line,
            rules,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    (sups, issues)
}

/// Whether a violation of `rule` at `line` is suppressed; marks the
/// matching suppression used.
#[must_use]
pub fn covers(sups: &[Suppression], rule: &str, line: u32) -> bool {
    for s in sups {
        if (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule) {
            s.used.set(true);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_marker_with_reason() {
        let l = lex("x(); // co-lint:allow(no-panic) startup only, config is validated\n");
        let (sups, issues) = scan(&l.comments);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rules, ["no-panic"]);
        assert!(sups[0].reason.contains("startup"));
        assert!(covers(&sups, "no-panic", 1));
        assert!(covers(&sups, "no-panic", 2));
        assert!(!covers(&sups, "no-panic", 3));
        assert!(!covers(&sups, "float-eq", 1));
    }

    #[test]
    fn reasonless_marker_is_an_issue_not_a_suppression() {
        let l = lex("// co-lint:allow(no-panic)\nx();");
        let (sups, issues) = scan(&l.comments);
        assert!(sups.is_empty());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_is_an_issue() {
        let l = lex("// co-lint:allow(no-such-rule) because\nx();");
        let (_, issues) = scan(&l.comments);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("unknown rule"));
    }

    #[test]
    fn multi_rule_marker() {
        let l = lex("// co-lint:allow(no-panic, lossy-cast) both fine here\n");
        let (sups, issues) = scan(&l.comments);
        assert!(issues.is_empty(), "{issues:?}");
        assert!(covers(&sups, "no-panic", 2));
        assert!(covers(&sups, "lossy-cast", 2));
    }
}
