//! Token-stream structure recovery: just enough syntax to scope the
//! rules correctly without a parser.
//!
//! From the flat token list the linter reconstructs three things:
//!
//! * a **test mask** — which tokens sit inside `#[cfg(test)]` items,
//!   `#[test]`/`#[bench]` functions, or anything else gated on a
//!   `cfg` that mentions `test`. Rules about production code skip
//!   masked tokens.
//! * **function spans** — which enclosing `fn` body each token
//!   belongs to, so rules that reason about "two acquisitions in the
//!   same function" can group call sites.
//! * **brace depth** per token, for scope-lifetime reasoning (a lock
//!   guard bound at depth `d` dies when the depth drops below `d`).
//!
//! All three are approximations (closures are not separate functions,
//! a `fn` nested in a `fn` folds into its parent), which is the right
//! trade-off for a linter: the rules that consume them are heuristics
//! with an explicit suppression escape hatch, documented in
//! `DESIGN.md` §16.

use crate::lexer::{Tok, TokKind};

/// Per-token structural facts, index-aligned with the token list.
pub struct Structure {
    /// Token is inside test-gated code.
    pub test_mask: Vec<bool>,
    /// Id of the innermost `fn` whose body holds the token
    /// (`usize::MAX` when at item level, outside any body).
    pub fn_id: Vec<usize>,
    /// Brace depth *before* the token is processed.
    pub depth: Vec<u32>,
}

/// Whether the attribute starting at `toks[i]` (which must be `#`)
/// gates on test: `#[test]`, `#[bench]`, or any `#[cfg(… test …)]`.
/// Returns the token index one past the closing `]` when it does.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks[i].is_punct("#") {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct("!")) {
        // Inner attribute `#![…]` — applies to the enclosing item,
        // not the next one; never treated as a test gate here.
        return None;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("[")) {
        return None;
    }
    j += 1;
    let mut depth = 1u32;
    let mut gated = false;
    let mut head: Option<&str> = None;
    while let Some(t) = toks.get(j) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            if head.is_none() {
                head = Some(&t.text);
            }
            if t.text == "test" || t.text == "bench" {
                gated = true;
            }
        }
        j += 1;
    }
    let end = j + 1;
    match head {
        Some("test" | "bench") => Some(end),
        Some("cfg" | "cfg_attr") if gated => Some(end),
        _ => None,
    }
}

/// The token index one past the item that starts at `toks[i]`: either
/// the terminating `;` (a use/decl item) or the matching `}` of the
/// first `{` block. Attributes and doc comments between the gate and
/// the item are included.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip any further attributes before the item keyword.
    while toks.get(i).is_some_and(|t| t.is_punct("#")) {
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 1u32;
            j += 1;
            while let Some(t) = toks.get(j) {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            break;
        }
    }
    let mut depth = 0u32;
    while let Some(t) = toks.get(i) {
        if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Recover the structural facts for a token stream.
#[must_use]
pub fn analyze(toks: &[Tok]) -> Structure {
    let n = toks.len();
    let mut test_mask = vec![false; n];
    let mut fn_id = vec![usize::MAX; n];
    let mut depth = vec![0u32; n];

    // Test regions: each test-gating attribute masks through its item.
    let mut i = 0;
    while i < n {
        if let Some(end) = test_attr_end(toks, i) {
            let stop = item_end(toks, end);
            for m in &mut test_mask[i..stop] {
                *m = true;
            }
            i = stop;
        } else {
            i += 1;
        }
    }

    // Brace depth and fn spans in one pass. A `fn` keyword arms a
    // pending function; the next `{` at or below the depth where the
    // signature started opens its body. `fn` pointer types (`fn(` in
    // type position) never arm because they are followed by `(`, not
    // an identifier.
    let mut d = 0u32;
    let mut next_fn = 0usize;
    // Stack of (fn id, depth its body opened at).
    let mut stack: Vec<(usize, u32)> = Vec::new();
    let mut pending: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        depth[i] = d;
        if t.is_punct("{") {
            d += 1;
            if let Some(id) = pending.take() {
                stack.push((id, d));
            }
        } else if t.is_punct("}") {
            d = d.saturating_sub(1);
            if stack.last().is_some_and(|&(_, bd)| d < bd) {
                stack.pop();
            }
        } else if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            pending = Some(next_fn);
            next_fn += 1;
        }
        if let Some(&(id, _)) = stack.last() {
            fn_id[i] = id;
        }
    }

    Structure {
        test_mask,
        fn_id,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let l = lex(src);
        let s = analyze(&l.toks);
        l.toks
            .iter()
            .zip(&s.test_mask)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, m)| (t.text.clone(), *m))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() {} }\nfn live2() {}";
        let m = masked_idents(src);
        assert!(m.contains(&("live".into(), false)));
        assert!(m.contains(&("dead".into(), true)));
        assert!(m.contains(&("live2".into(), false)));
    }

    #[test]
    fn test_fn_with_attrs_between_is_masked() {
        let src = "#[test]\n#[ignore]\nfn a_test() { x(); }\nfn live() {}";
        let m = masked_idents(src);
        assert!(m.contains(&("a_test".into(), true)));
        assert!(m.contains(&("x".into(), true)));
        assert!(m.contains(&("live".into(), false)));
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn gated() {}\nfn live() {}";
        let m = masked_idents(src);
        assert!(m.contains(&("gated".into(), true)));
        assert!(m.contains(&("live".into(), false)));
    }

    #[test]
    fn cfg_not_test_related_is_not_masked() {
        let src = "#[cfg(feature = \"fast\")]\nfn live() {}";
        let m = masked_idents(src);
        assert!(m.contains(&("live".into(), false)));
    }

    #[test]
    fn fn_spans_group_tokens() {
        let src = "fn a() { one(); }\nfn b() { two(); }";
        let l = lex(src);
        let s = analyze(&l.toks);
        let find = |name: &str| {
            l.toks
                .iter()
                .position(|t| t.is_ident(name))
                .map(|i| s.fn_id[i])
                .unwrap()
        };
        assert_ne!(find("one"), usize::MAX);
        assert_ne!(find("one"), find("two"));
        // Item-level tokens belong to no fn.
        assert_eq!(s.fn_id[0], usize::MAX);
    }

    #[test]
    fn depth_tracks_braces() {
        let l = lex("fn a() { { deep(); } }");
        let s = analyze(&l.toks);
        let i = l.toks.iter().position(|t| t.is_ident("deep")).unwrap();
        assert_eq!(s.depth[i], 2);
    }
}
