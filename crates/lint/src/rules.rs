//! The rule set: eight diagnostics encoding the workspace's
//! hand-maintained concurrency and durability invariants.
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `shard-lock-order`    | cross-shard write locks are acquired in ascending index order (PR 8's deadlock-freedom argument) |
//! | `vfs-bypass`          | every durability byte in `co_graph` flows through `vfs` so `IoFault` injection covers it (PR 9) |
//! | `no-panic`            | non-test, non-bench code never panics — typed errors only (PRs 6, 9) |
//! | `lossy-cast`          | row/byte/shard quantities are not silently truncated by `as` casts |
//! | `blocking-under-lock` | no sleeps or ad-hoc file I/O while a shard lock guard is live |
//! | `relaxed-control`     | `Ordering::Relaxed` loads never steer control flow |
//! | `float-eq`            | kernel code never compares floats with `==`/`!=` |
//! | `allow-reason`        | every `#[allow(...)]` and every `co-lint:allow` carries a written reason |
//!
//! Every rule is a token-level heuristic: it can over-approximate
//! (flag a site that is actually fine) but each has a suppression
//! escape hatch that *forces the author to write down why* — turning
//! tribal knowledge into greppable annotations. The heuristics'
//! exact shapes (receiver-name matching, statement spans) are
//! documented per-rule below and in `DESIGN.md` §16.

use crate::context::Structure;
use crate::lexer::{Comment, Tok, TokKind};

/// The canonical rule names, in catalog order.
pub const RULES: [&str; 8] = [
    "shard-lock-order",
    "vfs-bypass",
    "no-panic",
    "lossy-cast",
    "blocking-under-lock",
    "relaxed-control",
    "float-eq",
    "allow-reason",
];

/// One rule violation before suppression filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [Comment],
    pub st: &'a Structure,
}

impl FileCtx<'_> {
    fn is_bench(&self) -> bool {
        self.path.starts_with("crates/bench/") || self.path.contains("/benches/")
    }

    fn is_graph_durability(&self) -> bool {
        self.path.starts_with("crates/graph/src/") && !self.path.ends_with("/vfs.rs")
    }

    fn is_kernel(&self) -> bool {
        self.path.starts_with("crates/dataframe/src/") || self.path.starts_with("crates/ml/src/")
    }
}

/// Run every rule over one file.
#[must_use]
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    shard_lock_order(ctx, &mut out);
    vfs_bypass(ctx, &mut out);
    no_panic(ctx, &mut out);
    lossy_cast(ctx, &mut out);
    blocking_under_lock(ctx, &mut out);
    relaxed_control(ctx, &mut out);
    float_eq(ctx, &mut out);
    allow_reason(ctx, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

/// The identifier naming the receiver of the method call whose `.`
/// sits at `dot`: `eg.write(..)` → `eg`; `server.shards().write(..)`
/// → `shards` (the call producing the receiver). `None` when the
/// receiver is an arbitrary expression.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    let prev = dot.checked_sub(1)?;
    let t = &toks[prev];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(")") {
        // Walk back over the balanced call parens to the callee name.
        let mut depth = 1i32;
        let mut i = prev;
        while depth > 0 {
            i = i.checked_sub(1)?;
            if toks[i].is_punct(")") {
                depth += 1;
            } else if toks[i].is_punct("(") {
                depth -= 1;
            }
        }
        let callee = i.checked_sub(1)?;
        if toks[callee].kind == TokKind::Ident {
            return Some(toks[callee].text.clone());
        }
    }
    None
}

/// Whether a receiver name plausibly denotes the sharded Experiment
/// Graph (`eg`, `shards`, `sharded_eg`, …). The rules only reason
/// about lock calls on such receivers, so `file.write(buf)` and
/// `reader.read(&mut b)` stay out of scope.
fn is_sharded_receiver(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n == "eg" || n.contains("shard")
}

/// Parse a single-token integer literal (strips `_` and suffixes).
fn int_value(t: &Tok) -> Option<u64> {
    if t.kind != TokKind::Int {
        return None;
    }
    let digits: String = t
        .text
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .filter(|c| *c != '_')
        .collect();
    digits.parse().ok()
}

/// The token index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

// ---------------------------------------------------------------- L1

/// `shard-lock-order`: two or more `.write(k)` calls on a sharded
/// receiver inside one function must be provably ascending — all
/// indices constant and strictly increasing in source order. A
/// non-constant index among multiple acquisitions is flagged as
/// unprovable: such code must go through `write_set`, whose runtime
/// assertion (and the lock-order witness) enforces the protocol.
fn shard_lock_order(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.toks;
    // (fn id, line, Some(const index) | None)
    let mut acquisitions: Vec<(usize, u32, Option<u64>)> = Vec::new();
    for i in 1..toks.len() {
        if !(toks[i].is_ident("write")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks[i - 1].is_punct("."))
            || ctx.st.test_mask[i]
        {
            continue;
        }
        let Some(recv) = receiver_name(toks, i - 1) else {
            continue;
        };
        if !is_sharded_receiver(&recv) {
            continue;
        }
        let close = matching_close(toks, i + 1);
        let arg = &toks[i + 2..close];
        let value = match arg {
            [t] => int_value(t),
            _ => None,
        };
        acquisitions.push((ctx.st.fn_id[i], toks[i].line, value));
    }
    let mut by_fn: std::collections::BTreeMap<usize, Vec<(u32, Option<u64>)>> =
        std::collections::BTreeMap::new();
    for (f, line, v) in acquisitions {
        by_fn.entry(f).or_default().push((line, v));
    }
    for calls in by_fn.values() {
        if calls.len() < 2 {
            continue;
        }
        if calls.iter().any(|(_, v)| v.is_none()) {
            for (line, v) in calls {
                if v.is_none() {
                    out.push(Violation {
                        rule: "shard-lock-order",
                        line: *line,
                        message: "multiple shard write-lock acquisitions in one function with a \
                                  non-constant index are not provably in ascending order — \
                                  acquire the whole set via write_set(&[..]) instead"
                            .into(),
                    });
                }
            }
            continue;
        }
        for w in calls.windows(2) {
            let (al, av) = (w[0].0, w[0].1.unwrap_or(0));
            let (bl, bv) = (w[1].0, w[1].1.unwrap_or(0));
            if bv <= av {
                out.push(Violation {
                    rule: "shard-lock-order",
                    line: bl,
                    message: format!(
                        "shard {bv} write-locked after shard {av} (line {al}): cross-shard \
                         write locks must be acquired in strictly ascending index order"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L2

/// `vfs-bypass`: direct `std::fs` / `File::` / `OpenOptions` use in
/// `co_graph` modules (everything under `crates/graph/src` except
/// `vfs.rs`, the choke point itself). I/O that bypasses `vfs` is
/// invisible to `IoFault` injection, so the chaos suites silently
/// stop covering it.
fn vfs_bypass(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.is_graph_durability() {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.st.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let next_is_path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let prev_is_path = i > 0 && toks[i - 1].is_punct("::");
        let hit = (t.is_ident("fs") && next_is_path)
            || (t.is_ident("File") && next_is_path && !prev_is_path)
            || t.is_ident("OpenOptions");
        if hit {
            out.push(Violation {
                rule: "vfs-bypass",
                line: t.line,
                message: format!(
                    "direct `{}` I/O in a durability module bypasses co_graph::vfs — IoFault \
                     injection (ENOSPC, EIO, short writes, fsync poisoning) cannot reach it; \
                     route the operation through vfs::*",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L3

/// `no-panic`: `unwrap` / `expect` / `panic!` / `todo!` in non-test,
/// non-bench code. A panic in a worker tears down the request (or,
/// under a lock, poisons the whole server); production paths return
/// typed errors.
fn no_panic(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if ctx.is_bench() {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.st.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let next = toks.get(i + 1);
        let what = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && next.is_some_and(|n| n.is_punct("("))
            && i > 0
            && toks[i - 1].is_punct(".")
        {
            Some(format!("`.{}()`", t.text))
        } else if (t.is_ident("panic") || t.is_ident("todo"))
            && next.is_some_and(|n| n.is_punct("!"))
            && !(i > 0 && toks[i - 1].is_punct("::"))
        {
            Some(format!("`{}!`", t.text))
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Violation {
                rule: "no-panic",
                line: t.line,
                message: format!(
                    "{what} in non-test code: this path panics the worker instead of returning \
                     a typed error — convert to a Result (or justify with co-lint:allow(no-panic))"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L4

/// Quantity-ish identifier names whose truncation is a correctness
/// bug waiting for a big dataset: row counts, byte sizes, shard
/// indices, sequence numbers, offsets.
fn is_quantity_name(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    const WORDS: [&str; 11] = [
        "row", "byte", "len", "size", "count", "shard", "seq", "offset", "idx", "index", "total",
    ];
    WORDS.iter().any(|w| n.contains(w))
}

/// `lossy-cast`: `quantity as <narrower-int>` silently truncates.
/// Casts already covered by a justified
/// `#[allow(clippy::cast_possible_truncation/…)]` (which the
/// `allow-reason` rule forces to carry a reason) are exempt, so one
/// written justification satisfies both linters.
fn lossy_cast(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize"];
    let toks = ctx.toks;
    // Lines reachable from a cast-related clippy allow: the attribute's
    // last line plus the three below it (attributes bind the next
    // statement; three lines absorbs a multi-line statement head).
    let mut allowed_lines: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for i in 0..toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut saw_cast_allow = false;
            while let Some(t) = toks.get(j) {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident && t.text.starts_with("cast_") {
                    saw_cast_allow = true;
                }
                j += 1;
            }
            if saw_cast_allow {
                if let Some(end) = toks.get(j) {
                    for l in end.line..=end.line + 3 {
                        allowed_lines.insert(l);
                    }
                }
            }
        }
    }
    for i in 1..toks.len() {
        if ctx.st.test_mask[i] || !toks[i].is_ident("as") {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if !(ty.kind == TokKind::Ident && NARROW.contains(&ty.text.as_str())) {
            continue;
        }
        if allowed_lines.contains(&toks[i].line) {
            continue;
        }
        let Some(operand) = receiver_name(toks, i) else {
            continue;
        };
        // Conversion functions (`from_le_bytes`, `to_ne_bytes`) name
        // an encoding, not a quantity.
        if operand.starts_with("from_") || operand.starts_with("to_") {
            continue;
        }
        if is_quantity_name(&operand) {
            out.push(Violation {
                rule: "lossy-cast",
                line: toks[i].line,
                message: format!(
                    "`{operand} as {}` silently truncates a row/byte/shard quantity — use \
                     try_from with a typed error, or a justified \
                     #[allow(clippy::cast_possible_truncation)]",
                    ty.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L5

/// `blocking-under-lock`: a sleep or direct file/socket operation
/// while a shard lock guard is live extends the critical section by
/// an unbounded, I/O-scheduler-shaped amount — the exact pathology
/// the sharding work split the lock to avoid. Guard liveness is
/// tracked by brace depth from the `let` that bound it (or until an
/// explicit `drop(guard)`).
fn blocking_under_lock(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.toks;
    struct Guard {
        name: String,
        depth: u32,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct("}") {
            let d = ctx.st.depth[i];
            // Depth *before* this `}` is the body depth; guards bound
            // at that depth die here.
            guards.retain(|g| g.depth < d);
            continue;
        }
        if ctx.st.test_mask[i] {
            continue;
        }
        // drop(guard) releases early.
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(arg) = toks.get(i + 2) {
                guards.retain(|g| g.name != arg.text);
            }
        }
        // A `let` statement whose initializer takes a shard lock.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let stmt_depth = ctx.st.depth[i];
            let mut k = j;
            let mut acquires = false;
            while let Some(tk) = toks.get(k) {
                // The initializer ends at the statement's `;` — or at
                // the block opener when this is an `if let`/`while let`
                // condition.
                if ctx.st.depth[k] == stmt_depth
                    && (tk.is_punct(";") || tk.is_punct("{") || tk.is_punct("}"))
                {
                    break;
                }
                if tk.kind == TokKind::Ident
                    && k > 0
                    && toks[k - 1].is_punct(".")
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                    && matches!(
                        tk.text.as_str(),
                        "write" | "read" | "write_set" | "read_all" | "write_all"
                    )
                    && receiver_name(toks, k - 1).is_some_and(|r| is_sharded_receiver(&r))
                {
                    acquires = true;
                    break;
                }
                k += 1;
            }
            if acquires {
                guards.push(Guard {
                    name: name_tok.text.clone(),
                    depth: stmt_depth,
                    line: t.line,
                });
            }
            continue;
        }
        if guards.is_empty() {
            continue;
        }
        // Blocking operations.
        let next = toks.get(i + 1);
        let prev_path = i > 0 && toks[i - 1].is_punct("::");
        let blocking = (t.is_ident("sleep") && prev_path)
            || (t.is_ident("fs") && next.is_some_and(|n| n.is_punct("::")))
            || (t.is_ident("File") && next.is_some_and(|n| n.is_punct("::")) && !prev_path)
            || t.is_ident("read_to_string")
            || (t.is_ident("connect") && prev_path)
            || (t.is_ident("stdin") && next.is_some_and(|n| n.is_punct("(")));
        if blocking {
            let g = &guards[guards.len() - 1];
            out.push(Violation {
                rule: "blocking-under-lock",
                line: t.line,
                message: format!(
                    "blocking call while shard lock guard `{}` (line {}) is live — every waiter \
                     on those shards stalls behind this I/O; move it outside the critical \
                     section or justify why it must be inside",
                    g.name, g.line
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L6

/// `relaxed-control`: a `load(Ordering::Relaxed)` whose enclosing
/// statement also contains a branch keyword or comparison is feeding
/// a control-flow decision on a possibly-stale value. Statistics
/// counters folded into snapshots stay legal; admission checks and
/// loop bounds do not.
fn relaxed_control(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.toks;
    let boundary =
        |t: &Tok| t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(",");
    for i in 0..toks.len() {
        if ctx.st.test_mask[i]
            || !toks[i].is_ident("load")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let close = matching_close(toks, i + 1);
        if !toks[i + 2..close].iter().any(|t| t.is_ident("Relaxed")) {
            continue;
        }
        let start = (0..i)
            .rev()
            .find(|&j| boundary(&toks[j]))
            .map_or(0, |j| j + 1);
        let end = (close..toks.len())
            .find(|&j| boundary(&toks[j]))
            .unwrap_or(toks.len());
        let span = &toks[start..end];
        let control = span.iter().any(|t| {
            (t.kind == TokKind::Ident
                && (matches!(t.text.as_str(), "if" | "while" | "for" | "match")
                    || t.text.starts_with("assert")))
                || (t.kind == TokKind::Punct
                    && matches!(t.text.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">="))
        });
        if control {
            out.push(Violation {
                rule: "relaxed-control",
                line: toks[i].line,
                message: "Ordering::Relaxed load feeds a control-flow decision — a stale value \
                          can take the wrong branch under concurrency; use Acquire (or SeqCst) \
                          or justify why staleness is safe here"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------- L7

/// `float-eq`: `==` / `!=` against a float literal (or `NAN`) in
/// kernel code. `x == NAN` is always false; `x == 0.3` compares
/// against a value `0.3` cannot round to. Bit-exact sentinel
/// comparisons exist (e.g. negative-zero identities) — those carry a
/// suppression with the reason.
fn float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.is_kernel() {
        return;
    }
    let toks = ctx.toks;
    let floatish = |t: &Tok| t.kind == TokKind::Float || t.is_ident("NAN");
    for i in 0..toks.len() {
        if ctx.st.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let adjacent = (i > 0 && floatish(&toks[i - 1]))
            || toks.get(i + 1).is_some_and(floatish)
            // `x == f64::NAN` — the literal sits two path segments out.
            || (toks.get(i + 1).is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
                && toks.get(i + 3).is_some_and(|n| n.is_ident("NAN")));
        if adjacent {
            out.push(Violation {
                rule: "float-eq",
                line: t.line,
                message: format!(
                    "float equality (`{}`) in kernel code — exact comparison against a float \
                     literal is almost never the intended semantics (NaN, rounding); use an \
                     epsilon, total_cmp, or justify the bit-exact sentinel",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L8

/// `allow-reason`: every `#[allow(...)]` / `#![allow(...)]` must be
/// justified by a `// lint:reason …` comment on the attribute's
/// lines, the line directly above, or the line directly below
/// (rustfmt moves over-long trailing comments there). Suppressions
/// suppress — they must never become unexplained folklore.
fn allow_reason(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.st.test_mask[i] || !toks[i].is_punct("#") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct("[")) {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("allow")) {
            continue;
        }
        let mut depth = 1u32;
        let mut k = j + 2;
        while let Some(t) = toks.get(k) {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let start_line = toks[i].line;
        let end_line = toks.get(k).map_or(start_line, |t| t.line);
        let justified = ctx.comments.iter().any(|c| {
            c.line + 1 >= start_line
                && c.line <= end_line + 1
                && c.text.contains("lint:reason")
                && c.text
                    .split("lint:reason")
                    .nth(1)
                    .is_some_and(|rest| !rest.trim_start_matches([':', ' ']).trim().is_empty())
        });
        if !justified {
            out.push(Violation {
                rule: "allow-reason",
                line: start_line,
                message: "#[allow(...)] without a `// lint:reason …` justification — write down \
                          why the lint is wrong here, on the attribute's line or the line above"
                    .into(),
            });
        }
    }
}
