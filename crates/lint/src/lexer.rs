//! A hand-rolled token-level lexer for Rust source.
//!
//! The linter's rules operate on token streams, not syntax trees, so
//! the lexer's one job is to split source text into tokens *correctly
//! enough that no rule ever fires inside a comment or a string
//! literal*. That means it must understand everything Rust allows to
//! contain arbitrary text: line and (nested) block comments, string
//! and byte-string literals with escapes, raw strings with any number
//! of `#` guards, character literals, and the `'a` lifetime vs `'a'`
//! char ambiguity. It does not need to understand Rust's grammar —
//! the rules reconstruct just enough structure (brace depth, `fn`
//! spans, `#[cfg(test)]` regions) from the token list.
//!
//! Comments are not tokens: they are collected separately with their
//! line numbers so the suppression scanner ([`crate::suppress`]) and
//! the `allow-reason` rule can see them without every other rule
//! having to skip them.

/// What kind of token this is. `Punct` covers operators and
/// delimiters; multi-character operators (`::`, `==`, `->`, …) are
/// single tokens so rules can match them without lookahead and so a
/// shift `>>` is never mistaken for two comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer literal, including any suffix (`42`, `0xff_u32`).
    Int,
    /// Float literal, including any suffix (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String, byte-string, raw-string or raw-byte-string literal.
    Str,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or delimiter.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    /// Doc text *describes* code — suppression markers inside it are
    /// prose, not directives.
    pub doc: bool,
}

/// The output of [`lex`]: the token stream plus the comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Consume bytes while `f` holds, returning the consumed slice.
    fn eat_while(&mut self, f: impl Fn(u8) -> bool) -> &'a [u8] {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }
}

/// Tokenize `src`. The lexer is error-tolerant: malformed input (an
/// unterminated string, a stray byte) never panics — it produces a
/// best-effort token and moves on, because a linter that dies on the
/// one file it most needed to inspect is worse than useless.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let doc = matches!(cur.peek_at(2), Some(b'/' | b'!'));
                let start = cur.pos + 2;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos])
                    .trim_start_matches(['/', '!'])
                    .trim()
                    .to_owned();
                out.comments.push(Comment { line, text, doc });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let doc =
                    matches!(cur.peek_at(2), Some(b'*' | b'!')) && cur.peek_at(3) != Some(b'/');
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => {
                            end = cur.pos;
                            break;
                        }
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..end])
                    .trim_start_matches(['*', '!'])
                    .trim()
                    .to_owned();
                out.comments.push(Comment { line, text, doc });
            }
            b'"' => {
                lex_string(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                lex_prefixed_string(&mut cur, &mut out, line);
            }
            b'\'' => {
                lex_quote(&mut cur, &mut out, line);
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur, &mut out, line);
            }
            _ if is_ident_start(b as char) || b >= 0x80 => {
                let bytes = cur.eat_while(|c| is_ident_continue(c as char) || c >= 0x80);
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(bytes).into_owned(),
                    line,
                });
            }
            _ => {
                lex_punct(&mut cur, &mut out, line);
            }
        }
    }
    out
}

/// Whether the cursor sits on `r"`, `r#`-string, `b"`, `b'`, `br"`,
/// or `br#` — i.e. a literal with a prefix letter rather than an
/// identifier that merely starts with `r`/`b`.
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    let (b0, b1, b2) = (cur.peek(), cur.peek_at(1), cur.peek_at(2));
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'"' | b'\'')) => true,
        // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
        (Some(b'r'), Some(b'#')) => !matches!(b2, Some(c) if is_ident_start(c as char)),
        (Some(b'b'), Some(b'r')) => matches!(b2, Some(b'"' | b'#')),
        _ => false,
    }
}

/// Consume a plain `"…"` string body (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` forms.
fn lex_prefixed_string(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    let first = cur.bump(); // r or b
    if first == Some(b'b') && cur.peek() == Some(b'\'') {
        cur.bump();
        while let Some(c) = cur.bump() {
            match c {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        out.toks.push(Tok {
            kind: TokKind::Char,
            text: String::new(),
            line,
        });
        return;
    }
    if cur.peek() == Some(b'r') {
        cur.bump(); // the r of br
    }
    if cur.peek() == Some(b'"') {
        lex_string(cur);
    } else {
        // `#`-guarded raw string: count the guards, then scan for the
        // closing quote followed by that many `#`.
        let mut guards = 0usize;
        while cur.peek() == Some(b'#') {
            guards += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        'scan: while let Some(c) = cur.bump() {
            if c == b'"' {
                for i in 0..guards {
                    if cur.peek_at(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..guards {
                    cur.bump();
                }
                break;
            }
        }
    }
    out.toks.push(Tok {
        kind: TokKind::Str,
        text: String::new(),
        line,
    });
}

/// Disambiguate `'a'` (char) from `'a` (lifetime); cursor on the `'`.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            while let Some(c) = cur.bump() {
                if c == b'\'' && cur.src.get(cur.pos.wrapping_sub(2)) != Some(&b'\\') {
                    break;
                }
                if c == b'\'' {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        Some(c) if is_ident_start(c as char) => {
            if cur.peek_at(1) == Some(b'\'') {
                // 'x' — a one-character char literal.
                cur.bump();
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                // 'ident — a lifetime.
                let bytes = cur.eat_while(|c| is_ident_continue(c as char));
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::from_utf8_lossy(bytes).into_owned(),
                    line,
                });
            }
        }
        Some(_) => {
            // '(' etc: a non-identifier char literal.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
        }
        None => {}
    }
}

fn lex_number(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    let start = cur.pos;
    let mut float = false;
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x' | b'o' | b'b' | b'X')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == b'_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        // A fractional part only if the dot is followed by a digit
        // (so `1..n` and `1.max(2)` stay an Int).
        if cur.peek() == Some(b'.') && matches!(cur.peek_at(1), Some(c) if c.is_ascii_digit()) {
            float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
        // `1.` with nothing after the dot is also a float.
        if !float
            && cur.peek() == Some(b'.')
            && !matches!(cur.peek_at(1), Some(c) if is_ident_start(c as char) || c == b'.')
        {
            float = true;
            cur.bump();
        }
        if matches!(cur.peek(), Some(b'e' | b'E'))
            && matches!(cur.peek_at(1), Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            float = true;
            cur.bump();
            if matches!(cur.peek(), Some(b'+' | b'-')) {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
    }
    // Suffix (u32, f64, …) — an f-suffix makes it a float.
    let suffix_start = cur.pos;
    cur.eat_while(|c| is_ident_continue(c as char));
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    out.toks.push(Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        line,
    });
}

fn lex_punct(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    for op in MULTI_PUNCT {
        let bytes = op.as_bytes();
        if cur.src[cur.pos..].starts_with(bytes) {
            for _ in 0..bytes.len() {
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_owned(),
                line,
            });
            return;
        }
    }
    let b = cur.bump().unwrap_or(b' ');
    out.toks.push(Tok {
        kind: TokKind::Punct,
        text: (b as char).to_string(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() in a comment\n/* panic! in\n a block */ let y;");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("unwrap()"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(
            idents("/* outer /* inner */ still */ fn f() {}"),
            ["fn", "f"]
        );
        assert_eq!(l.toks[0].text, "fn");
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "unwrap() \" panic!"; let t = 'x';"#;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r###"let s = r#"unwrap() " still "# ; done"###;
        let names = idents(src);
        assert_eq!(names, ["let", "s", "done"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!\"; let c = b'x'; let d = br#\"todo!\"#;";
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers() {
        let l = lex("let r#type = 1;");
        assert!(l.toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn numbers_int_vs_float() {
        let l = lex("1 1.0 0xff_u32 2e-3 1f64 0..n 3.max(4)");
        let kinds: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(kinds[0], (TokKind::Int, "1".into()));
        assert_eq!(kinds[1], (TokKind::Float, "1.0".into()));
        assert_eq!(kinds[2], (TokKind::Int, "0xff_u32".into()));
        assert_eq!(kinds[3], (TokKind::Float, "2e-3".into()));
        assert_eq!(kinds[4], (TokKind::Float, "1f64".into()));
        assert_eq!(kinds[5], (TokKind::Int, "0".into()));
        assert_eq!(kinds[6], (TokKind::Int, "3".into()));
    }

    #[test]
    fn multichar_punct_is_one_token() {
        let l = lex("a == b != c :: d -> e => f >> g <= h");
        let puncts: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->", "=>", ">>", "<="]);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<_> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("let c = '");
        let _ = lex("r#\"unterminated");
    }
}
