//! # co-lint
//!
//! A workspace-level concurrency & durability analyzer for the
//! collaborative-optimizer engine. The engine's hardest-won
//! invariants — ascending-index shard lock acquisition, all
//! durability I/O routed through `co_graph::vfs`, panic-free kernel
//! and durability paths — were enforced only by convention and code
//! review. `co-lint` turns them into machine-checked rules: a
//! hand-rolled token-level lexer (no external parser dependencies)
//! feeds eight rule passes, each suppressible in place via
//! `// co-lint:allow(<rule>) <reason>` with the reason mandatory.
//!
//! The static side pairs with a dynamic witness
//! (`co_graph::lockorder`): the linter proves what it can from the
//! source, the witness checks the rest — actual acquisition order of
//! every `ShardedEg` lock — at runtime under the stress and chaos
//! suites.
//!
//! Use the library API ([`lint_source`], [`run_workspace`]) from
//! tests, or the `co_lint` example binary from CI:
//!
//! ```text
//! cargo run -p co-lint --example co_lint -- [--json] [workspace root]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O
//! error.

#![forbid(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod rules;
pub mod suppress;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::RULES;

/// One reportable violation, bound to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// Violations silenced by a `co-lint:allow` with a reason.
    pub suppressed: usize,
}

impl Report {
    /// Whether the run found nothing to report.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The process exit code this report maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }
}

/// Lint one file's source text. `path` is the label diagnostics
/// carry; rule applicability (durability modules, kernel code, bench
/// exemptions) keys off it, so pass workspace-relative paths like
/// `crates/graph/src/journal.rs`.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Report {
    let lexed = lexer::lex(src);
    let st = context::analyze(&lexed.toks);
    let ctx = rules::FileCtx {
        path,
        toks: &lexed.toks,
        comments: &lexed.comments,
        st: &st,
    };
    let raw = rules::run_all(&ctx);
    let (sups, marker_issues) = suppress::scan(&lexed.comments);
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    for v in raw {
        if suppress::covers(&sups, v.rule, v.line) {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(Diagnostic {
                rule: v.rule,
                path: path.to_owned(),
                line: v.line,
                message: v.message,
            });
        }
    }
    for issue in marker_issues {
        report.diagnostics.push(Diagnostic {
            rule: "allow-reason",
            path: path.to_owned(),
            line: issue.line,
            message: issue.message,
        });
    }
    report.diagnostics.sort_by_key(|d| d.line);
    report
}

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every crate source file in the workspace rooted at `root`:
/// all of `crates/*/src/**/*.rs`. Test directories, examples and
/// benches are out of scope by construction (the rules target
/// production code; `#[cfg(test)]` regions inside scanned files are
/// masked token-by-token).
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory — pass the workspace root",
                root.display()
            ),
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut report = Report::default();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let file_report = lint_source(&rel, &text);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed += file_report.suppressed;
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as machine-readable JSON (the `--json` mode).
#[must_use]
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.path),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"clean\": {}\n}}\n",
        report.files_scanned,
        report.suppressed,
        report.is_clean()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_filters_suppressed() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // co-lint:allow(no-panic) caller guarantees Some\n}\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn json_escapes_and_reports() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = lint_source("crates/core/src/x.rs", src);
        assert_eq!(r.exit_code(), 1);
        let json = to_json(&r);
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"clean\": false"));
    }
}
