//! Fixture tests: one seeded-violation (positive) and one
//! suppressed (negative) fixture per rule, plus structural edge
//! cases and the workspace self-check that keeps the real tree clean.

use co_lint::{lint_source, run_workspace, Report};

fn lines_for(report: &Report, rule: &str) -> Vec<u32> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// ------------------------------------------------------- shard-lock-order

#[test]
fn shard_lock_order_flags_descending_constants() {
    let src = "fn publish(eg: &ShardedEg) {\n\
               let a = eg.write(2);\n\
               let b = eg.write(0);\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        lines_for(&r, "shard-lock-order"),
        [3],
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn shard_lock_order_flags_unprovable_indices() {
    let src = "fn publish(eg: &ShardedEg, k: usize) {\n\
               let a = eg.write(k);\n\
               let b = eg.write(3);\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        lines_for(&r, "shard-lock-order"),
        [2],
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn shard_lock_order_accepts_ascending_and_suppression() {
    let ascending = "fn publish(eg: &ShardedEg) {\n\
                     let a = eg.write(0);\n\
                     let b = eg.write(2);\n\
                     }\n";
    assert!(lint_source("crates/core/src/x.rs", ascending).is_clean());

    let suppressed = "fn publish(eg: &ShardedEg) {\n\
                      let a = eg.write(2);\n\
                      // co-lint:allow(shard-lock-order) guards dropped between acquisitions\n\
                      let b = eg.write(0);\n\
                      }\n";
    let r = lint_source("crates/core/src/x.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn shard_lock_order_ignores_non_shard_receivers() {
    // Two io::Write::write calls are not lock acquisitions.
    let src = "fn f(w: &mut impl Write) {\n\
               let a = w.write(2);\n\
               let b = w.write(0);\n\
               }\n";
    assert!(lint_source("crates/core/src/x.rs", src).is_clean());
}

// ------------------------------------------------------------ vfs-bypass

#[test]
fn vfs_bypass_flags_direct_fs_in_graph() {
    let src = "fn save(p: &Path) {\n\
               let _ = std::fs::write(p, b\"x\");\n\
               }\n";
    let r = lint_source("crates/graph/src/journal.rs", src);
    assert_eq!(lines_for(&r, "vfs-bypass"), [2], "{:?}", r.diagnostics);
}

#[test]
fn vfs_bypass_suppressed_and_scoped() {
    let suppressed = "fn save(p: &Path) {\n\
                      // co-lint:allow(vfs-bypass) metadata-only probe, no durability bytes\n\
                      let _ = std::fs::metadata(p);\n\
                      }\n";
    let r = lint_source("crates/graph/src/journal.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);

    // vfs.rs itself is the choke point; other crates are out of scope.
    let src = "fn save(p: &Path) { let _ = std::fs::write(p, b\"x\"); }\n";
    assert!(lint_source("crates/graph/src/vfs.rs", src).is_clean());
    assert!(lint_source("crates/core/src/x.rs", src).is_clean());
}

// -------------------------------------------------------------- no-panic

#[test]
fn no_panic_flags_unwrap_expect_panic_todo() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               let a = x.unwrap();\n\
               let b = x.expect(\"why\");\n\
               if a > b { panic!(\"boom\"); }\n\
               todo!()\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        lines_for(&r, "no-panic"),
        [2, 3, 4, 5],
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn no_panic_suppressed_with_reason() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               x.unwrap() // co-lint:allow(no-panic) caller guarantees Some\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn no_panic_exempts_tests_and_benches() {
    let test_mod = "fn prod() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    #[test]\n\
                    fn t() { None::<u32>.unwrap(); }\n\
                    }\n";
    assert!(lint_source("crates/core/src/x.rs", test_mod).is_clean());

    let bench = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_source("crates/bench/src/bin/b.rs", bench).is_clean());
}

// ------------------------------------------------------------ lossy-cast

#[test]
fn lossy_cast_flags_quantity_truncation() {
    let src = "fn f(n_rows: u64) -> u32 {\n\
               n_rows as u32\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(lines_for(&r, "lossy-cast"), [2], "{:?}", r.diagnostics);
}

#[test]
fn lossy_cast_suppressed_or_clippy_allowed() {
    let suppressed = "fn f(n_rows: u64) -> u32 {\n\
                      // co-lint:allow(lossy-cast) row counts are < 2^32 by protocol\n\
                      n_rows as u32\n\
                      }\n";
    let r = lint_source("crates/core/src/x.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);

    // A justified clippy cast allow covers the statement too (one
    // written reason satisfies both linters).
    let clippy = "fn f(n_rows: u64) -> u32 {\n\
                  #[allow(clippy::cast_possible_truncation)] // lint:reason bounded above\n\
                  { n_rows as u32 }\n\
                  }\n";
    let r = lint_source("crates/core/src/x.rs", clippy);
    assert!(r.is_clean(), "{:?}", r.diagnostics);

    // Non-quantity names and widening-direction helpers stay legal.
    let fine = "fn f(flags: u64, b: [u8; 8]) -> u32 {\n\
                let x = flags as u32;\n\
                let y = u64::from_le_bytes(b) as u32;\n\
                x + y as u32\n\
                }\n";
    assert!(lint_source("crates/core/src/x.rs", fine).is_clean());
}

// --------------------------------------------------- blocking-under-lock

#[test]
fn blocking_under_lock_flags_sleep_with_live_guard() {
    let src = "fn f(eg: &ShardedEg) {\n\
               let g = eg.write(0);\n\
               std::thread::sleep(d);\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(
        lines_for(&r, "blocking-under-lock"),
        [3],
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn blocking_under_lock_respects_drop_and_scope() {
    let dropped = "fn f(eg: &ShardedEg) {\n\
                   let g = eg.write(0);\n\
                   drop(g);\n\
                   std::thread::sleep(d);\n\
                   }\n";
    assert!(lint_source("crates/core/src/x.rs", dropped).is_clean());

    let scoped = "fn f(eg: &ShardedEg) {\n\
                  { let g = eg.write(0); }\n\
                  std::thread::sleep(d);\n\
                  }\n";
    assert!(lint_source("crates/core/src/x.rs", scoped).is_clean());

    let suppressed = "fn f(eg: &ShardedEg) {\n\
                      let g = eg.write_all();\n\
                      // co-lint:allow(blocking-under-lock) quiesced flush: all writers must wait\n\
                      let _ = fs::write(p, b);\n\
                      }\n";
    let r = lint_source("crates/core/src/x.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);
}

// -------------------------------------------------------- relaxed-control

#[test]
fn relaxed_control_flags_branch_on_relaxed_load() {
    let src = "fn f(c: &AtomicUsize) {\n\
               if c.load(Ordering::Relaxed) > LIMIT {\n\
               reject();\n\
               }\n\
               }\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(lines_for(&r, "relaxed-control"), [2], "{:?}", r.diagnostics);
}

#[test]
fn relaxed_control_allows_stats_and_suppression() {
    // A counter folded into a snapshot struct is not control flow.
    let stats = "fn f(c: &AtomicUsize) -> Stats {\n\
                 Stats { served: c.load(Ordering::Relaxed), }\n\
                 }\n";
    assert!(lint_source("crates/core/src/x.rs", stats).is_clean());

    let suppressed = "fn f(c: &AtomicUsize) {\n\
                      // co-lint:allow(relaxed-control) hint only: stale reads shed load late, never corrupt\n\
                      if c.load(Ordering::Relaxed) > LIMIT { reject(); }\n\
                      }\n";
    let r = lint_source("crates/core/src/x.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);
}

// -------------------------------------------------------------- float-eq

#[test]
fn float_eq_flags_literal_comparison_in_kernel() {
    let src = "fn f(x: f64) -> bool {\n\
               x == 0.5\n\
               }\n";
    let r = lint_source("crates/dataframe/src/ops/x.rs", src);
    assert_eq!(lines_for(&r, "float-eq"), [2], "{:?}", r.diagnostics);
}

#[test]
fn float_eq_suppressed_and_kernel_scoped() {
    let suppressed = "fn f(x: f64) -> bool {\n\
                      // co-lint:allow(float-eq) exact-zero sentinel: counts increment by 1.0\n\
                      x == 0.0\n\
                      }\n";
    let r = lint_source("crates/ml/src/metrics.rs", suppressed);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed, 1);

    // Non-kernel crates are out of scope; int comparisons are fine.
    let src = "fn f(x: f64) -> bool { x == 0.5 }\n";
    assert!(lint_source("crates/core/src/x.rs", src).is_clean());
    let ints = "fn f(x: u64) -> bool { x == 5 }\n";
    assert!(lint_source("crates/dataframe/src/ops/x.rs", ints).is_clean());
}

// ---------------------------------------------------------- allow-reason

#[test]
fn allow_reason_flags_bare_attribute() {
    let src = "#[allow(clippy::too_many_lines)]\n\
               fn f() {}\n";
    let r = lint_source("crates/core/src/x.rs", src);
    assert_eq!(lines_for(&r, "allow-reason"), [1], "{:?}", r.diagnostics);
}

#[test]
fn allow_reason_accepts_justified_attribute() {
    let trailing = "#[allow(clippy::too_many_lines)] // lint:reason one linear recovery script\n\
                    fn f() {}\n";
    assert!(lint_source("crates/core/src/x.rs", trailing).is_clean());

    let above = "// lint:reason one linear recovery script\n\
                 #[allow(clippy::too_many_lines)]\n\
                 fn f() {}\n";
    assert!(lint_source("crates/core/src/x.rs", above).is_clean());
}

#[test]
fn allow_reason_flags_reasonless_and_unknown_markers() {
    let reasonless = "fn f(x: Option<u32>) -> u32 {\n\
                      x.unwrap() // co-lint:allow(no-panic)\n\
                      }\n";
    let r = lint_source("crates/core/src/x.rs", reasonless);
    // The reasonless marker does NOT suppress, and is itself reported.
    assert_eq!(lines_for(&r, "no-panic"), [2], "{:?}", r.diagnostics);
    assert_eq!(lines_for(&r, "allow-reason"), [2], "{:?}", r.diagnostics);

    let unknown = "fn f() {} // co-lint:allow(no-such-rule) because\n";
    let r = lint_source("crates/core/src/x.rs", unknown);
    assert_eq!(lines_for(&r, "allow-reason"), [1], "{:?}", r.diagnostics);
}

// ------------------------------------------------------- structure cases

#[test]
fn lexer_is_not_fooled_by_strings_and_comments() {
    // Panicky text inside strings/comments must not trip rules.
    let src = "fn f() -> &'static str {\n\
               // x.unwrap() in a comment\n\
               let s = \"x.unwrap() and panic!()\";\n\
               let r = r#\"std::fs::write inside raw \"quotes\" here\"#;\n\
               s\n\
               }\n";
    let r = lint_source("crates/graph/src/journal.rs", src);
    assert!(r.is_clean(), "{:?}", r.diagnostics);
}

#[test]
fn cfg_test_block_masks_everything_inside() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn helper(eg: &ShardedEg) {\n\
               let a = eg.write(5);\n\
               let b = eg.write(1);\n\
               b.unwrap();\n\
               }\n\
               }\n";
    assert!(lint_source("crates/core/src/x.rs", src).is_clean());
}

// -------------------------------------------------- workspace self-check

/// The real workspace must stay clean under its own analyzer — the
/// same invariant CI enforces via the `co_lint` example with `--json`.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = run_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    assert_eq!(report.exit_code(), 0);
}
