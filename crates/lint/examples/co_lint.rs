//! `co_lint` — the workspace concurrency & durability analyzer CLI.
//!
//! ```text
//! cargo run -p co-lint --example co_lint -- [--json] [workspace root]
//! ```
//!
//! Scans every `crates/*/src/**/*.rs` file under the workspace root
//! (default: the current directory) with the eight-rule catalog (see
//! `DESIGN.md` §16) and prints `file:line: [rule] message` per
//! violation, or a single JSON document with `--json`.
//!
//! Exit codes, mirroring `egfsck`:
//!
//! * `0` — clean (all rules pass; suppressions all carry reasons)
//! * `1` — violations found
//! * `2` — usage or I/O error

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: co_lint [--json] [workspace root]");
                return ExitCode::from(0);
            }
            _ if arg.starts_with('-') => {
                eprintln!("co_lint: unknown flag `{arg}` (usage: co_lint [--json] [root])");
                return ExitCode::from(2);
            }
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("co_lint: more than one root given");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match co_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("co_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", co_lint::to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "co_lint: {} file(s) scanned, {} violation(s), {} suppressed",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed
        );
    }
    #[allow(clippy::cast_sign_loss)] // lint:reason exit_code is 0 or 1 by construction
    ExitCode::from(report.exit_code() as u8)
}
