//! Scalar values: the elements of columns and the payload of `Aggregate`
//! artifacts.

use std::fmt;

/// A single cell value.
///
/// Missing data is represented as [`Scalar::Null`]; inside float columns the
/// engine stores missing values as `NaN` (pandas-style), and conversions map
/// the two representations onto each other.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float; `NaN` encodes a missing value.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Missing value.
    Null,
}

impl Scalar {
    /// Numeric view of the scalar: ints, floats and bools cast to `f64`,
    /// missing values to `NaN`; strings have no numeric view.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(*v as f64),
            Scalar::Float(v) => Some(*v),
            Scalar::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Scalar::Null => Some(f64::NAN),
            Scalar::Str(_) => None,
        }
    }

    /// True if the value is missing (`Null` or a float `NaN`).
    #[must_use]
    pub fn is_null(&self) -> bool {
        match self {
            Scalar::Null => true,
            Scalar::Float(v) => v.is_nan(),
            _ => false,
        }
    }

    /// A stable textual digest used in operation signatures.
    #[must_use]
    pub fn digest(&self) -> String {
        match self {
            Scalar::Int(v) => format!("i:{v}"),
            Scalar::Float(v) => format!("f:{}", crate::hash::float_digest(*v)),
            Scalar::Str(v) => format!("s:{v}"),
            Scalar::Bool(v) => format!("b:{v}"),
            Scalar::Null => "null".to_owned(),
        }
    }

    /// Approximate in-memory size in bytes (used for artifact size
    /// accounting).
    #[must_use]
    pub fn nbytes(&self) -> usize {
        match self {
            Scalar::Str(s) => s.len() + 8,
            _ => 8,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => write!(f, "{v}"),
            Scalar::Str(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}

impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Str(v.to_owned())
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Scalar::Int(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Bool(true).as_f64(), Some(1.0));
        assert!(Scalar::Null.as_f64().unwrap().is_nan());
        assert_eq!(Scalar::from("x").as_f64(), None);
    }

    #[test]
    fn null_detection() {
        assert!(Scalar::Null.is_null());
        assert!(Scalar::Float(f64::NAN).is_null());
        assert!(!Scalar::Float(0.0).is_null());
        assert!(!Scalar::Str(String::new()).is_null());
    }

    #[test]
    fn digests_distinguish_types() {
        assert_ne!(Scalar::Int(1).digest(), Scalar::Float(1.0).digest());
        assert_ne!(Scalar::Str("1".into()).digest(), Scalar::Int(1).digest());
    }
}
