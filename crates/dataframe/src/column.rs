//! Columns and column-id lineage.
//!
//! A [`Column`] is a named, immutable, reference-counted buffer of values
//! plus a [`ColumnId`]. The id encodes *how the column was produced*: source
//! columns hash their dataset and column name; an operation that changes the
//! content of a column derives a new id from the operation hash and the input
//! id (paper §5.3). Operations that merely move a column between frames
//! (projection, horizontal concat, alignment) keep the id, which is what lets
//! the storage-aware materializer deduplicate artifacts.

use crate::error::{DfError, Result};
use crate::hash;
use crate::scalar::Scalar;
use crate::schema::DType;
use std::fmt;
use std::sync::Arc;

/// Lineage identifier of a column (paper §5.3).
///
/// Invariants (property-tested in `ops`):
/// * columns untouched by an operation keep their id;
/// * two columns have the same id iff the same operations were applied to the
///   same source column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u64);

impl ColumnId {
    /// Id for a raw source column: hash of dataset name and column name.
    #[must_use]
    pub fn source(dataset: &str, column: &str) -> Self {
        ColumnId(hash::fnv1a_parts(&["src", dataset, column]))
    }

    /// Derive the id of a column affected by an operation.
    #[must_use]
    pub fn derive(self, op_hash: u64) -> Self {
        ColumnId(hash::combine(op_hash, self.0))
    }

    /// Derive an id for a column produced from several input columns
    /// (e.g. a binary arithmetic op or a group-by aggregate keyed on
    /// another column).
    #[must_use]
    pub fn derive_many(inputs: &[ColumnId], op_hash: u64) -> Self {
        let mut parts = Vec::with_capacity(inputs.len() + 1);
        parts.push(op_hash);
        parts.extend(inputs.iter().map(|c| c.0));
        ColumnId(hash::combine_all(&parts))
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The typed buffer backing a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats; `NaN` encodes missing.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
            ColumnData::Bool(_) => DType::Bool,
        }
    }

    /// Approximate content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 8).sum(),
        }
    }

    /// Value at row `i`; panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> Scalar {
        match self {
            ColumnData::Int(v) => Scalar::Int(v[i]),
            ColumnData::Float(v) => Scalar::Float(v[i]),
            ColumnData::Str(v) => Scalar::Str(v[i].clone()),
            ColumnData::Bool(v) => Scalar::Bool(v[i]),
        }
    }

    /// Gather rows at the given indices (indices may repeat or reorder).
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Keep rows where `mask` is true. `mask.len()` must equal `self.len()`.
    #[must_use]
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            ColumnData::Int(v) => ColumnData::Int(keep(v, mask)),
            ColumnData::Float(v) => ColumnData::Float(keep(v, mask)),
            ColumnData::Str(v) => ColumnData::Str(keep(v, mask)),
            ColumnData::Bool(v) => ColumnData::Bool(keep(v, mask)),
        }
    }

    /// Numeric view of the column as `f64`s. Ints and bools cast; strings
    /// fail.
    pub fn to_f64(&self) -> Result<Vec<f64>> {
        match self {
            ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            ColumnData::Float(v) => Ok(v.clone()),
            ColumnData::Bool(v) => Ok(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
            ColumnData::Str(_) => Err(DfError::TypeMismatch {
                column: String::new(),
                expected: "numeric",
                found: "str",
            }),
        }
    }
}

/// A named column with lineage id and shared immutable data.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    id: ColumnId,
    data: Arc<ColumnData>,
}

impl Column {
    /// A raw source column (id derived from dataset + column name).
    #[must_use]
    pub fn source(dataset: &str, name: &str, data: ColumnData) -> Self {
        Column {
            name: name.to_owned(),
            id: ColumnId::source(dataset, name),
            data: Arc::new(data),
        }
    }

    /// A column produced by an operation, with an explicitly derived id.
    #[must_use]
    pub fn derived(name: &str, id: ColumnId, data: ColumnData) -> Self {
        Column {
            name: name.to_owned(),
            id,
            data: Arc::new(data),
        }
    }

    /// A column wrapping already-shared data (no copy).
    #[must_use]
    pub fn from_arc(name: &str, id: ColumnId, data: Arc<ColumnData>) -> Self {
        Column {
            name: name.to_owned(),
            id,
            data,
        }
    }

    /// Column name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lineage id.
    #[must_use]
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// Element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.data.nbytes()
    }

    /// Shared handle to the underlying data.
    #[must_use]
    pub fn data(&self) -> &Arc<ColumnData> {
        &self.data
    }

    /// Same data, new name, same id (renaming does not change lineage).
    #[must_use]
    pub fn renamed(&self, name: &str) -> Column {
        Column {
            name: name.to_owned(),
            id: self.id,
            data: Arc::clone(&self.data),
        }
    }

    /// Same data and name with a different lineage id.
    #[must_use]
    pub fn with_id(&self, id: ColumnId) -> Column {
        Column {
            name: self.name.clone(),
            id,
            data: Arc::clone(&self.data),
        }
    }

    /// Integer slice view, or a type error.
    pub fn ints(&self) -> Result<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Ok(v),
            other => Err(self.type_err("int", other)),
        }
    }

    /// Float slice view, or a type error.
    pub fn floats(&self) -> Result<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Ok(v),
            other => Err(self.type_err("float", other)),
        }
    }

    /// String slice view, or a type error.
    pub fn strs(&self) -> Result<&[String]> {
        match self.data.as_ref() {
            ColumnData::Str(v) => Ok(v),
            other => Err(self.type_err("str", other)),
        }
    }

    /// Bool slice view, or a type error.
    pub fn bools(&self) -> Result<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Ok(v),
            other => Err(self.type_err("bool", other)),
        }
    }

    /// Numeric (`f64`) copy of the column; ints and bools cast.
    pub fn to_f64(&self) -> Result<Vec<f64>> {
        self.data.to_f64().map_err(|_| DfError::TypeMismatch {
            column: self.name.clone(),
            expected: "numeric",
            found: self.dtype().name(),
        })
    }

    /// Value at row `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Scalar {
        self.data.get(i)
    }

    fn type_err(&self, expected: &'static str, found: &ColumnData) -> DfError {
        DfError::TypeMismatch {
            column: self.name.clone(),
            expected,
            found: found.dtype().name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_ids_are_stable_and_distinct() {
        let a = ColumnId::source("train", "price");
        let b = ColumnId::source("train", "price");
        let c = ColumnId::source("train", "y");
        let d = ColumnId::source("test", "price");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn derive_depends_on_op_and_input() {
        let base = ColumnId::source("train", "price");
        assert_ne!(base.derive(1), base.derive(2));
        assert_ne!(base.derive(1), ColumnId::source("train", "y").derive(1));
        // Same op on the same column from two different frames agrees.
        assert_eq!(base.derive(7), ColumnId::source("train", "price").derive(7));
    }

    #[test]
    fn take_and_filter() {
        let data = ColumnData::Int(vec![10, 20, 30, 40]);
        assert_eq!(data.take(&[3, 0, 0]), ColumnData::Int(vec![40, 10, 10]));
        assert_eq!(
            data.filter(&[true, false, true, false]),
            ColumnData::Int(vec![10, 30])
        );
    }

    #[test]
    fn nbytes_accounting() {
        assert_eq!(ColumnData::Int(vec![1, 2]).nbytes(), 16);
        assert_eq!(ColumnData::Bool(vec![true; 5]).nbytes(), 5);
        assert_eq!(ColumnData::Str(vec!["ab".into()]).nbytes(), 10);
    }

    #[test]
    fn renames_keep_lineage() {
        let c = Column::source("train", "price", ColumnData::Float(vec![1.0]));
        let r = c.renamed("cost");
        assert_eq!(r.name(), "cost");
        assert_eq!(r.id(), c.id());
        assert!(Arc::ptr_eq(c.data(), r.data()));
    }

    #[test]
    fn typed_views() {
        let c = Column::source("t", "a", ColumnData::Int(vec![1]));
        assert!(c.ints().is_ok());
        assert!(c.floats().is_err());
        assert_eq!(c.to_f64().unwrap(), vec![1.0]);
        let s = Column::source("t", "s", ColumnData::Str(vec!["x".into()]));
        assert!(s.to_f64().is_err());
    }
}
