//! Columns and column-id lineage.
//!
//! A [`Column`] is a named, immutable, reference-counted buffer of values
//! plus a [`ColumnId`]. The id encodes *how the column was produced*: source
//! columns hash their dataset and column name; an operation that changes the
//! content of a column derives a new id from the operation hash and the input
//! id (paper §5.3). Operations that merely move a column between frames
//! (projection, horizontal concat, alignment) keep the id, which is what lets
//! the storage-aware materializer deduplicate artifacts.

use crate::error::{DfError, Result};
use crate::hash;
use crate::scalar::Scalar;
use crate::schema::DType;
use std::fmt;
use std::sync::Arc;

/// Lineage identifier of a column (paper §5.3).
///
/// Invariants (property-tested in `ops`):
/// * columns untouched by an operation keep their id;
/// * two columns have the same id iff the same operations were applied to the
///   same source column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u64);

impl ColumnId {
    /// Id for a raw source column: hash of dataset name and column name.
    #[must_use]
    pub fn source(dataset: &str, column: &str) -> Self {
        ColumnId(hash::fnv1a_parts(&["src", dataset, column]))
    }

    /// Derive the id of a column affected by an operation.
    #[must_use]
    pub fn derive(self, op_hash: u64) -> Self {
        ColumnId(hash::combine(op_hash, self.0))
    }

    /// Derive an id for a column produced from several input columns
    /// (e.g. a binary arithmetic op or a group-by aggregate keyed on
    /// another column).
    #[must_use]
    pub fn derive_many(inputs: &[ColumnId], op_hash: u64) -> Self {
        let mut parts = Vec::with_capacity(inputs.len() + 1);
        parts.push(op_hash);
        parts.extend(inputs.iter().map(|c| c.0));
        ColumnId(hash::combine_all(&parts))
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The typed buffer backing a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats; `NaN` encodes missing.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        match self {
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Str(_) => DType::Str,
            ColumnData::Bool(_) => DType::Bool,
        }
    }

    /// Approximate content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 8).sum(),
        }
    }

    /// Value at row `i`; panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> Scalar {
        match self {
            ColumnData::Int(v) => Scalar::Int(v[i]),
            ColumnData::Float(v) => Scalar::Float(v[i]),
            ColumnData::Str(v) => Scalar::Str(v[i].clone()),
            ColumnData::Bool(v) => Scalar::Bool(v[i]),
        }
    }

    /// Gather rows at the given indices (indices may repeat or reorder).
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Keep rows where `mask` is true. `mask.len()` must equal `self.len()`.
    #[must_use]
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            ColumnData::Int(v) => ColumnData::Int(keep(v, mask)),
            ColumnData::Float(v) => ColumnData::Float(keep(v, mask)),
            ColumnData::Str(v) => ColumnData::Str(keep(v, mask)),
            ColumnData::Bool(v) => ColumnData::Bool(keep(v, mask)),
        }
    }

    /// Numeric view of the column as `f64`s. Ints and bools cast; strings
    /// fail.
    pub fn to_f64(&self) -> Result<Vec<f64>> {
        match self {
            ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            ColumnData::Float(v) => Ok(v.clone()),
            ColumnData::Bool(v) => Ok(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
            ColumnData::Str(_) => Err(DfError::TypeMismatch {
                column: String::new(),
                expected: "numeric",
                found: "str",
            }),
        }
    }

    /// Copy of the sub-range `[offset, offset + len)`.
    ///
    /// Used to compact a sliced [`Column`] view into an owned buffer when a
    /// caller needs the data itself (e.g. the artifact store).
    #[must_use]
    pub fn slice_copy(&self, offset: usize, len: usize) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(v[offset..offset + len].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[offset..offset + len].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[offset..offset + len].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..offset + len].to_vec()),
        }
    }

    /// Append all rows of `other` to `self`; fails on dtype mismatch.
    pub fn append(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (me, other) => {
                return Err(DfError::TypeMismatch {
                    column: String::new(),
                    expected: me.dtype().name(),
                    found: other.dtype().name(),
                })
            }
        }
        Ok(())
    }
}

/// A named column with lineage id and shared immutable data.
///
/// A column is a *view* — `(offset, len)` — over an [`Arc`]'d buffer, so
/// contiguous row selections (`head`, a `take_rows` whose indices form an
/// ascending run, alignment) are O(1) and share the buffer instead of
/// deep-copying it. Freshly constructed columns view their whole buffer;
/// [`Column::slice`] narrows the view without copying.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    id: ColumnId,
    data: Arc<ColumnData>,
    offset: usize,
    len: usize,
}

/// Columns compare by name, lineage id, and *logical* content: a sliced
/// view equals a compacted copy of the same rows. (Float comparison
/// follows `f64`: `NaN != NaN`, matching the previous derived impl.)
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        fn rng<T>(v: &[T], c: &Column) -> std::ops::Range<usize> {
            debug_assert!(c.offset + c.len <= v.len());
            c.offset..c.offset + c.len
        }
        self.name == other.name
            && self.id == other.id
            && self.len == other.len
            && match (self.data.as_ref(), other.data.as_ref()) {
                (ColumnData::Int(a), ColumnData::Int(b)) => a[rng(a, self)] == b[rng(b, other)],
                (ColumnData::Float(a), ColumnData::Float(b)) => a[rng(a, self)] == b[rng(b, other)],
                (ColumnData::Str(a), ColumnData::Str(b)) => a[rng(a, self)] == b[rng(b, other)],
                (ColumnData::Bool(a), ColumnData::Bool(b)) => a[rng(a, self)] == b[rng(b, other)],
                _ => false,
            }
    }
}

impl Column {
    /// A raw source column (id derived from dataset + column name).
    #[must_use]
    pub fn source(dataset: &str, name: &str, data: ColumnData) -> Self {
        Column::from_arc(name, ColumnId::source(dataset, name), Arc::new(data))
    }

    /// A column produced by an operation, with an explicitly derived id.
    #[must_use]
    pub fn derived(name: &str, id: ColumnId, data: ColumnData) -> Self {
        Column::from_arc(name, id, Arc::new(data))
    }

    /// A column wrapping already-shared data (no copy).
    #[must_use]
    pub fn from_arc(name: &str, id: ColumnId, data: Arc<ColumnData>) -> Self {
        let len = data.len();
        Column {
            name: name.to_owned(),
            id,
            data,
            offset: 0,
            len,
        }
    }

    /// Zero-copy view of `len` rows starting at `offset` (relative to this
    /// view). Name and id are preserved; callers that slice *semantically*
    /// derive new ids on top.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        if offset + len > self.len {
            return Err(DfError::InvalidArgument(format!(
                "slice [{offset}, {offset}+{len}) out of bounds for column {:?} of length {}",
                self.name, self.len
            )));
        }
        Ok(Column {
            name: self.name.clone(),
            id: self.id,
            data: Arc::clone(&self.data),
            offset: self.offset + offset,
            len,
        })
    }

    /// True when this view covers its whole underlying buffer.
    #[must_use]
    pub fn is_full_view(&self) -> bool {
        self.offset == 0 && self.len == self.data.len()
    }

    /// Column name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lineage id.
    #[must_use]
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// Element type.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Number of rows in this view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Content size in bytes (of this view's rows).
    #[must_use]
    pub fn nbytes(&self) -> usize {
        match self.data.as_ref() {
            ColumnData::Int(_) | ColumnData::Float(_) => self.len * 8,
            ColumnData::Bool(_) => self.len,
            ColumnData::Str(v) => v[self.offset..self.offset + self.len]
                .iter()
                .map(|s| s.len() + 8)
                .sum(),
        }
    }

    /// Shared handle to this view's data.
    ///
    /// A full view hands back the underlying buffer (no copy, pointer
    /// equality preserved — the artifact store's dedup relies on this); a
    /// proper slice compacts its rows into a fresh buffer first, so the
    /// result always has exactly [`Column::len`] rows.
    #[must_use]
    pub fn data(&self) -> Arc<ColumnData> {
        if self.is_full_view() {
            Arc::clone(&self.data)
        } else {
            Arc::new(self.data.slice_copy(self.offset, self.len))
        }
    }

    /// Owned copy of this view's rows (always materializes, even for full
    /// views — use [`Column::data`] when sharing is acceptable).
    #[must_use]
    pub fn to_data(&self) -> ColumnData {
        self.data.slice_copy(self.offset, self.len)
    }

    /// Same data, new name, same id (renaming does not change lineage).
    #[must_use]
    pub fn renamed(&self, name: &str) -> Column {
        Column {
            name: name.to_owned(),
            ..self.clone()
        }
    }

    /// Same data and name with a different lineage id.
    #[must_use]
    pub fn with_id(&self, id: ColumnId) -> Column {
        Column { id, ..self.clone() }
    }

    /// Integer slice view, or a type error.
    pub fn ints(&self) -> Result<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Ok(&v[self.offset..self.offset + self.len]),
            other => Err(self.type_err("int", other)),
        }
    }

    /// Float slice view, or a type error.
    pub fn floats(&self) -> Result<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Ok(&v[self.offset..self.offset + self.len]),
            other => Err(self.type_err("float", other)),
        }
    }

    /// String slice view, or a type error.
    pub fn strs(&self) -> Result<&[String]> {
        match self.data.as_ref() {
            ColumnData::Str(v) => Ok(&v[self.offset..self.offset + self.len]),
            other => Err(self.type_err("str", other)),
        }
    }

    /// Bool slice view, or a type error.
    pub fn bools(&self) -> Result<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Ok(&v[self.offset..self.offset + self.len]),
            other => Err(self.type_err("bool", other)),
        }
    }

    /// Numeric (`f64`) copy of the column; ints and bools cast.
    pub fn to_f64(&self) -> Result<Vec<f64>> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Ok(v[self.offset..self.offset + self.len]
                .iter()
                .map(|&x| x as f64)
                .collect()),
            ColumnData::Float(v) => Ok(v[self.offset..self.offset + self.len].to_vec()),
            ColumnData::Bool(v) => Ok(v[self.offset..self.offset + self.len]
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect()),
            ColumnData::Str(_) => Err(DfError::TypeMismatch {
                column: self.name.clone(),
                expected: "numeric",
                found: "str",
            }),
        }
    }

    /// Value at row `i` of this view.
    #[must_use]
    pub fn get(&self, i: usize) -> Scalar {
        assert!(
            i < self.len,
            "row {i} out of bounds for view of {}",
            self.len
        );
        self.data.get(self.offset + i)
    }

    fn type_err(&self, expected: &'static str, found: &ColumnData) -> DfError {
        DfError::TypeMismatch {
            column: self.name.clone(),
            expected,
            found: found.dtype().name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_ids_are_stable_and_distinct() {
        let a = ColumnId::source("train", "price");
        let b = ColumnId::source("train", "price");
        let c = ColumnId::source("train", "y");
        let d = ColumnId::source("test", "price");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn derive_depends_on_op_and_input() {
        let base = ColumnId::source("train", "price");
        assert_ne!(base.derive(1), base.derive(2));
        assert_ne!(base.derive(1), ColumnId::source("train", "y").derive(1));
        // Same op on the same column from two different frames agrees.
        assert_eq!(base.derive(7), ColumnId::source("train", "price").derive(7));
    }

    #[test]
    fn take_and_filter() {
        let data = ColumnData::Int(vec![10, 20, 30, 40]);
        assert_eq!(data.take(&[3, 0, 0]), ColumnData::Int(vec![40, 10, 10]));
        assert_eq!(
            data.filter(&[true, false, true, false]),
            ColumnData::Int(vec![10, 30])
        );
    }

    #[test]
    fn nbytes_accounting() {
        assert_eq!(ColumnData::Int(vec![1, 2]).nbytes(), 16);
        assert_eq!(ColumnData::Bool(vec![true; 5]).nbytes(), 5);
        assert_eq!(ColumnData::Str(vec!["ab".into()]).nbytes(), 10);
    }

    #[test]
    fn renames_keep_lineage() {
        let c = Column::source("train", "price", ColumnData::Float(vec![1.0]));
        let r = c.renamed("cost");
        assert_eq!(r.name(), "cost");
        assert_eq!(r.id(), c.id());
        assert!(Arc::ptr_eq(&c.data(), &r.data()));
    }

    #[test]
    fn slice_views_share_and_compact() {
        let c = Column::source("t", "a", ColumnData::Int(vec![10, 20, 30, 40, 50]));
        let v = c.slice(1, 3).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.ints().unwrap(), &[20, 30, 40]);
        assert_eq!(v.get(0), Scalar::Int(20));
        assert_eq!(v.nbytes(), 24);
        // Slicing a slice composes offsets.
        let vv = v.slice(1, 2).unwrap();
        assert_eq!(vv.ints().unwrap(), &[30, 40]);
        // data() compacts proper slices but shares full views.
        assert_eq!(v.data().as_ref(), &ColumnData::Int(vec![20, 30, 40]));
        assert!(Arc::ptr_eq(&c.data(), &c.slice(0, 5).unwrap().data()));
        assert!(c.slice(3, 3).is_err());
    }

    #[test]
    fn views_compare_logically() {
        let c = Column::source("t", "a", ColumnData::Int(vec![1, 2, 3, 4]));
        let view = c.slice(1, 2).unwrap();
        let copy = Column::from_arc("a", c.id(), view.data());
        assert_eq!(view, copy);
        assert_ne!(view, c.slice(0, 2).unwrap());
    }

    #[test]
    fn typed_views() {
        let c = Column::source("t", "a", ColumnData::Int(vec![1]));
        assert!(c.ints().is_ok());
        assert!(c.floats().is_err());
        assert_eq!(c.to_f64().unwrap(), vec![1.0]);
        let s = Column::source("t", "s", ColumnData::Str(vec!["x".into()]));
        assert!(s.to_f64().is_err());
    }
}
