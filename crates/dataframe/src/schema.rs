//! Schema metadata: the part of a `Dataset` artifact the Experiment Graph
//! always keeps, even for unmaterialized artifacts (paper §3.2: "for
//! datasets, the meta-data includes the name, type, and size of the
//! columns").

use crate::column::ColumnId;
use std::fmt;

/// The element type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (`NaN` = missing).
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// Short stable name used in digests and error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-column metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Lineage id of the column (paper §5.3).
    pub id: ColumnId,
    /// Content size in bytes.
    pub nbytes: usize,
}

/// The schema of a dataframe: ordered column metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The ordered fields.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up a field by column name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Total content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.fields.iter().map(|f| f.nbytes).sum()
    }

    /// A stable digest of names and types (used in source-artifact ids).
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for f in &self.fields {
            out.push_str(&f.name);
            out.push(':');
            out.push_str(f.dtype.name());
            out.push(';');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, dtype: DType) -> Field {
        Field {
            name: name.into(),
            dtype,
            id: ColumnId(0),
            nbytes: 8,
        }
    }

    #[test]
    fn lookup_and_digest() {
        let s = Schema::new(vec![field("a", DType::Int), field("b", DType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.field("b").unwrap().dtype, DType::Str);
        assert!(s.field("c").is_none());
        assert_eq!(s.digest(), "a:int;b:str;");
        assert_eq!(s.nbytes(), 16);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = Schema::new(vec![field("a", DType::Int), field("b", DType::Int)]);
        let b = Schema::new(vec![field("b", DType::Int), field("a", DType::Int)]);
        assert_ne!(a.digest(), b.digest());
    }
}
