//! Schema metadata: the part of a `Dataset` artifact the Experiment Graph
//! always keeps, even for unmaterialized artifacts (paper §3.2: "for
//! datasets, the meta-data includes the name, type, and size of the
//! columns").

use crate::column::ColumnId;
use std::fmt;

/// The element type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (`NaN` = missing).
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// Short stable name used in digests and error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }
}

impl DType {
    /// Whether `Column::to_f64` succeeds on this dtype — the definition
    /// of a "numeric" feature column everywhere in the workspace.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        !matches!(self, DType::Str)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A statically inferred column: its name plus its dtype when that is
/// statically known (`None` when the dtype is data-dependent — e.g. an
/// outer join's right-side `Int` column, which gathers to `Float` iff an
/// unmatched left row exists).
pub type InferredColumn = (String, Option<DType>);

/// Static mirror of [`crate::ops::hconcat`]'s output naming: columns of
/// every frame in order, duplicate names suffixed `_{fi}` with the same
/// bump loop the runtime uses.
#[must_use]
pub fn hconcat_columns(frames: &[Vec<InferredColumn>]) -> Vec<InferredColumn> {
    let mut names: Vec<String> = Vec::new();
    let mut out: Vec<InferredColumn> = Vec::new();
    for (fi, frame) in frames.iter().enumerate() {
        for (base, dtype) in frame {
            let mut name = base.clone();
            if names.iter().any(|n| n == &name) {
                name = format!("{base}_{fi}");
                let mut bump = fi;
                while names.iter().any(|n| n == &name) {
                    bump += 1;
                    name = format!("{base}_{bump}");
                }
            }
            names.push(name.clone());
            out.push((name, *dtype));
        }
    }
    out
}

/// Static mirror of [`crate::ops::inner_join`] / [`crate::ops::left_join`]
/// output columns: the key (from the left side, always `Int`), left
/// non-key columns, then right non-key columns — a right name colliding
/// with *any* left name is suffixed `_r`. For outer joins the right
/// side's `Int`/`Bool` columns may be promoted to `Float` at runtime, so
/// their static dtype is `None`.
#[must_use]
pub fn join_columns(
    left: &[InferredColumn],
    right: &[InferredColumn],
    on: &str,
    outer: bool,
) -> Vec<InferredColumn> {
    let mut out: Vec<InferredColumn> = Vec::with_capacity(left.len() + right.len());
    out.push((on.to_owned(), Some(DType::Int)));
    for (name, dtype) in left.iter().filter(|(n, _)| n != on) {
        out.push((name.clone(), *dtype));
    }
    for (name, dtype) in right.iter().filter(|(n, _)| n != on) {
        let out_name = if left.iter().any(|(n, _)| n == name) {
            format!("{name}_r")
        } else {
            name.clone()
        };
        let out_dtype = match dtype {
            Some(DType::Int | DType::Bool) if outer => None,
            other => *other,
        };
        out.push((out_name, out_dtype));
    }
    out
}

/// Static mirror of [`crate::ops::align`]: the columns common to both
/// frames, in the *left* frame's order. `dtypes_from` selects which
/// side's dtypes the caller wants (side 0 = left output, side 1 = right
/// output; both outputs share the left frame's column order).
#[must_use]
pub fn align_columns(
    left: &[InferredColumn],
    right: &[InferredColumn],
    dtypes_from_right: bool,
) -> Vec<InferredColumn> {
    left.iter()
        .filter_map(|(name, ldt)| {
            let rdt = right.iter().find(|(n, _)| n == name).map(|(_, dt)| *dt)?;
            Some((name.clone(), if dtypes_from_right { rdt } else { *ldt }))
        })
        .collect()
}

/// Static mirror of `DataFrame::with_column`: a same-named column is
/// removed from its position and the new column appended at the end.
pub fn replace_column(columns: &mut Vec<InferredColumn>, name: &str, dtype: Option<DType>) {
    columns.retain(|(n, _)| n != name);
    columns.push((name.to_owned(), dtype));
}

/// Per-column metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Lineage id of the column (paper §5.3).
    pub id: ColumnId,
    /// Content size in bytes.
    pub nbytes: usize,
}

/// The schema of a dataframe: ordered column metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The ordered fields.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up a field by column name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Total content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.fields.iter().map(|f| f.nbytes).sum()
    }

    /// A stable digest of names and types (used in source-artifact ids).
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for f in &self.fields {
            out.push_str(&f.name);
            out.push(':');
            out.push_str(f.dtype.name());
            out.push(';');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, dtype: DType) -> Field {
        Field {
            name: name.into(),
            dtype,
            id: ColumnId(0),
            nbytes: 8,
        }
    }

    #[test]
    fn lookup_and_digest() {
        let s = Schema::new(vec![field("a", DType::Int), field("b", DType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.field("b").unwrap().dtype, DType::Str);
        assert!(s.field("c").is_none());
        assert_eq!(s.digest(), "a:int;b:str;");
        assert_eq!(s.nbytes(), 16);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = Schema::new(vec![field("a", DType::Int), field("b", DType::Int)]);
        let b = Schema::new(vec![field("b", DType::Int), field("a", DType::Int)]);
        assert_ne!(a.digest(), b.digest());
    }

    // --- static schema transfer vs. the real ops --------------------------

    use crate::column::{Column, ColumnData};
    use crate::frame::DataFrame;

    fn cols_of(df: &DataFrame) -> Vec<InferredColumn> {
        df.schema()
            .fields()
            .iter()
            .map(|f| (f.name.clone(), Some(f.dtype)))
            .collect()
    }

    /// Inferred columns agree with a real frame: same names in order, and
    /// every statically known dtype matches.
    fn assert_matches(inferred: &[InferredColumn], df: &DataFrame) {
        let actual = cols_of(df);
        assert_eq!(
            inferred.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            actual.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        for ((_, idt), (name, adt)) in inferred.iter().zip(&actual) {
            if let Some(idt) = idt {
                assert_eq!(Some(*idt), *adt, "dtype of {name}");
            }
        }
    }

    #[test]
    fn hconcat_columns_matches_runtime_suffixing() {
        let a = DataFrame::new(vec![
            Column::source("a", "x", ColumnData::Int(vec![1, 2])),
            Column::source("a", "y", ColumnData::Float(vec![0.1, 0.2])),
        ])
        .unwrap();
        let b = DataFrame::new(vec![
            Column::source("b", "x", ColumnData::Str(vec!["p".into(), "q".into()])),
            Column::source("b", "x_1", ColumnData::Bool(vec![true, false])),
        ])
        .unwrap();
        let inferred = hconcat_columns(&[cols_of(&a), cols_of(&b)]);
        let actual = crate::ops::hconcat(&[&a, &b]).unwrap();
        assert_matches(&inferred, &actual);
    }

    #[test]
    fn join_columns_matches_runtime_collisions_and_promotion() {
        let left = DataFrame::new(vec![
            Column::source("l", "id", ColumnData::Int(vec![1, 2, 3])),
            Column::source("l", "x", ColumnData::Float(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1, 2])),
            Column::source("r", "x", ColumnData::Int(vec![7, 8])),
            Column::source("r", "z", ColumnData::Str(vec!["a".into(), "b".into()])),
        ])
        .unwrap();
        let inferred = join_columns(&cols_of(&left), &cols_of(&right), "id", false);
        let actual = crate::ops::inner_join(&left, &right, "id").unwrap();
        assert_matches(&inferred, &actual);
        // Outer join: row 3 is unmatched, so the right Int column gathers
        // to Float — statically None, which assert_matches skips.
        let inferred = join_columns(&cols_of(&left), &cols_of(&right), "id", true);
        let actual = crate::ops::left_join(&left, &right, "id").unwrap();
        assert_matches(&inferred, &actual);
        assert_eq!(inferred[2], ("x_r".to_owned(), None));
        assert_eq!(actual.column("x_r").unwrap().dtype(), DType::Float);
    }

    #[test]
    fn align_and_replace_match_runtime() {
        let a = DataFrame::new(vec![
            Column::source("a", "x", ColumnData::Int(vec![1])),
            Column::source("a", "y", ColumnData::Float(vec![0.5])),
            Column::source("a", "w", ColumnData::Bool(vec![true])),
        ])
        .unwrap();
        let b = DataFrame::new(vec![
            Column::source("b", "w", ColumnData::Float(vec![2.0])),
            Column::source("b", "x", ColumnData::Int(vec![3])),
        ])
        .unwrap();
        let (la, lb) = crate::ops::align(&a, &b).unwrap();
        assert_matches(&align_columns(&cols_of(&a), &cols_of(&b), false), &la);
        assert_matches(&align_columns(&cols_of(&a), &cols_of(&b), true), &lb);

        // with_column moves a replaced column to the end.
        let mut cols = cols_of(&a);
        replace_column(&mut cols, "x", Some(DType::Float));
        let replaced = a
            .with_column(Column::source("a", "x", ColumnData::Float(vec![9.0])))
            .unwrap();
        assert_matches(&cols, &replaced);
    }
}
