//! Minimal CSV support for the examples: header + comma-separated rows,
//! type inference (int → float → string), `NaN`/empty as missing floats.
//!
//! This is intentionally small — the evaluation workloads generate data
//! in-process; CSV exists so the runnable examples can round-trip files the
//! way the paper's Listing 1 does (`pd.read_csv('train.csv')`).

use crate::column::{Column, ColumnData};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;

/// Parse CSV text into a dataframe. `dataset` names the source for column
/// lineage ids. The first line must be a header; fields may be quoted with
/// double quotes (no embedded newlines).
pub fn read_csv_str(dataset: &str, text: &str) -> Result<DataFrame> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| DfError::Csv {
        line: 0,
        message: "missing header".to_owned(),
    })?;
    let names = split_row(header);
    if names.is_empty() {
        return Err(DfError::Csv {
            line: 1,
            message: "empty header".to_owned(),
        });
    }
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let row = split_row(line);
        if row.len() != names.len() {
            return Err(DfError::Csv {
                line: lineno + 1,
                message: format!("expected {} fields, found {}", names.len(), row.len()),
            });
        }
        for (col, value) in cells.iter_mut().zip(row) {
            col.push(value);
        }
    }
    let columns = names
        .into_iter()
        .zip(cells)
        .map(|(name, values)| Column::source(dataset, &name, infer(values)))
        .collect();
    DataFrame::new(columns)
}

/// Render a dataframe as CSV text.
#[must_use]
pub fn to_csv_string(df: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(&df.column_names().join(","));
    out.push('\n');
    for i in 0..df.n_rows() {
        let row: Vec<String> = df
            .row(i)
            .iter()
            .map(|s| {
                let rendered = s.to_string();
                if rendered.contains(',') || rendered.contains('"') {
                    format!("\"{}\"", rendered.replace('"', "\"\""))
                } else {
                    rendered
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Read a CSV file from disk.
pub fn read_csv_file(dataset: &str, path: &std::path::Path) -> Result<DataFrame> {
    let text = std::fs::read_to_string(path).map_err(|e| DfError::Csv {
        line: 0,
        message: format!("{}: {e}", path.display()),
    })?;
    read_csv_str(dataset, &text)
}

fn split_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                field.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Infer the tightest column type: all-int → Int, numeric-or-missing →
/// Float, otherwise Str. Empty strings and literal `NaN` count as missing.
fn infer(values: Vec<String>) -> ColumnData {
    let is_missing = |s: &str| s.is_empty() || s == "NaN" || s == "nan";
    let all_int = !values.is_empty()
        && values
            .iter()
            .all(|v| !is_missing(v) && v.parse::<i64>().is_ok());
    if all_int {
        // co-lint:allow(no-panic) the all_int scan above proved every value parses
        return ColumnData::Int(values.iter().map(|v| v.parse().expect("checked")).collect());
    }
    let all_num = !values.is_empty()
        && values
            .iter()
            .all(|v| is_missing(v) || v.parse::<f64>().is_ok());
    if all_num {
        return ColumnData::Float(
            values
                .iter()
                .map(|v| {
                    if is_missing(v) {
                        f64::NAN
                    } else {
                        // co-lint:allow(no-panic) non-missing values were parse-checked above
                        v.parse().expect("checked")
                    }
                })
                .collect(),
        );
    }
    ColumnData::Str(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DType;

    #[test]
    fn parses_and_infers_types() {
        let df = read_csv_str("t", "id,price,name\n1,1.5,apple\n2,,\"pear, green\"\n").unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.column("id").unwrap().dtype(), DType::Int);
        assert_eq!(df.column("price").unwrap().dtype(), DType::Float);
        assert!(df.column("price").unwrap().floats().unwrap()[1].is_nan());
        assert_eq!(df.column("name").unwrap().strs().unwrap()[1], "pear, green");
    }

    #[test]
    fn round_trips() {
        let df = read_csv_str("t", "a,b\n1,x\n2,y\n").unwrap();
        let text = to_csv_string(&df);
        let back = read_csv_str("t", &text).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(
            back.column("b").unwrap().strs().unwrap(),
            df.column("b").unwrap().strs().unwrap()
        );
    }

    #[test]
    fn quoted_fields_round_trip() {
        let df = read_csv_str("t", "a\n\"has, comma\"\n\"has \"\"quote\"\"\"\n").unwrap();
        let strs = df.column("a").unwrap().strs().unwrap();
        assert_eq!(strs[0], "has, comma");
        assert_eq!(strs[1], "has \"quote\"");
        let back = read_csv_str("t", &to_csv_string(&df)).unwrap();
        assert_eq!(back.column("a").unwrap().strs().unwrap(), strs);
    }

    #[test]
    fn ragged_rows_error() {
        let err = read_csv_str("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, DfError::Csv { line: 2, .. }));
    }

    #[test]
    fn file_io_round_trips() {
        let df = read_csv_str("t", "a,b\n1,x\n2,y\n").unwrap();
        let path = std::env::temp_dir().join("co_dataframe_csv_test.csv");
        std::fs::write(&path, to_csv_string(&df)).unwrap();
        let back = read_csv_file("t", &path).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.column("a").unwrap().ints().unwrap(), &[1, 2]);
        std::fs::remove_file(&path).ok();
        // Missing files surface a csv error, not a panic.
        assert!(matches!(
            read_csv_file("t", std::path::Path::new("/nonexistent/x.csv")),
            Err(DfError::Csv { .. })
        ));
    }

    #[test]
    fn same_file_gives_same_source_ids() {
        let a = read_csv_str("train", "x\n1\n").unwrap();
        let b = read_csv_str("train", "x\n2\n").unwrap();
        // Source ids depend on dataset + column name only (identity of the
        // raw input is the caller's responsibility, as in the paper).
        assert_eq!(a.column("x").unwrap().id(), b.column("x").unwrap().id());
        let c = read_csv_str("test", "x\n1\n").unwrap();
        assert_ne!(a.column("x").unwrap().id(), c.column("x").unwrap().id());
    }
}
