//! Error type for dataframe operations.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DfError>;

/// Errors produced by dataframe construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// Two columns (or frames) that must have equal length do not.
    LengthMismatch {
        expected: usize,
        found: usize,
        context: String,
    },
    /// An operation was applied to a column of an unsupported type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        found: &'static str,
    },
    /// A frame would contain duplicate column names.
    DuplicateColumn(String),
    /// A frame must contain at least one column/row for this operation.
    Empty(String),
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// Invalid argument (bad parameter value, empty selection, ...).
    InvalidArgument(String),
    /// An invariant the kernel established earlier no longer holds, or a
    /// worker thread died. Replaces what used to be a panic path: with
    /// chunk-parallel kernels a panic on a pool thread is not confined by
    /// the executor's `catch_unwind`, so kernels must not panic at all.
    Internal(String),
    /// A type promotion would silently change a value (e.g. `left_join`
    /// widening an `Int` column to `Float` when it holds a value with
    /// |v| > 2^53, which `f64` cannot represent exactly).
    LossyCast { column: String, value: i64 },
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            DfError::LengthMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "length mismatch in {context}: expected {expected}, found {found}"
                )
            }
            DfError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch on column {column:?}: expected {expected}, found {found}"
                )
            }
            DfError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            DfError::Empty(context) => write!(f, "empty input: {context}"),
            DfError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DfError::InvalidArgument(message) => write!(f, "invalid argument: {message}"),
            DfError::Internal(message) => write!(f, "internal error: {message}"),
            DfError::LossyCast { column, value } => {
                write!(
                    f,
                    "lossy cast on column {column:?}: {value} exceeds 2^53 and cannot be \
                     represented exactly as f64"
                )
            }
        }
    }
}

impl std::error::Error for DfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DfError::ColumnNotFound("price".into());
        assert!(err.to_string().contains("price"));
        let err = DfError::LengthMismatch {
            expected: 3,
            found: 2,
            context: "with_column".into(),
        };
        assert!(err.to_string().contains("expected 3"));
        let err = DfError::TypeMismatch {
            column: "y".into(),
            expected: "float",
            found: "str",
        };
        assert!(err.to_string().contains("float"));
        let err = DfError::Internal("worker thread panicked".into());
        assert!(err.to_string().contains("internal error"));
        let err = DfError::LossyCast {
            column: "id".into(),
            value: (1i64 << 53) + 1,
        };
        assert!(err.to_string().contains("id"));
        assert!(err.to_string().contains("2^53"));
    }
}
