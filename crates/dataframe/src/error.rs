//! Error type for dataframe operations.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DfError>;

/// Errors produced by dataframe construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// Two columns (or frames) that must have equal length do not.
    LengthMismatch {
        expected: usize,
        found: usize,
        context: String,
    },
    /// An operation was applied to a column of an unsupported type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        found: &'static str,
    },
    /// A frame would contain duplicate column names.
    DuplicateColumn(String),
    /// A frame must contain at least one column/row for this operation.
    Empty(String),
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// Invalid argument (bad parameter value, empty selection, ...).
    InvalidArgument(String),
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            DfError::LengthMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "length mismatch in {context}: expected {expected}, found {found}"
                )
            }
            DfError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch on column {column:?}: expected {expected}, found {found}"
                )
            }
            DfError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            DfError::Empty(context) => write!(f, "empty input: {context}"),
            DfError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            DfError::InvalidArgument(message) => write!(f, "invalid argument: {message}"),
        }
    }
}

impl std::error::Error for DfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DfError::ColumnNotFound("price".into());
        assert!(err.to_string().contains("price"));
        let err = DfError::LengthMismatch {
            expected: 3,
            found: 2,
            context: "with_column".into(),
        };
        assert!(err.to_string().contains("expected 3"));
        let err = DfError::TypeMismatch {
            column: "y".into(),
            expected: "float",
            found: "str",
        };
        assert!(err.to_string().contains("float"));
    }
}
