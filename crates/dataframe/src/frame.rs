//! The [`DataFrame`]: an ordered collection of equal-length [`Column`]s.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::par;
use crate::scalar::Scalar;
use crate::schema::{DType, Field, Schema};
use std::collections::HashMap;
use std::fmt;

/// Chunk-parallel gather of `v[indices[k]]` into a fresh vector; indices
/// must be pre-validated against `v.len()`.
/// Row-index types accepted by [`gather`]: `usize` everywhere, and `u32`
/// for the join's compact row-id vectors (half the memory traffic on the
/// hot 2M-row gather paths).
pub(crate) trait RowIx: Copy + Send + Sync {
    fn ix(self) -> usize;
}
impl RowIx for usize {
    #[inline]
    fn ix(self) -> usize {
        self
    }
}
impl RowIx for u32 {
    #[inline]
    fn ix(self) -> usize {
        self as usize
    }
}

pub(crate) fn gather<T: Clone + Default + Send + Sync, I: RowIx>(
    v: &[T],
    indices: &[I],
) -> Result<Vec<T>> {
    // Serial fast path: a straight collect skips the zero-init pass the
    // chunked fill needs (the output is identical — same values in the
    // same order — so thread count still never changes results).
    if par::current_threads() <= 1 {
        return Ok(indices.iter().map(|ix| v[ix.ix()].clone()).collect());
    }
    let mut out = vec![T::default(); indices.len()];
    par::fill_chunks(&mut out, |_ci, start, chunk| {
        // Zip instead of `indices[start + off]`: drops a bounds check and
        // the index arithmetic from the per-element hot path.
        let chunk_len = chunk.len();
        for (slot, ix) in chunk.iter_mut().zip(&indices[start..][..chunk_len]) {
            *slot = v[ix.ix()].clone();
        }
        Ok(())
    })?;
    Ok(out)
}

/// Gather a column's rows by (pre-validated) index, chunk-parallel, going
/// through the typed view accessors so sliced inputs need no compaction.
pub(crate) fn gather_column<I: RowIx>(c: &Column, indices: &[I]) -> Result<ColumnData> {
    match c.dtype() {
        DType::Int => Ok(ColumnData::Int(gather(c.ints()?, indices)?)),
        DType::Float => Ok(ColumnData::Float(gather(c.floats()?, indices)?)),
        DType::Str => Ok(ColumnData::Str(gather(c.strs()?, indices)?)),
        DType::Bool => Ok(ColumnData::Bool(gather(c.bools()?, indices)?)),
    }
}

/// An immutable, column-oriented table.
///
/// Structural operations that do not touch column *content* — projection,
/// renaming, horizontal concatenation — preserve column ids and share the
/// underlying buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// Build a frame from columns. All columns must have equal length and
    /// unique names.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        let n_rows = columns.first().map_or(0, Column::len);
        let mut seen = HashMap::with_capacity(columns.len());
        for c in &columns {
            if c.len() != n_rows {
                return Err(DfError::LengthMismatch {
                    expected: n_rows,
                    found: c.len(),
                    context: format!("DataFrame::new (column {:?})", c.name()),
                });
            }
            if seen.insert(c.name().to_owned(), ()).is_some() {
                return Err(DfError::DuplicateColumn(c.name().to_owned()));
            }
        }
        Ok(DataFrame { columns, n_rows })
    }

    /// An empty frame (0 rows, 0 columns).
    #[must_use]
    pub fn empty() -> Self {
        DataFrame::default()
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The ordered columns.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Ordered column names.
    #[must_use]
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// True when a column with this name exists.
    #[must_use]
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name() == name)
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| DfError::ColumnNotFound(name.to_owned()))
    }

    /// Positional column access.
    #[must_use]
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Schema (names, types, ids, sizes).
    #[must_use]
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field {
                    name: c.name().to_owned(),
                    dtype: c.dtype(),
                    id: c.id(),
                    nbytes: c.nbytes(),
                })
                .collect(),
        )
    }

    /// Total content size in bytes.
    #[must_use]
    pub fn nbytes(&self) -> usize {
        self.columns.iter().map(Column::nbytes).sum()
    }

    /// Lineage ids of all columns, in order.
    #[must_use]
    pub fn column_ids(&self) -> Vec<ColumnId> {
        self.columns.iter().map(Column::id).collect()
    }

    /// Projection: keep the named columns, in the given order. Preserves
    /// column ids (a projection does not change content).
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let cols = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(cols)
    }

    /// Drop the named columns; the rest keep their ids and order.
    pub fn drop_columns(&self, names: &[&str]) -> Result<DataFrame> {
        for n in names {
            // Surface typos instead of silently keeping everything.
            self.column(n)?;
        }
        let cols = self
            .columns
            .iter()
            .filter(|c| !names.contains(&c.name()))
            .cloned()
            .collect();
        DataFrame::new(cols)
    }

    /// Rename a column (lineage id unchanged).
    pub fn rename(&self, from: &str, to: &str) -> Result<DataFrame> {
        self.column(from)?;
        if from != to && self.has_column(to) {
            return Err(DfError::DuplicateColumn(to.to_owned()));
        }
        let cols = self
            .columns
            .iter()
            .map(|c| {
                if c.name() == from {
                    c.renamed(to)
                } else {
                    c.clone()
                }
            })
            .collect();
        DataFrame::new(cols)
    }

    /// Add (or replace) a column. The column must match the frame's row
    /// count; on an empty frame it defines the row count.
    pub fn with_column(&self, column: Column) -> Result<DataFrame> {
        if !self.columns.is_empty() && column.len() != self.n_rows {
            return Err(DfError::LengthMismatch {
                expected: self.n_rows,
                found: column.len(),
                context: format!("with_column({:?})", column.name()),
            });
        }
        let mut cols: Vec<Column> = self
            .columns
            .iter()
            .filter(|c| c.name() != column.name())
            .cloned()
            .collect();
        cols.push(column);
        DataFrame::new(cols)
    }

    /// First `n` rows, as zero-copy slice views of this frame's buffers
    /// (callers in the op layer are responsible for deriving ids; this
    /// helper keeps ids).
    #[must_use]
    pub fn head(&self, n: usize) -> DataFrame {
        let n = self.n_rows.min(n);
        let cols = self
            .columns
            .iter()
            // co-lint:allow(no-panic) n is min-clamped to the row count just above
            .map(|c| c.slice(0, n).expect("head length clamped to row count"))
            .collect();
        DataFrame {
            columns: cols,
            n_rows: n,
        }
    }

    /// Gather rows by index, keeping column names and ids.
    ///
    /// Indices that form a single contiguous ascending run (`k, k+1, ...`)
    /// produce zero-copy slice views; anything else gathers, chunk-parallel
    /// over the output rows. Out-of-bounds indices are rejected up front so
    /// the gather itself cannot panic.
    ///
    /// This is a plumbing primitive; semantic operations in [`crate::ops`]
    /// wrap it and derive new column ids.
    pub fn take_rows(&self, indices: &[usize]) -> Result<DataFrame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n_rows) {
            return Err(DfError::InvalidArgument(format!(
                "take_rows: row index {bad} out of bounds for frame of {} rows",
                self.n_rows
            )));
        }
        let contiguous = indices
            .first()
            .is_some_and(|&first| indices.iter().enumerate().all(|(k, &i)| i == first + k));
        let cols = if contiguous {
            self.columns
                .iter()
                .map(|c| c.slice(indices[0], indices.len()))
                .collect::<Result<Vec<_>>>()?
        } else {
            self.columns
                .iter()
                .map(|c| {
                    Ok(Column::derived(
                        c.name(),
                        c.id(),
                        gather_column(c, indices)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?
        };
        Ok(DataFrame {
            columns: cols,
            n_rows: indices.len(),
        })
    }

    /// One row as scalars.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<Scalar> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Map every column id through `f` (used by ops that affect all
    /// columns, e.g. row filters).
    #[must_use]
    pub fn map_ids(&self, f: impl Fn(ColumnId) -> ColumnId) -> DataFrame {
        let cols = self.columns.iter().map(|c| c.with_id(f(c.id()))).collect();
        DataFrame {
            columns: cols,
            n_rows: self.n_rows,
        }
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DataFrame [{} rows x {} cols]",
            self.n_rows,
            self.n_cols()
        )?;
        let header: Vec<&str> = self.column_names();
        writeln!(f, "{}", header.join("\t"))?;
        for i in 0..self.n_rows.min(10) {
            let row: Vec<String> = self.row(i).iter().map(ToString::to_string).collect();
            writeln!(f, "{}", row.join("\t"))?;
        }
        if self.n_rows > 10 {
            writeln!(f, "... ({} more rows)", self.n_rows - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Int(vec![1, 2, 3])),
            Column::source("t", "b", ColumnData::Float(vec![1.5, 2.5, 3.5])),
            Column::source(
                "t",
                "s",
                ColumnData::Str(vec!["x".into(), "y".into(), "z".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let err = DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Int(vec![1, 2])),
            Column::source("t", "b", ColumnData::Int(vec![1])),
        ])
        .unwrap_err();
        assert!(matches!(err, DfError::LengthMismatch { .. }));

        let err = DataFrame::new(vec![
            Column::source("t", "a", ColumnData::Int(vec![1])),
            Column::source("u", "a", ColumnData::Int(vec![1])),
        ])
        .unwrap_err();
        assert!(matches!(err, DfError::DuplicateColumn(_)));
    }

    #[test]
    fn select_preserves_ids_and_order() {
        let d = df();
        let p = d.select(&["s", "a"]).unwrap();
        assert_eq!(p.column_names(), vec!["s", "a"]);
        assert_eq!(p.column("a").unwrap().id(), d.column("a").unwrap().id());
        assert!(d.select(&["nope"]).is_err());
    }

    #[test]
    fn drop_and_rename() {
        let d = df();
        let dropped = d.drop_columns(&["b"]).unwrap();
        assert_eq!(dropped.column_names(), vec!["a", "s"]);
        assert!(d.drop_columns(&["zz"]).is_err());

        let renamed = d.rename("a", "alpha").unwrap();
        assert_eq!(
            renamed.column("alpha").unwrap().id(),
            d.column("a").unwrap().id()
        );
        assert!(d.rename("a", "b").is_err());
    }

    #[test]
    fn with_column_replaces() {
        let d = df();
        let d2 = d
            .with_column(Column::source("t", "a", ColumnData::Int(vec![9, 9, 9])))
            .unwrap();
        assert_eq!(d2.n_cols(), 3);
        assert_eq!(d2.column("a").unwrap().ints().unwrap(), &[9, 9, 9]);
        assert!(d
            .with_column(Column::source("t", "c", ColumnData::Int(vec![1])))
            .is_err());
    }

    #[test]
    fn take_rows_and_head() {
        let d = df();
        let t = d.take_rows(&[2, 0]).unwrap();
        assert_eq!(t.column("a").unwrap().ints().unwrap(), &[3, 1]);
        assert_eq!(d.head(2).n_rows(), 2);
        assert_eq!(d.head(99).n_rows(), 3);
        assert!(d.take_rows(&[3]).is_err());
    }

    #[test]
    fn contiguous_take_and_head_share_buffers() {
        use std::sync::Arc;
        let d = df();
        // head is a zero-copy view over the same buffer.
        let h = d.head(2);
        assert!(Arc::ptr_eq(
            &d.column("a").unwrap().data(),
            &d.head(3).column("a").unwrap().data()
        ));
        assert_eq!(h.column("a").unwrap().ints().unwrap(), &[1, 2]);
        // A contiguous ascending run slices instead of gathering.
        let t = d.take_rows(&[1, 2]).unwrap();
        assert_eq!(t.column("b").unwrap().floats().unwrap(), &[2.5, 3.5]);
        assert_eq!(t.column("a").unwrap().id(), d.column("a").unwrap().id());
        // Non-contiguous still gathers correctly.
        let g = d.take_rows(&[2, 2, 0]).unwrap();
        assert_eq!(g.column("s").unwrap().strs().unwrap(), &["z", "z", "x"]);
    }

    #[test]
    fn schema_and_nbytes() {
        let d = df();
        let s = d.schema();
        assert_eq!(s.len(), 3);
        assert_eq!(d.nbytes(), s.nbytes());
        assert!(d.nbytes() > 0);
    }
}
