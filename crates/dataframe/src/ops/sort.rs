//! Sorting. Reordering rows changes content, so all column ids are derived.

use crate::error::Result;
use crate::frame::DataFrame;
use crate::hash;

/// Stable operation signature for [`sort_by`].
#[must_use]
pub fn sort_signature(col: &str, ascending: bool) -> u64 {
    hash::fnv1a_parts(&["sort", col, if ascending { "asc" } else { "desc" }])
}

/// Sort rows by a column. Numeric columns sort by value with `NaN` last;
/// string columns sort lexicographically. The sort is stable.
pub fn sort_by(df: &DataFrame, col: &str, ascending: bool) -> Result<DataFrame> {
    let sig = sort_signature(col, ascending);
    let column = df.column(col)?;
    let mut indices: Vec<usize> = (0..df.n_rows()).collect();
    match column.strs() {
        Ok(strs) => {
            indices.sort_by(|&a, &b| {
                let ord = strs[a].cmp(&strs[b]);
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        Err(_) => {
            let values = column.to_f64()?;
            indices.sort_by(|&a, &b| {
                let (x, y) = (values[a], values[b]);
                // NaN sorts after everything regardless of direction.
                let ord = match (x.is_nan(), y.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => return std::cmp::Ordering::Greater,
                    (false, true) => return std::cmp::Ordering::Less,
                    // Both non-NaN, so partial_cmp cannot return None; the
                    // Equal fallback (rather than .unwrap()) keeps the
                    // comparator panic-free without changing the order.
                    // (Not total_cmp: that would split -0.0 from 0.0 and
                    // reorder rows vs. the established artifact hashes.)
                    (false, false) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                };
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
    }
    Ok(df.take_rows(&indices)?.map_ids(|id| id.derive(sig)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};

    #[test]
    fn sorts_numeric_with_nan_last() {
        let d = DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float(vec![3.0, f64::NAN, 1.0, 2.0])),
            Column::source("t", "i", ColumnData::Int(vec![0, 1, 2, 3])),
        ])
        .unwrap();
        let asc = sort_by(&d, "x", true).unwrap();
        assert_eq!(asc.column("i").unwrap().ints().unwrap(), &[2, 3, 0, 1]);
        let desc = sort_by(&d, "x", false).unwrap();
        assert_eq!(desc.column("i").unwrap().ints().unwrap(), &[0, 3, 2, 1]);
    }

    #[test]
    fn sorts_strings() {
        let d = DataFrame::new(vec![Column::source(
            "t",
            "s",
            ColumnData::Str(vec!["b".into(), "a".into(), "c".into()]),
        )])
        .unwrap();
        let out = sort_by(&d, "s", true).unwrap();
        assert_eq!(
            out.column("s").unwrap().strs().unwrap(),
            &["a".to_owned(), "b".to_owned(), "c".to_owned()]
        );
    }

    #[test]
    fn direction_changes_lineage() {
        let d =
            DataFrame::new(vec![Column::source("t", "x", ColumnData::Int(vec![2, 1]))]).unwrap();
        let a = sort_by(&d, "x", true).unwrap();
        let b = sort_by(&d, "x", false).unwrap();
        assert_ne!(a.column_ids(), b.column_ids());
    }
}
