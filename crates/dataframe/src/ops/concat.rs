//! Concatenation and alignment.
//!
//! * [`hconcat`] (pandas `concat(axis=1)`) moves whole columns between
//!   frames without touching content — column ids are **preserved**, which is
//!   the main deduplication opportunity the storage-aware materializer
//!   exploits (feature matrices assembled from previously stored parts cost
//!   almost nothing extra to materialize).
//! * [`vconcat`] (axis=0) stacks rows, changing content — ids are derived.
//! * [`align`] is the paper's alignment operation (§7.2): keep only the
//!   columns common to both frames. Rows are untouched, so ids are
//!   preserved. It returns *two* frames; the operator layer wraps it as two
//!   single-output operations, mirroring the paper's own re-implementation
//!   note.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash;
use crate::par;

/// Stable operation signature for [`hconcat`].
#[must_use]
pub fn hconcat_signature(n_inputs: usize) -> u64 {
    hash::fnv1a_parts(&["hconcat", &n_inputs.to_string()])
}

/// Horizontal concatenation: all frames must have the same row count.
/// Duplicate names are suffixed `_1`, `_2`, ... by frame position; renaming
/// does not change lineage ids.
pub fn hconcat(frames: &[&DataFrame]) -> Result<DataFrame> {
    let Some(first) = frames.first() else {
        return Err(DfError::Empty("hconcat of zero frames".to_owned()));
    };
    let n_rows = first.n_rows();
    let mut out: Vec<Column> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (fi, frame) in frames.iter().enumerate() {
        if frame.n_rows() != n_rows {
            return Err(DfError::LengthMismatch {
                expected: n_rows,
                found: frame.n_rows(),
                context: format!("hconcat frame {fi}"),
            });
        }
        for c in frame.columns() {
            let mut name = c.name().to_owned();
            if names.iter().any(|n| n == &name) {
                name = format!("{}_{}", c.name(), fi);
                let mut bump = fi;
                while names.iter().any(|n| n == &name) {
                    bump += 1;
                    name = format!("{}_{}", c.name(), bump);
                }
            }
            names.push(name.clone());
            out.push(c.renamed(&name));
        }
    }
    DataFrame::new(out)
}

/// Stable operation signature for [`vconcat`].
#[must_use]
pub fn vconcat_signature(n_inputs: usize) -> u64 {
    hash::fnv1a_parts(&["vconcat", &n_inputs.to_string()])
}

/// Vertical concatenation: frames must share the same schema (names and
/// types, in order). Output ids derive from all stacked input ids.
pub fn vconcat(frames: &[&DataFrame]) -> Result<DataFrame> {
    let Some(first) = frames.first() else {
        return Err(DfError::Empty("vconcat of zero frames".to_owned()));
    };
    let sig = vconcat_signature(frames.len());
    for f in &frames[1..] {
        if f.n_cols() != first.n_cols() {
            return Err(DfError::LengthMismatch {
                expected: first.n_cols(),
                found: f.n_cols(),
                context: "vconcat column counts".to_owned(),
            });
        }
    }
    // Columns stack independently, so fan the per-column work out as
    // tasks; task order = column order, keeping the output deterministic.
    let out = par::run_tasks(first.n_cols(), |ci| {
        let base = first.column_at(ci).ok_or_else(|| {
            DfError::Internal(format!("vconcat: column {ci} missing after count check"))
        })?;
        let mut ids = Vec::with_capacity(frames.len());
        let mut stacked = base.to_data();
        ids.push(base.id());
        for f in &frames[1..] {
            let c = f.column_at(ci).ok_or_else(|| {
                DfError::Internal(format!("vconcat: column {ci} missing after count check"))
            })?;
            if c.name() != base.name() || c.dtype() != base.dtype() {
                return Err(DfError::TypeMismatch {
                    column: c.name().to_owned(),
                    expected: base.dtype().name(),
                    found: c.dtype().name(),
                });
            }
            ids.push(c.id());
            append(&mut stacked, c)?;
        }
        let id = ColumnId::derive_many(&ids, sig);
        Ok(Column::derived(base.name(), id, stacked))
    })?;
    DataFrame::new(out)
}

/// Append a column's rows to an accumulator of the same dtype. The caller
/// checks dtype equality first, so the type errors here are defensive (and
/// replace what used to be an `unreachable!`).
fn append(acc: &mut ColumnData, col: &Column) -> Result<()> {
    match acc {
        ColumnData::Int(a) => a.extend_from_slice(col.ints()?),
        ColumnData::Float(a) => a.extend_from_slice(col.floats()?),
        ColumnData::Str(a) => a.extend_from_slice(col.strs()?),
        ColumnData::Bool(a) => a.extend_from_slice(col.bools()?),
    }
    Ok(())
}

/// Stable operation signature for [`align`]. `side` is 0 for the left output
/// and 1 for the right output, so the two outputs are distinct operations at
/// the artifact level.
#[must_use]
pub fn align_signature(side: usize) -> u64 {
    hash::fnv1a_parts(&["align", &side.to_string()])
}

/// The paper's alignment operation: return both frames restricted to their
/// common columns (in the left frame's order). Pure projection — ids are
/// preserved.
pub fn align(a: &DataFrame, b: &DataFrame) -> Result<(DataFrame, DataFrame)> {
    let common: Vec<&str> = a
        .column_names()
        .into_iter()
        .filter(|n| b.has_column(n))
        .collect();
    if common.is_empty() {
        return Err(DfError::Empty("align: no common columns".to_owned()));
    }
    Ok((a.select(&common)?, b.select(&common)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn f1() -> DataFrame {
        DataFrame::new(vec![
            Column::source("a", "x", ColumnData::Int(vec![1, 2])),
            Column::source("a", "y", ColumnData::Float(vec![0.1, 0.2])),
        ])
        .unwrap()
    }

    fn f2() -> DataFrame {
        DataFrame::new(vec![
            Column::source("b", "z", ColumnData::Int(vec![7, 8])),
            Column::source("b", "x", ColumnData::Int(vec![9, 10])),
        ])
        .unwrap()
    }

    #[test]
    fn hconcat_preserves_ids_and_disambiguates() {
        let (a, b) = (f1(), f2());
        let out = hconcat(&[&a, &b]).unwrap();
        assert_eq!(out.column_names(), vec!["x", "y", "z", "x_1"]);
        assert_eq!(out.column("x").unwrap().id(), a.column("x").unwrap().id());
        assert_eq!(out.column("x_1").unwrap().id(), b.column("x").unwrap().id());
        assert_eq!(out.column("y").unwrap().id(), a.column("y").unwrap().id());
    }

    #[test]
    fn hconcat_rejects_row_mismatch() {
        let a = f1();
        let b = DataFrame::new(vec![Column::source("b", "z", ColumnData::Int(vec![1]))]).unwrap();
        assert!(hconcat(&[&a, &b]).is_err());
        assert!(hconcat(&[]).is_err());
    }

    #[test]
    fn vconcat_stacks_and_rederives() {
        let a = f1();
        let b = DataFrame::new(vec![
            Column::source("c", "x", ColumnData::Int(vec![3])),
            Column::source("c", "y", ColumnData::Float(vec![0.3])),
        ])
        .unwrap();
        let out = vconcat(&[&a, &b]).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.column("x").unwrap().ints().unwrap(), &[1, 2, 3]);
        assert_ne!(out.column("x").unwrap().id(), a.column("x").unwrap().id());
        // Same stacking repeated gives the same lineage.
        let out2 = vconcat(&[&a, &b]).unwrap();
        assert_eq!(out.column_ids(), out2.column_ids());
    }

    #[test]
    fn vconcat_rejects_schema_mismatch() {
        let a = f1();
        let b = f2();
        assert!(vconcat(&[&a, &b]).is_err());
    }

    #[test]
    fn align_keeps_common_columns_and_ids() {
        let (a, b) = (f1(), f2());
        let (la, lb) = align(&a, &b).unwrap();
        assert_eq!(la.column_names(), vec!["x"]);
        assert_eq!(lb.column_names(), vec!["x"]);
        assert_eq!(la.column("x").unwrap().id(), a.column("x").unwrap().id());
        assert_eq!(lb.column("x").unwrap().id(), b.column("x").unwrap().id());
        assert_eq!(la.n_rows(), 2);
    }

    #[test]
    fn align_with_disjoint_columns_errors() {
        let a = DataFrame::new(vec![Column::source("a", "p", ColumnData::Int(vec![1]))]).unwrap();
        let b = DataFrame::new(vec![Column::source("b", "q", ColumnData::Int(vec![1]))]).unwrap();
        assert!(align(&a, &b).is_err());
    }
}
