//! Column maps: unary numeric transforms, binary column arithmetic, and
//! string feature extraction. Only the produced/replaced column is affected;
//! every other column keeps its id.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::Result;
use crate::frame::DataFrame;
use crate::hash::{self, float_digest};
use crate::par;

/// Chunk-parallel elementwise map into a fresh `f64` buffer. Chunks are
/// contiguous and written in place, so the output is bit-identical to the
/// serial loop for any thread count.
fn par_map_f64(n: usize, f: impl Fn(usize) -> f64 + Sync) -> Result<Vec<f64>> {
    let mut out = vec![0.0; n];
    par::fill_chunks(&mut out, |_ci, start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + off);
        }
        Ok(())
    })?;
    Ok(out)
}

/// Unary numeric transforms (input is viewed as `f64`, output is `Float`).
#[derive(Debug, Clone, PartialEq)]
pub enum MapFn {
    /// `ln(1 + x)`.
    Log1p,
    /// Absolute value.
    Abs,
    /// `sqrt(|x|)` (safe square root).
    Sqrt,
    /// Negation.
    Neg,
    /// Add a constant.
    AddConst(f64),
    /// Multiply by a constant.
    MulConst(f64),
    /// Raise to a constant power.
    PowConst(f64),
    /// Clamp into `[lo, hi]`.
    Clip { lo: f64, hi: f64 },
    /// Replace missing (`NaN`) values with a constant.
    FillNa(f64),
    /// 1.0 where the value is missing, else 0.0.
    IsNa,
    /// Bucket index by sorted edges: output `i` where
    /// `edges[i-1] <= x < edges[i]` (0 below the first edge, `len`
    /// at/above the last; `NaN` stays `NaN`).
    Bucketize(Vec<f64>),
}

impl MapFn {
    /// Stable digest of the transform and its parameters.
    #[must_use]
    pub fn digest(&self) -> String {
        match self {
            MapFn::Log1p => "log1p".to_owned(),
            MapFn::Abs => "abs".to_owned(),
            MapFn::Sqrt => "sqrt".to_owned(),
            MapFn::Neg => "neg".to_owned(),
            MapFn::AddConst(c) => format!("add({})", float_digest(*c)),
            MapFn::MulConst(c) => format!("mul({})", float_digest(*c)),
            MapFn::PowConst(c) => format!("pow({})", float_digest(*c)),
            MapFn::Clip { lo, hi } => format!("clip({},{})", float_digest(*lo), float_digest(*hi)),
            MapFn::FillNa(c) => format!("fillna({})", float_digest(*c)),
            MapFn::IsNa => "isna".to_owned(),
            MapFn::Bucketize(edges) => {
                let rendered: Vec<String> = edges.iter().map(|e| float_digest(*e)).collect();
                format!("bucketize({})", rendered.join(","))
            }
        }
    }

    /// Apply the transform to one value.
    #[must_use]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            MapFn::Log1p => x.ln_1p(),
            MapFn::Abs => x.abs(),
            MapFn::Sqrt => x.abs().sqrt(),
            MapFn::Neg => -x,
            MapFn::AddConst(c) => x + c,
            MapFn::MulConst(c) => x * c,
            MapFn::PowConst(c) => x.powf(*c),
            MapFn::Clip { lo, hi } => x.clamp(*lo, *hi),
            MapFn::FillNa(c) => {
                if x.is_nan() {
                    *c
                } else {
                    x
                }
            }
            MapFn::IsNa => {
                if x.is_nan() {
                    1.0
                } else {
                    0.0
                }
            }
            MapFn::Bucketize(edges) => {
                if x.is_nan() {
                    f64::NAN
                } else {
                    edges.partition_point(|&e| e <= x) as f64
                }
            }
        }
    }
}

/// Binary arithmetic between two numeric columns (output is `Float`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinFn {
    /// Elementwise sum.
    Add,
    /// Elementwise difference.
    Sub,
    /// Elementwise product.
    Mul,
    /// Elementwise quotient (`NaN` where the divisor is 0).
    Div,
}

impl BinFn {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BinFn::Add => "add",
            BinFn::Sub => "sub",
            BinFn::Mul => "mul",
            BinFn::Div => "div",
        }
    }

    /// Apply to one pair of values.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinFn::Add => a + b,
            BinFn::Sub => a - b,
            BinFn::Mul => a * b,
            BinFn::Div => {
                // co-lint:allow(float-eq) exact-zero guard: only division by exact zero maps to NaN; near-zero must still divide
                if b == 0.0 {
                    f64::NAN
                } else {
                    a / b
                }
            }
        }
    }
}

/// String-derived numeric features (output is `Float`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrFn {
    /// Character count.
    Len,
    /// Whitespace-separated token count.
    WordCount,
}

impl StrFn {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrFn::Len => "len",
            StrFn::WordCount => "word_count",
        }
    }

    /// Apply to one string.
    #[must_use]
    pub fn apply(self, s: &str) -> f64 {
        match self {
            StrFn::Len => s.chars().count() as f64,
            StrFn::WordCount => s.split_whitespace().count() as f64,
        }
    }
}

/// Stable operation signature for [`map_column`].
#[must_use]
pub fn map_signature(col: &str, f: &MapFn, out_name: &str) -> u64 {
    hash::fnv1a_parts(&["map", col, &f.digest(), out_name])
}

/// Apply a unary transform to `col`, writing the result to `out_name`
/// (replacing `col` when the names are equal). The output column id is
/// derived from the op signature and the input column id; all other columns
/// are unaffected.
pub fn map_column(df: &DataFrame, col: &str, f: &MapFn, out_name: &str) -> Result<DataFrame> {
    let input = df.column(col)?;
    let op = map_signature(col, f, out_name);
    let xs = input.to_f64()?;
    let values = par_map_f64(xs.len(), |i| f.apply(xs[i]))?;
    let out = Column::derived(out_name, input.id().derive(op), ColumnData::Float(values));
    df.with_column(out)
}

/// Stable operation signature for [`binary_op`].
#[must_use]
pub fn binary_op_signature(left: &str, right: &str, f: BinFn, out_name: &str) -> u64 {
    hash::fnv1a_parts(&["binop", left, right, f.name(), out_name])
}

/// Elementwise arithmetic on two numeric columns, written to `out_name`.
pub fn binary_op(
    df: &DataFrame,
    left: &str,
    right: &str,
    f: BinFn,
    out_name: &str,
) -> Result<DataFrame> {
    let (lc, rc) = (df.column(left)?, df.column(right)?);
    let op = binary_op_signature(left, right, f, out_name);
    let (lv, rv) = (lc.to_f64()?, rc.to_f64()?);
    let n = lv.len().min(rv.len());
    let values = par_map_f64(n, |i| f.apply(lv[i], rv[i]))?;
    let id = ColumnId::derive_many(&[lc.id(), rc.id()], op);
    df.with_column(Column::derived(out_name, id, ColumnData::Float(values)))
}

/// Stable operation signature for [`str_feature`].
#[must_use]
pub fn str_feature_signature(col: &str, f: StrFn, out_name: &str) -> u64 {
    hash::fnv1a_parts(&["strfeat", col, f.name(), out_name])
}

/// Extract a numeric feature from a string column into `out_name`.
pub fn str_feature(df: &DataFrame, col: &str, f: StrFn, out_name: &str) -> Result<DataFrame> {
    let input = df.column(col)?;
    let op = str_feature_signature(col, f, out_name);
    let ss = input.strs()?;
    let values = par_map_f64(ss.len(), |i| f.apply(&ss[i]))?;
    df.with_column(Column::derived(
        out_name,
        input.id().derive(op),
        ColumnData::Float(values),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float(vec![1.0, f64::NAN, -3.0])),
            Column::source("t", "k", ColumnData::Int(vec![2, 4, 0])),
            Column::source(
                "t",
                "s",
                ColumnData::Str(vec!["hello world".into(), "a".into(), "".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn unary_map_creates_derived_column() {
        let d = df();
        let out = map_column(&d, "x", &MapFn::Abs, "x_abs").unwrap();
        assert_eq!(out.n_cols(), 4);
        let values = out.column("x_abs").unwrap().floats().unwrap();
        assert_eq!(values[0], 1.0);
        assert!(values[1].is_nan());
        assert_eq!(values[2], 3.0);
        // Untouched columns keep their ids.
        assert_eq!(out.column("k").unwrap().id(), d.column("k").unwrap().id());
        assert_ne!(
            out.column("x_abs").unwrap().id(),
            d.column("x").unwrap().id()
        );
    }

    #[test]
    fn in_place_replacement() {
        let d = df();
        let out = map_column(&d, "x", &MapFn::FillNa(0.0), "x").unwrap();
        assert_eq!(out.n_cols(), 3);
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[1.0, 0.0, -3.0]
        );
        assert_ne!(out.column("x").unwrap().id(), d.column("x").unwrap().id());
    }

    #[test]
    fn every_mapfn_evaluates() {
        assert!((MapFn::Log1p.apply(0.0)).abs() < 1e-12);
        assert_eq!(MapFn::Sqrt.apply(-4.0), 2.0);
        assert_eq!(MapFn::Neg.apply(2.0), -2.0);
        assert_eq!(MapFn::AddConst(1.0).apply(2.0), 3.0);
        assert_eq!(MapFn::MulConst(2.0).apply(2.0), 4.0);
        assert_eq!(MapFn::PowConst(2.0).apply(3.0), 9.0);
        assert_eq!(MapFn::Clip { lo: 0.0, hi: 1.0 }.apply(5.0), 1.0);
        assert_eq!(MapFn::IsNa.apply(f64::NAN), 1.0);
        assert_eq!(MapFn::IsNa.apply(1.0), 0.0);
        let buckets = MapFn::Bucketize(vec![0.0, 10.0, 20.0]);
        assert_eq!(buckets.apply(-5.0), 0.0);
        assert_eq!(buckets.apply(0.0), 1.0);
        assert_eq!(buckets.apply(15.0), 2.0);
        assert_eq!(buckets.apply(25.0), 3.0);
        assert!(buckets.apply(f64::NAN).is_nan());
        // Digest distinguishes edge sets.
        assert_ne!(
            MapFn::Bucketize(vec![1.0]).digest(),
            MapFn::Bucketize(vec![2.0]).digest()
        );
    }

    #[test]
    fn binary_ops() {
        let d = df();
        let out = binary_op(&d, "x", "k", BinFn::Div, "ratio").unwrap();
        let values = out.column("ratio").unwrap().floats().unwrap();
        assert_eq!(values[0], 0.5);
        assert!(values[2].is_nan()); // divide by zero
    }

    #[test]
    fn binary_id_depends_on_both_inputs() {
        let d = df();
        let a = binary_op(&d, "x", "k", BinFn::Add, "o").unwrap();
        let b = binary_op(&d, "k", "x", BinFn::Add, "o").unwrap();
        assert_ne!(a.column("o").unwrap().id(), b.column("o").unwrap().id());
    }

    #[test]
    fn string_features() {
        let d = df();
        let out = str_feature(&d, "s", StrFn::WordCount, "wc").unwrap();
        assert_eq!(
            out.column("wc").unwrap().floats().unwrap(),
            &[2.0, 1.0, 0.0]
        );
        let out = str_feature(&d, "s", StrFn::Len, "len").unwrap();
        assert_eq!(
            out.column("len").unwrap().floats().unwrap(),
            &[11.0, 1.0, 0.0]
        );
    }

    #[test]
    fn signatures_distinguish_params() {
        assert_ne!(
            map_signature("x", &MapFn::AddConst(1.0), "o"),
            map_signature("x", &MapFn::AddConst(2.0), "o")
        );
        assert_ne!(
            map_signature("x", &MapFn::Abs, "o"),
            map_signature("y", &MapFn::Abs, "o")
        );
    }
}
