//! Row filtering. A row filter changes the content of *every* column, so all
//! output column ids are derived from the filter's signature.

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash::{self, float_digest};
use crate::par;

/// Chunk-parallel elementwise mask: `out[i] = pred(&v[i])`.
///
/// Chunks are contiguous and written in place, so the result is identical
/// to the serial loop for any thread count.
fn par_mask<T: Sync>(v: &[T], pred: impl Fn(&T) -> bool + Sync) -> Result<Vec<bool>> {
    let mut out = vec![false; v.len()];
    par::fill_chunks(&mut out, |_ci, start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = pred(&v[start + off]);
        }
        Ok(())
    })?;
    Ok(out)
}

/// A row predicate over one or more columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Numeric `column > value`.
    GtF { col: String, value: f64 },
    /// Numeric `column >= value`.
    GeF { col: String, value: f64 },
    /// Numeric `column < value`.
    LtF { col: String, value: f64 },
    /// Numeric `column <= value`.
    LeF { col: String, value: f64 },
    /// Integer equality.
    EqI { col: String, value: i64 },
    /// Integer inequality.
    NeI { col: String, value: i64 },
    /// String equality.
    EqS { col: String, value: String },
    /// String membership.
    IsIn { col: String, values: Vec<String> },
    /// The column value is present (not `NaN`).
    NotNa { col: String },
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column > value` on a numeric column.
    #[must_use]
    pub fn gt_f(col: &str, value: f64) -> Self {
        Predicate::GtF {
            col: col.to_owned(),
            value,
        }
    }

    /// `column < value` on a numeric column.
    #[must_use]
    pub fn lt_f(col: &str, value: f64) -> Self {
        Predicate::LtF {
            col: col.to_owned(),
            value,
        }
    }

    /// `column >= value` on a numeric column.
    #[must_use]
    pub fn ge_f(col: &str, value: f64) -> Self {
        Predicate::GeF {
            col: col.to_owned(),
            value,
        }
    }

    /// `column <= value` on a numeric column.
    #[must_use]
    pub fn le_f(col: &str, value: f64) -> Self {
        Predicate::LeF {
            col: col.to_owned(),
            value,
        }
    }

    /// Integer equality.
    #[must_use]
    pub fn eq_i(col: &str, value: i64) -> Self {
        Predicate::EqI {
            col: col.to_owned(),
            value,
        }
    }

    /// String equality.
    #[must_use]
    pub fn eq_s(col: &str, value: &str) -> Self {
        Predicate::EqS {
            col: col.to_owned(),
            value: value.to_owned(),
        }
    }

    /// Value is present (not `NaN`/null).
    #[must_use]
    pub fn not_na(col: &str) -> Self {
        Predicate::NotNa {
            col: col.to_owned(),
        }
    }

    /// Conjunction.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    #[must_use]
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// A stable textual digest of the predicate.
    #[must_use]
    pub fn digest(&self) -> String {
        match self {
            Predicate::GtF { col, value } => format!("({col}>{})", float_digest(*value)),
            Predicate::GeF { col, value } => format!("({col}>={})", float_digest(*value)),
            Predicate::LtF { col, value } => format!("({col}<{})", float_digest(*value)),
            Predicate::LeF { col, value } => format!("({col}<={})", float_digest(*value)),
            Predicate::EqI { col, value } => format!("({col}=={value})"),
            Predicate::NeI { col, value } => format!("({col}!={value})"),
            Predicate::EqS { col, value } => format!("({col}=='{value}')"),
            Predicate::IsIn { col, values } => format!("({col} in [{}])", values.join(",")),
            Predicate::NotNa { col } => format!("(notna {col})"),
            Predicate::And(a, b) => format!("({}&{})", a.digest(), b.digest()),
            Predicate::Or(a, b) => format!("({}|{})", a.digest(), b.digest()),
            Predicate::Not(p) => format!("(!{})", p.digest()),
        }
    }

    /// Evaluate the predicate to a row mask.
    pub fn eval(&self, df: &DataFrame) -> Result<Vec<bool>> {
        match self {
            Predicate::GtF { col, value } => numeric_mask(df, col, |x| x > *value),
            Predicate::GeF { col, value } => numeric_mask(df, col, |x| x >= *value),
            Predicate::LtF { col, value } => numeric_mask(df, col, |x| x < *value),
            Predicate::LeF { col, value } => numeric_mask(df, col, |x| x <= *value),
            Predicate::EqI { col, value } => par_mask(df.column(col)?.ints()?, |x| x == value),
            Predicate::NeI { col, value } => par_mask(df.column(col)?.ints()?, |x| x != value),
            Predicate::EqS { col, value } => par_mask(df.column(col)?.strs()?, |x| x == value),
            Predicate::IsIn { col, values } => {
                let set: std::collections::HashSet<&str> =
                    values.iter().map(String::as_str).collect();
                par_mask(df.column(col)?.strs()?, |x| set.contains(x.as_str()))
            }
            Predicate::NotNa { col } => numeric_mask(df, col, |x| !x.is_nan()),
            Predicate::And(a, b) => {
                let (ma, mb) = (a.eval(df)?, b.eval(df)?);
                Ok(ma.iter().zip(&mb).map(|(&x, &y)| x && y).collect())
            }
            Predicate::Or(a, b) => {
                let (ma, mb) = (a.eval(df)?, b.eval(df)?);
                Ok(ma.iter().zip(&mb).map(|(&x, &y)| x || y).collect())
            }
            Predicate::Not(p) => Ok(p.eval(df)?.iter().map(|&x| !x).collect()),
        }
    }
}

fn numeric_mask(df: &DataFrame, col: &str, pred: impl Fn(f64) -> bool + Sync) -> Result<Vec<bool>> {
    let values = df.column(col)?.to_f64()?;
    par_mask(&values, |&x| pred(x))
}

/// Stable operation signature for [`filter`].
#[must_use]
pub fn filter_signature(pred: &Predicate) -> u64 {
    hash::fnv1a_parts(&["filter", &pred.digest()])
}

/// Keep the rows satisfying `pred`. All column ids are re-derived.
pub fn filter(df: &DataFrame, pred: &Predicate) -> Result<DataFrame> {
    let mask = pred.eval(df)?;
    let op = filter_signature(pred);
    if mask.len() != df.n_rows() {
        return Err(DfError::LengthMismatch {
            expected: df.n_rows(),
            found: mask.len(),
            context: "filter mask".to_owned(),
        });
    }
    let indices: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect();
    Ok(df.take_rows(&indices)?.map_ids(|id| id.derive(op)))
}

/// Stable operation signature for [`dropna`].
#[must_use]
pub fn dropna_signature(subset: &[&str]) -> u64 {
    let mut parts = vec!["dropna"];
    parts.extend_from_slice(subset);
    hash::fnv1a_parts(&parts)
}

/// Drop rows with a missing value in any of `subset` (all columns if the
/// subset is empty). Numeric columns treat `NaN` as missing; strings treat
/// the empty string as missing.
pub fn dropna(df: &DataFrame, subset: &[&str]) -> Result<DataFrame> {
    let cols: Vec<&str> = if subset.is_empty() {
        df.column_names()
    } else {
        subset.to_vec()
    };
    let mut mask = vec![true; df.n_rows()];
    for name in &cols {
        let col = df.column(name)?;
        match col.strs() {
            Ok(strs) => {
                for (m, s) in mask.iter_mut().zip(strs) {
                    *m &= !s.is_empty();
                }
            }
            Err(_) => {
                let values = col.to_f64()?;
                for (m, v) in mask.iter_mut().zip(&values) {
                    *m &= !v.is_nan();
                }
            }
        }
    }
    let op = dropna_signature(subset);
    let indices: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect();
    Ok(df.take_rows(&indices)?.map_ids(|id| id.derive(op)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float(vec![1.0, f64::NAN, 3.0, 4.0])),
            Column::source("t", "k", ColumnData::Int(vec![1, 2, 1, 3])),
            Column::source(
                "t",
                "s",
                ColumnData::Str(vec!["a".into(), "b".into(), String::new(), "a".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn numeric_filter() {
        let out = filter(&df(), &Predicate::gt_f("x", 2.0)).unwrap();
        assert_eq!(out.column("x").unwrap().floats().unwrap(), &[3.0, 4.0]);
        assert_eq!(out.column("k").unwrap().ints().unwrap(), &[1, 3]);
    }

    #[test]
    fn nan_rows_never_match_comparisons() {
        let out = filter(&df(), &Predicate::lt_f("x", 10.0)).unwrap();
        assert_eq!(out.n_rows(), 3); // NaN row dropped by the comparison
    }

    #[test]
    fn compound_predicates() {
        let p = Predicate::gt_f("x", 0.0).and(Predicate::eq_i("k", 1));
        let out = filter(&df(), &p).unwrap();
        assert_eq!(out.n_rows(), 2);
        let p = Predicate::eq_s("s", "a").or(Predicate::eq_i("k", 2));
        let out = filter(&df(), &p).unwrap();
        assert_eq!(out.n_rows(), 3);
    }

    #[test]
    fn filter_rederives_all_ids_deterministically() {
        let d = df();
        let a = filter(&d, &Predicate::eq_i("k", 1)).unwrap();
        let b = filter(&d, &Predicate::eq_i("k", 1)).unwrap();
        let c = filter(&d, &Predicate::eq_i("k", 2)).unwrap();
        assert_eq!(a.column_ids(), b.column_ids());
        assert_ne!(a.column_ids(), c.column_ids());
        assert_ne!(a.column("x").unwrap().id(), d.column("x").unwrap().id());
    }

    #[test]
    fn dropna_handles_floats_and_strings() {
        let out = dropna(&df(), &[]).unwrap();
        assert_eq!(out.n_rows(), 2); // row1 NaN x, row2 empty s
        let out = dropna(&df(), &["x"]).unwrap();
        assert_eq!(out.n_rows(), 3);
    }

    #[test]
    fn digests_are_unique() {
        let a = Predicate::gt_f("x", 1.0);
        let b = Predicate::gt_f("x", 2.0);
        let c = Predicate::ge_f("x", 1.0);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(filter_signature(&a), filter_signature(&b));
    }

    #[test]
    fn missing_column_is_an_error() {
        assert!(filter(&df(), &Predicate::gt_f("zz", 0.0)).is_err());
    }
}
