//! Hash joins on integer keys. Joins rearrange rows on both sides, so every
//! output column id is derived from the join signature *mixed with the input
//! column ids of both frames* — joining the same left frame against two
//! different right frames must produce different lineage.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash;
use std::collections::HashMap;

/// Stable operation signature for [`inner_join`] (artifact-level: name +
/// parameters only; the column-id derivation additionally mixes input ids).
#[must_use]
pub fn join_signature(on: &str) -> u64 {
    hash::fnv1a_parts(&["inner_join", on])
}

/// Stable operation signature for [`left_join`].
#[must_use]
pub fn left_join_signature(on: &str) -> u64 {
    hash::fnv1a_parts(&["left_join", on])
}

/// The hash an output column id is derived from: the join signature combined
/// with the full column-id lineage of both inputs.
fn col_derivation_hash(sig: u64, left: &DataFrame, right: &DataFrame) -> u64 {
    let mut parts = vec![sig];
    parts.extend(left.column_ids().iter().map(|c| c.0));
    parts.push(u64::MAX); // separator between sides
    parts.extend(right.column_ids().iter().map(|c| c.0));
    hash::combine_all(&parts)
}

/// Inner join on an integer key column present in both frames.
///
/// Output columns: the key (from the left side), then left non-key columns,
/// then right non-key columns. A right column whose name collides with a left
/// column is suffixed with `_r`. Matches are emitted in left-row order; for
/// duplicate keys every pair is produced (standard equi-join semantics).
pub fn inner_join(left: &DataFrame, right: &DataFrame, on: &str) -> Result<DataFrame> {
    join_impl(left, right, on, false)
}

/// Left outer join on an integer key column.
///
/// Unmatched left rows appear once, with right-side values missing:
/// numeric right columns are promoted to `Float` with `NaN`, strings become
/// empty.
pub fn left_join(left: &DataFrame, right: &DataFrame, on: &str) -> Result<DataFrame> {
    join_impl(left, right, on, true)
}

fn join_impl(left: &DataFrame, right: &DataFrame, on: &str, outer: bool) -> Result<DataFrame> {
    let lkey = left.column(on)?.ints().map_err(|_| DfError::TypeMismatch {
        column: on.to_owned(),
        expected: "int key",
        found: left.column(on).map(|c| c.dtype().name()).unwrap_or("?"),
    })?;
    let rkey = right
        .column(on)?
        .ints()
        .map_err(|_| DfError::TypeMismatch {
            column: on.to_owned(),
            expected: "int key",
            found: right.column(on).map(|c| c.dtype().name()).unwrap_or("?"),
        })?;

    // Build key -> right-row-indices map.
    let mut index: HashMap<i64, Vec<usize>> = HashMap::with_capacity(rkey.len());
    for (i, &k) in rkey.iter().enumerate() {
        index.entry(k).or_default().push(i);
    }

    // Matched row pairs; `None` on the right marks an unmatched outer row.
    let mut lrows: Vec<usize> = Vec::new();
    let mut rrows: Vec<Option<usize>> = Vec::new();
    for (i, k) in lkey.iter().enumerate() {
        match index.get(k) {
            Some(matches) => {
                for &j in matches {
                    lrows.push(i);
                    rrows.push(Some(j));
                }
            }
            None if outer => {
                lrows.push(i);
                rrows.push(None);
            }
            None => {}
        }
    }

    let sig = if outer {
        left_join_signature(on)
    } else {
        join_signature(on)
    };
    let dh = col_derivation_hash(sig, left, right);

    // When every left row maps to exactly one output row in order (a 1:1
    // or left join against a unique-keyed right side), the left columns'
    // *content* is untouched — they keep their lineage ids and share their
    // buffers, which is a major deduplication win for the join-chain
    // feature pipelines of the paper's Workloads 2 and 3.
    let left_preserved =
        lrows.len() == left.n_rows() && lrows.iter().enumerate().all(|(i, &r)| i == r);

    let mut out: Vec<Column> = Vec::with_capacity(left.n_cols() + right.n_cols() - 1);

    if left_preserved {
        out.extend(left.columns().iter().cloned());
    } else {
        // Key column: derived from both key ids.
        let key_id = ColumnId::derive_many(&[left.column(on)?.id(), right.column(on)?.id()], dh);
        let key_data = ColumnData::Int(lrows.iter().map(|&i| lkey[i]).collect());
        out.push(Column::derived(on, key_id, key_data));

        for c in left.columns().iter().filter(|c| c.name() != on) {
            out.push(Column::derived(
                c.name(),
                c.id().derive(dh),
                c.data().take(&lrows),
            ));
        }
    }

    let left_names: Vec<String> = left
        .column_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    for c in right.columns().iter().filter(|c| c.name() != on) {
        let name = if left_names.iter().any(|n| n == c.name()) {
            format!("{}_r", c.name())
        } else {
            c.name().to_owned()
        };
        let data = gather_right(c.data(), &rrows);
        out.push(Column::derived(&name, c.id().derive(dh), data));
    }

    DataFrame::new(out)
}

/// Gather right-side rows, filling missing positions for outer joins.
fn gather_right(data: &ColumnData, rows: &[Option<usize>]) -> ColumnData {
    match data {
        ColumnData::Int(v) => {
            // Missing ints force promotion to float (pandas semantics).
            if rows.iter().any(Option::is_none) {
                ColumnData::Float(
                    rows.iter()
                        .map(|r| r.map_or(f64::NAN, |i| v[i] as f64))
                        .collect(),
                )
            } else {
                ColumnData::Int(rows.iter().map(|r| v[r.unwrap()]).collect())
            }
        }
        ColumnData::Float(v) => {
            ColumnData::Float(rows.iter().map(|r| r.map_or(f64::NAN, |i| v[i])).collect())
        }
        ColumnData::Bool(v) => {
            if rows.iter().any(Option::is_none) {
                ColumnData::Float(
                    rows.iter()
                        .map(|r| r.map_or(f64::NAN, |i| if v[i] { 1.0 } else { 0.0 }))
                        .collect(),
                )
            } else {
                ColumnData::Bool(rows.iter().map(|r| v[r.unwrap()]).collect())
            }
        }
        ColumnData::Str(v) => ColumnData::Str(
            rows.iter()
                .map(|r| r.map_or_else(String::new, |i| v[i].clone()))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> DataFrame {
        DataFrame::new(vec![
            Column::source("l", "id", ColumnData::Int(vec![1, 2, 3, 2])),
            Column::source("l", "x", ColumnData::Float(vec![10.0, 20.0, 30.0, 21.0])),
        ])
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 3, 4])),
            Column::source("r", "y", ColumnData::Int(vec![200, 300, 400])),
            Column::source(
                "r",
                "x",
                ColumnData::Str(vec!["a".into(), "b".into(), "c".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches_and_renames() {
        let out = inner_join(&left(), &right(), "id").unwrap();
        assert_eq!(out.column_names(), vec!["id", "x", "y", "x_r"]);
        assert_eq!(out.column("id").unwrap().ints().unwrap(), &[2, 3, 2]);
        assert_eq!(out.column("y").unwrap().ints().unwrap(), &[200, 300, 200]);
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[20.0, 30.0, 21.0]
        );
    }

    #[test]
    fn left_join_fills_missing() {
        let out = left_join(&left(), &right(), "id").unwrap();
        assert_eq!(out.n_rows(), 4);
        let y = out.column("y").unwrap().floats().unwrap(); // promoted to float
        assert!(y[0].is_nan()); // id=1 unmatched
        assert_eq!(y[1], 200.0);
        let s = out.column("x_r").unwrap().strs().unwrap();
        assert_eq!(s[0], "");
    }

    #[test]
    fn duplicate_right_keys_multiply_rows() {
        let right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 2])),
            Column::source("r", "y", ColumnData::Int(vec![1, 2])),
        ])
        .unwrap();
        let out = inner_join(&left(), &right, "id").unwrap();
        assert_eq!(out.n_rows(), 4); // two left id=2 rows x two right rows
    }

    #[test]
    fn join_lineage_depends_on_right_frame() {
        let l = left();
        let r1 = right();
        let r2 = DataFrame::new(vec![
            Column::source("r2", "id", ColumnData::Int(vec![2, 3, 4])),
            Column::source("r2", "y", ColumnData::Int(vec![200, 300, 400])),
        ])
        .unwrap();
        let a = inner_join(&l, &r1, "id").unwrap();
        let b = inner_join(&l, &r2, "id").unwrap();
        // x survives both joins but came through different operations.
        assert_ne!(a.column("x").unwrap().id(), b.column("x").unwrap().id());
        // Deterministic: repeating the same join reproduces the same ids.
        let a2 = inner_join(&l, &r1, "id").unwrap();
        assert_eq!(a.column_ids(), a2.column_ids());
    }

    #[test]
    fn one_to_one_left_join_preserves_left_lineage() {
        let l = left();
        // Unique-keyed right side covering no/partial keys: a left join
        // keeps every left row in order, so left columns pass through.
        let unique_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1, 2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.1, 0.2, 0.3])),
        ])
        .unwrap();
        let out = left_join(&l, &unique_right, "id").unwrap();
        assert_eq!(out.column("id").unwrap().id(), l.column("id").unwrap().id());
        assert_eq!(out.column("x").unwrap().id(), l.column("x").unwrap().id());
        assert!(std::sync::Arc::ptr_eq(
            out.column("x").unwrap().data(),
            l.column("x").unwrap().data()
        ));
        // The gathered right column is still derived.
        assert_ne!(
            out.column("score").unwrap().id(),
            unique_right.column("score").unwrap().id()
        );
        // A join that drops rows must NOT preserve ids.
        let partial_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.2, 0.3])),
        ])
        .unwrap();
        let inner = inner_join(&l, &partial_right, "id").unwrap();
        assert_ne!(inner.column("x").unwrap().id(), l.column("x").unwrap().id());
        // A row-multiplying join must not preserve ids either.
        let dup_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1, 1, 2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.1, 0.15, 0.2, 0.3])),
        ])
        .unwrap();
        let multi = left_join(&l, &dup_right, "id").unwrap();
        assert_ne!(multi.column("x").unwrap().id(), l.column("x").unwrap().id());
    }

    #[test]
    fn string_key_is_rejected() {
        let bad = DataFrame::new(vec![Column::source(
            "b",
            "id",
            ColumnData::Str(vec!["x".into()]),
        )])
        .unwrap();
        assert!(inner_join(&bad, &right(), "id").is_err());
        assert!(inner_join(&left(), &bad, "id").is_err());
    }
}
