//! Hash joins on integer keys. Joins rearrange rows on both sides, so every
//! output column id is derived from the join signature *mixed with the input
//! column ids of both frames* — joining the same left frame against two
//! different right frames must produce different lineage.
//!
//! The build and probe phases are partitioned and chunk-parallel:
//!
//! * **Build**: right-side rows are scanned in contiguous chunks, each chunk
//!   scattering its row ids into `P = threads` hash partitions
//!   (`hash(key) % P`, chunk-order concat keeps each partition's rows in
//!   ascending order). Each partition then builds a **dense** index — key →
//!   small integer gid via one hash lookup per row, gid → a contiguous
//!   slice of right-row ids — instead of a map of per-key row vectors,
//!   which removes one heap allocation per distinct key.
//! * **Probe**: left rows are probed in contiguous chunks and the per-chunk
//!   match lists concatenated in chunk order, reproducing the serial
//!   left-row emission order bit for bit.
//!
//! A key lives in exactly one partition regardless of `P`, and each gid's
//! row slice is ascending for any chunking, so the output is independent of
//! the thread count.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::{self, DataFrame};
use crate::hash::{self, fast_map_with_capacity, partition_of, FastMap};
use crate::par;

/// Largest integer magnitude `f64` represents exactly (2^53).
const F64_EXACT_INT: i64 = 1 << 53;

/// Sentinel in the right-row vector marking an unmatched outer row. Frame
/// sides are capped at `u32::MAX - 1` rows (checked up front), so the
/// sentinel can never collide with a real row id.
const MISSING: u32 = u32::MAX;

/// Marks an empty direct-address slot (no gid may reach it: gids are
/// bounded by the per-side row cap of `u32::MAX - 1`).
const ABSENT: u32 = u32::MAX;

/// Key → gid resolution for one partition of the right side.
///
/// Join keys in entity-resolution workloads (the paper's `SK_ID_CURR`-style
/// ids) are typically drawn from a dense integer range, so when the range
/// is small relative to the row count a flat array resolves a key with one
/// bounds check and one load — no hashing at all, on either side of the
/// join. Sparse keys fall back to the hash map. Both resolve to the same
/// gids, so the choice never changes results.
enum KeyLookup {
    /// `gids[k - min]`, `ABSENT` where no such key exists.
    Dense {
        min: i64,
        gids: Vec<u32>,
    },
    Hashed(FastMap<i64, u32>),
}

/// One partition's right-side index, dense form: [`KeyLookup`] resolves a
/// key to a small integer gid, and the gid selects a contiguous, ascending
/// slice of right-row ids in `rows` (`offsets[g]..offsets[g+1]`). Compared
/// with a map of per-key row vectors this does one allocation for all keys
/// instead of one per key, and probe hits touch flat arrays instead of
/// chasing a heap pointer.
struct RightIndex {
    lookup: KeyLookup,
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

/// Use direct addressing when the key span costs at most ~4 slots per
/// right row (see [`hash::dense_key_span`]).
fn dense_span(rkey: &[i64], rows: Option<&[u32]>, n: usize) -> Option<(i64, usize)> {
    match rows {
        Some(rs) => hash::dense_key_span(rs.iter().map(|&r| rkey[r as usize]), n),
        None => hash::dense_key_span(rkey.iter().copied(), n),
    }
}

impl RightIndex {
    /// Build over the rows in `rows` (ascending right-row ids), or over all
    /// of `rkey` when `rows` is `None` (the single-partition fast path that
    /// skips the scatter). One key resolution per row: gids are buffered in
    /// the first pass, then a prefix-sum over per-gid counts lays out the
    /// flat row array — ascending input keeps every gid's slice ascending.
    fn build(rkey: &[i64], rows: Option<&[u32]>) -> RightIndex {
        let n = rows.map_or(rkey.len(), <[u32]>::len);
        let mut counts: Vec<u32> = Vec::new();
        let mut gids: Vec<u32> = Vec::with_capacity(n);
        // The per-key branch in `assign` resolves identically for every row
        // of a build, so the dispatch stays well-predicted; what matters is
        // that the dense path does no hashing.
        let lookup = if let Some((min, span)) = dense_span(rkey, rows, n) {
            let mut table = vec![ABSENT; span];
            let mut assign = |k: i64| {
                #[allow(clippy::cast_possible_truncation)] // lint:reason distinct <= n < u32::MAX
                let next = counts.len() as u32;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                // lint:reason k - min is in [0, span), and span fits usize
                let slot = &mut table[(k - min) as usize];
                let gid = if *slot == ABSENT {
                    *slot = next;
                    counts.push(0);
                    next
                } else {
                    *slot
                };
                counts[gid as usize] += 1;
                gids.push(gid);
            };
            match rows {
                Some(rs) => rs.iter().for_each(|&r| assign(rkey[r as usize])),
                None => rkey.iter().for_each(|&k| assign(k)),
            }
            KeyLookup::Dense { min, gids: table }
        } else {
            let mut map: FastMap<i64, u32> = fast_map_with_capacity(n / 2);
            let mut assign = |k: i64| {
                #[allow(clippy::cast_possible_truncation)] // lint:reason distinct <= n < u32::MAX
                let next = counts.len() as u32;
                let gid = *map.entry(k).or_insert(next);
                if gid == next {
                    counts.push(0);
                }
                counts[gid as usize] += 1;
                gids.push(gid);
            };
            match rows {
                Some(rs) => rs.iter().for_each(|&r| assign(rkey[r as usize])),
                None => rkey.iter().for_each(|&k| assign(k)),
            }
            KeyLookup::Hashed(map)
        };
        let mut offsets = vec![0u32; counts.len() + 1];
        for (g, &c) in counts.iter().enumerate() {
            offsets[g + 1] = offsets[g] + c;
        }
        let mut cursor: Vec<u32> = offsets[..counts.len()].to_vec();
        let mut flat = vec![0u32; n];
        for (i, &g) in gids.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)] // lint:reason i < n < u32::MAX
            let row = rows.map_or(i as u32, |rs| rs[i]);
            flat[cursor[g as usize] as usize] = row;
            cursor[g as usize] += 1;
        }
        RightIndex {
            lookup,
            offsets,
            rows: flat,
        }
    }

    /// The ascending right-row ids matching `k`, or `None` if absent.
    #[inline]
    fn matches(&self, k: &i64) -> Option<&[u32]> {
        let g = match &self.lookup {
            KeyLookup::Dense { min, gids } => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                // lint:reason wrapping offset is range-checked against the table below
                let off = k.wrapping_sub(*min) as u64;
                let g = *gids.get(usize::try_from(off).ok()?)?;
                if g == ABSENT {
                    return None;
                }
                g as usize
            }
            KeyLookup::Hashed(map) => *map.get(k)? as usize,
        };
        Some(&self.rows[self.offsets[g] as usize..self.offsets[g + 1] as usize])
    }
}

/// Stable operation signature for [`inner_join`] (artifact-level: name +
/// parameters only; the column-id derivation additionally mixes input ids).
#[must_use]
pub fn join_signature(on: &str) -> u64 {
    hash::fnv1a_parts(&["inner_join", on])
}

/// Stable operation signature for [`left_join`].
#[must_use]
pub fn left_join_signature(on: &str) -> u64 {
    hash::fnv1a_parts(&["left_join", on])
}

/// The hash an output column id is derived from: the join signature combined
/// with the full column-id lineage of both inputs.
fn col_derivation_hash(sig: u64, left: &DataFrame, right: &DataFrame) -> u64 {
    let mut parts = vec![sig];
    parts.extend(left.column_ids().iter().map(|c| c.0));
    parts.push(u64::MAX); // separator between sides
    parts.extend(right.column_ids().iter().map(|c| c.0));
    hash::combine_all(&parts)
}

/// Inner join on an integer key column present in both frames.
///
/// Output columns: the key (from the left side), then left non-key columns,
/// then right non-key columns. A right column whose name collides with a left
/// column is suffixed with `_r`. Matches are emitted in left-row order; for
/// duplicate keys every pair is produced (standard equi-join semantics).
pub fn inner_join(left: &DataFrame, right: &DataFrame, on: &str) -> Result<DataFrame> {
    join_impl(left, right, on, false)
}

/// Left outer join on an integer key column.
///
/// Unmatched left rows appear once, with right-side values missing:
/// numeric right columns are promoted to `Float` with `NaN`, strings become
/// empty.
pub fn left_join(left: &DataFrame, right: &DataFrame, on: &str) -> Result<DataFrame> {
    join_impl(left, right, on, true)
}

fn join_impl(left: &DataFrame, right: &DataFrame, on: &str, outer: bool) -> Result<DataFrame> {
    let lkey = left.column(on)?.ints().map_err(|_| DfError::TypeMismatch {
        column: on.to_owned(),
        expected: "int key",
        found: left.column(on).map(|c| c.dtype().name()).unwrap_or("?"),
    })?;
    let rkey = right
        .column(on)?
        .ints()
        .map_err(|_| DfError::TypeMismatch {
            column: on.to_owned(),
            expected: "int key",
            found: right.column(on).map(|c| c.dtype().name()).unwrap_or("?"),
        })?;

    // Row ids are u32 throughout the join (half the memory traffic of
    // usize on the multi-million-row probe and gather paths); reserve
    // u32::MAX itself for the outer-join sentinel.
    if lkey.len() >= MISSING as usize || rkey.len() >= MISSING as usize {
        return Err(DfError::InvalidArgument(format!(
            "join sides are limited to {} rows, got {} x {}",
            MISSING - 1,
            lkey.len(),
            rkey.len()
        )));
    }

    // Build: scatter right row ids into hash partitions (chunk-parallel,
    // chunk-order concat keeps each partition ascending), then build one
    // dense index per partition in parallel. With a single partition the
    // scatter is skipped entirely and the index is built straight off the
    // key slice.
    let parts = par::current_threads().max(1);
    let index: Vec<RightIndex> = if parts == 1 {
        vec![RightIndex::build(rkey, None)]
    } else {
        let chunked: Vec<Vec<Vec<u32>>> = par::run_chunks(rkey.len(), |_ci, s, e| {
            let mut scatter: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for (off, k) in rkey[s..e].iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)] // lint:reason checked above
                scatter[partition_of(k, parts)].push((s + off) as u32);
            }
            Ok(scatter)
        })?;
        let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for chunk in chunked {
            for (p, mut rows) in chunk.into_iter().enumerate() {
                by_part[p].append(&mut rows);
            }
        }
        par::run_tasks(parts, |p| Ok(RightIndex::build(rkey, Some(&by_part[p]))))?
    };

    // Probe left rows in contiguous chunks; concatenating per-chunk match
    // lists in chunk order reproduces the serial emission order. MISSING on
    // the right marks an unmatched outer row.
    let probed: Vec<(Vec<u32>, Vec<u32>, bool)> = par::run_chunks(lkey.len(), |_ci, s, e| {
        let mut lrows: Vec<u32> = Vec::with_capacity(e - s);
        let mut rrows: Vec<u32> = Vec::with_capacity(e - s);
        let mut any_missing = false;
        macro_rules! emit {
            ($i:expr, $found:expr) => {
                match $found {
                    Some(matches) => {
                        for &j in matches {
                            lrows.push($i);
                            rrows.push(j);
                        }
                    }
                    None if outer => {
                        lrows.push($i);
                        rrows.push(MISSING);
                        any_missing = true;
                    }
                    None => {}
                }
            };
        }
        #[allow(clippy::cast_possible_truncation)] // lint:reason row counts checked above
        if parts == 1 {
            // Single partition: the per-key partition hash would be pure
            // overhead (everything lands in partition 0).
            let ix0 = &index[0];
            for (off, k) in lkey[s..e].iter().enumerate() {
                emit!((s + off) as u32, ix0.matches(k));
            }
        } else {
            for (off, k) in lkey[s..e].iter().enumerate() {
                emit!((s + off) as u32, index[partition_of(k, parts)].matches(k));
            }
        }
        Ok((lrows, rrows, any_missing))
    })?;
    // Single-chunk results (the common serial case) are moved, not copied.
    let (lrows, rrows, any_missing) = if probed.len() == 1 {
        probed.into_iter().next().unwrap_or_default()
    } else {
        let mut lrows: Vec<u32> = Vec::new();
        let mut rrows: Vec<u32> = Vec::new();
        let mut any_missing = false;
        for (mut l, mut r, m) in probed {
            lrows.append(&mut l);
            rrows.append(&mut r);
            any_missing |= m;
        }
        (lrows, rrows, any_missing)
    };

    let sig = if outer {
        left_join_signature(on)
    } else {
        join_signature(on)
    };
    let dh = col_derivation_hash(sig, left, right);

    // When every left row maps to exactly one output row in order (a 1:1
    // or left join against a unique-keyed right side), the left columns'
    // *content* is untouched — they keep their lineage ids and share their
    // buffers, which is a major deduplication win for the join-chain
    // feature pipelines of the paper's Workloads 2 and 3.
    let left_preserved =
        lrows.len() == left.n_rows() && lrows.iter().enumerate().all(|(i, &r)| i == r as usize);

    let mut out: Vec<Column> = Vec::with_capacity(left.n_cols() + right.n_cols() - 1);

    if left_preserved {
        out.extend(left.columns().iter().cloned());
    } else {
        // Key column: derived from both key ids.
        let key_id = ColumnId::derive_many(&[left.column(on)?.id(), right.column(on)?.id()], dh);
        let key_data = ColumnData::Int(frame::gather(lkey, &lrows)?);
        out.push(Column::derived(on, key_id, key_data));

        for c in left.columns().iter().filter(|c| c.name() != on) {
            out.push(Column::derived(
                c.name(),
                c.id().derive(dh),
                frame::gather_column(c, &lrows)?,
            ));
        }
    }

    let left_names: Vec<String> = left
        .column_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    for c in right.columns().iter().filter(|c| c.name() != on) {
        let name = if left_names.iter().any(|n| n == c.name()) {
            format!("{}_r", c.name())
        } else {
            c.name().to_owned()
        };
        let data = gather_right(c, &rrows, any_missing)?;
        out.push(Column::derived(&name, c.id().derive(dh), data));
    }

    DataFrame::new(out)
}

/// Chunk-parallel gather with missing-position fill: `out[k] = f(rows[k])`,
/// where `rows[k] == MISSING` marks an unmatched outer row.
fn gather_opt<T, F>(rows: &[u32], f: F) -> Result<Vec<T>>
where
    T: Clone + Default + Send + Sync,
    F: Fn(u32) -> Result<T> + Sync,
{
    // Serial fast path: collect directly, skipping the zero-init pass.
    if par::current_threads() <= 1 {
        return rows.iter().map(|&r| f(r)).collect();
    }
    let mut out = vec![T::default(); rows.len()];
    par::fill_chunks(&mut out, |_ci, start, chunk| {
        let chunk_len = chunk.len();
        for (slot, &r) in chunk.iter_mut().zip(&rows[start..][..chunk_len]) {
            *slot = f(r)?;
        }
        Ok(())
    })?;
    Ok(out)
}

/// Gather right-side rows, filling missing positions for outer joins.
/// `any_missing` is tracked during the probe so matched-only columns keep
/// their dtype without rescanning the row vector per column.
fn gather_right(c: &Column, rows: &[u32], any_missing: bool) -> Result<ColumnData> {
    match c.dtype() {
        crate::schema::DType::Int => {
            let v = c.ints()?;
            // Missing ints force promotion to float (pandas semantics) —
            // but only when every matched value survives the cast exactly.
            // |x| > 2^53 would silently round, so it is a typed error.
            if any_missing {
                Ok(ColumnData::Float(gather_opt(rows, |r| {
                    if r == MISSING {
                        return Ok(f64::NAN);
                    }
                    let x = v[r as usize];
                    if !(-F64_EXACT_INT..=F64_EXACT_INT).contains(&x) {
                        return Err(DfError::LossyCast {
                            column: c.name().to_owned(),
                            value: x,
                        });
                    }
                    #[allow(clippy::cast_precision_loss)] // lint:reason |x| <= 2^53: exact
                    Ok(x as f64)
                })?))
            } else {
                Ok(ColumnData::Int(frame::gather(v, rows)?))
            }
        }
        crate::schema::DType::Float => {
            let v = c.floats()?;
            if any_missing {
                Ok(ColumnData::Float(gather_opt(rows, |r| {
                    Ok(if r == MISSING {
                        f64::NAN
                    } else {
                        v[r as usize]
                    })
                })?))
            } else {
                Ok(ColumnData::Float(frame::gather(v, rows)?))
            }
        }
        crate::schema::DType::Bool => {
            let v = c.bools()?;
            if any_missing {
                Ok(ColumnData::Float(gather_opt(rows, |r| {
                    Ok(if r == MISSING {
                        f64::NAN
                    } else if v[r as usize] {
                        1.0
                    } else {
                        0.0
                    })
                })?))
            } else {
                Ok(ColumnData::Bool(frame::gather(v, rows)?))
            }
        }
        crate::schema::DType::Str => {
            let v = c.strs()?;
            if any_missing {
                Ok(ColumnData::Str(gather_opt(rows, |r| {
                    Ok(if r == MISSING {
                        String::new()
                    } else {
                        v[r as usize].clone()
                    })
                })?))
            } else {
                Ok(ColumnData::Str(frame::gather(v, rows)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> DataFrame {
        DataFrame::new(vec![
            Column::source("l", "id", ColumnData::Int(vec![1, 2, 3, 2])),
            Column::source("l", "x", ColumnData::Float(vec![10.0, 20.0, 30.0, 21.0])),
        ])
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 3, 4])),
            Column::source("r", "y", ColumnData::Int(vec![200, 300, 400])),
            Column::source(
                "r",
                "x",
                ColumnData::Str(vec!["a".into(), "b".into(), "c".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches_and_renames() {
        let out = inner_join(&left(), &right(), "id").unwrap();
        assert_eq!(out.column_names(), vec!["id", "x", "y", "x_r"]);
        assert_eq!(out.column("id").unwrap().ints().unwrap(), &[2, 3, 2]);
        assert_eq!(out.column("y").unwrap().ints().unwrap(), &[200, 300, 200]);
        assert_eq!(
            out.column("x").unwrap().floats().unwrap(),
            &[20.0, 30.0, 21.0]
        );
    }

    #[test]
    fn left_join_fills_missing() {
        let out = left_join(&left(), &right(), "id").unwrap();
        assert_eq!(out.n_rows(), 4);
        let y = out.column("y").unwrap().floats().unwrap(); // promoted to float
        assert!(y[0].is_nan()); // id=1 unmatched
        assert_eq!(y[1], 200.0);
        let s = out.column("x_r").unwrap().strs().unwrap();
        assert_eq!(s[0], "");
    }

    #[test]
    fn duplicate_right_keys_multiply_rows() {
        let right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 2])),
            Column::source("r", "y", ColumnData::Int(vec![1, 2])),
        ])
        .unwrap();
        let out = inner_join(&left(), &right, "id").unwrap();
        assert_eq!(out.n_rows(), 4); // two left id=2 rows x two right rows
    }

    #[test]
    fn join_lineage_depends_on_right_frame() {
        let l = left();
        let r1 = right();
        let r2 = DataFrame::new(vec![
            Column::source("r2", "id", ColumnData::Int(vec![2, 3, 4])),
            Column::source("r2", "y", ColumnData::Int(vec![200, 300, 400])),
        ])
        .unwrap();
        let a = inner_join(&l, &r1, "id").unwrap();
        let b = inner_join(&l, &r2, "id").unwrap();
        // x survives both joins but came through different operations.
        assert_ne!(a.column("x").unwrap().id(), b.column("x").unwrap().id());
        // Deterministic: repeating the same join reproduces the same ids.
        let a2 = inner_join(&l, &r1, "id").unwrap();
        assert_eq!(a.column_ids(), a2.column_ids());
    }

    #[test]
    fn one_to_one_left_join_preserves_left_lineage() {
        let l = left();
        // Unique-keyed right side covering no/partial keys: a left join
        // keeps every left row in order, so left columns pass through.
        let unique_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1, 2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.1, 0.2, 0.3])),
        ])
        .unwrap();
        let out = left_join(&l, &unique_right, "id").unwrap();
        assert_eq!(out.column("id").unwrap().id(), l.column("id").unwrap().id());
        assert_eq!(out.column("x").unwrap().id(), l.column("x").unwrap().id());
        assert!(std::sync::Arc::ptr_eq(
            &out.column("x").unwrap().data(),
            &l.column("x").unwrap().data()
        ));
        // The gathered right column is still derived.
        assert_ne!(
            out.column("score").unwrap().id(),
            unique_right.column("score").unwrap().id()
        );
        // A join that drops rows must NOT preserve ids.
        let partial_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.2, 0.3])),
        ])
        .unwrap();
        let inner = inner_join(&l, &partial_right, "id").unwrap();
        assert_ne!(inner.column("x").unwrap().id(), l.column("x").unwrap().id());
        // A row-multiplying join must not preserve ids either.
        let dup_right = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1, 1, 2, 3])),
            Column::source("r", "score", ColumnData::Float(vec![0.1, 0.15, 0.2, 0.3])),
        ])
        .unwrap();
        let multi = left_join(&l, &dup_right, "id").unwrap();
        assert_ne!(multi.column("x").unwrap().id(), l.column("x").unwrap().id());
    }

    #[test]
    fn lossy_int_promotion_is_a_typed_error() {
        let big = (1i64 << 53) + 1;
        let l =
            DataFrame::new(vec![Column::source("l", "id", ColumnData::Int(vec![1, 9]))]).unwrap();
        let r = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1])),
            Column::source("r", "v", ColumnData::Int(vec![big])),
        ])
        .unwrap();
        // The unmatched left row forces Int -> Float promotion of `v`, and
        // the matched value cannot be represented exactly.
        let err = left_join(&l, &r, "id").unwrap_err();
        assert_eq!(
            err,
            DfError::LossyCast {
                column: "v".into(),
                value: big
            }
        );
        // Negative magnitude is caught too.
        let r_neg = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1])),
            Column::source("r", "v", ColumnData::Int(vec![-big])),
        ])
        .unwrap();
        assert!(matches!(
            left_join(&l, &r_neg, "id").unwrap_err(),
            DfError::LossyCast { .. }
        ));
        // Exactly 2^53 is representable: no error, value survives.
        let r_ok = DataFrame::new(vec![
            Column::source("r", "id", ColumnData::Int(vec![1])),
            Column::source("r", "v", ColumnData::Int(vec![1i64 << 53])),
        ])
        .unwrap();
        let out = left_join(&l, &r_ok, "id").unwrap();
        let v = out.column("v").unwrap().floats().unwrap();
        assert_eq!(v[0], (1i64 << 53) as f64);
        assert!(v[1].is_nan());
        // An inner join (no promotion) passes large values through intact.
        let out = inner_join(&l, &r, "id").unwrap();
        assert_eq!(out.column("v").unwrap().ints().unwrap(), &[big]);
    }

    #[test]
    fn string_key_is_rejected() {
        let bad = DataFrame::new(vec![Column::source(
            "b",
            "id",
            ColumnData::Str(vec!["x".into()]),
        )])
        .unwrap();
        assert!(inner_join(&bad, &right(), "id").is_err());
        assert!(inner_join(&left(), &bad, "id").is_err());
    }
}
