//! Seeded row sampling (the paper's Listing 2 example operation).

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stable operation signature for [`sample`].
#[must_use]
pub fn sample_signature(n: usize, seed: u64) -> u64 {
    hash::fnv1a_parts(&["sample", &n.to_string(), &seed.to_string()])
}

/// Draw `n` rows without replacement using a seeded RNG (deterministic:
/// the same `(n, seed)` on the same frame always yields the same rows, so
/// the artifact is reproducible and cacheable). Sampling reorders rows, so
/// all column ids are derived.
pub fn sample(df: &DataFrame, n: usize, seed: u64) -> Result<DataFrame> {
    if n > df.n_rows() {
        return Err(DfError::InvalidArgument(format!(
            "sample n={n} exceeds {} rows",
            df.n_rows()
        )));
    }
    let sig = sample_signature(n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..df.n_rows()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    Ok(df.take_rows(&indices).map_ids(|id| id.derive(sig)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};

    fn df() -> DataFrame {
        DataFrame::new(vec![Column::source(
            "t",
            "x",
            ColumnData::Int((0..100).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = df();
        let a = sample(&d, 10, 42).unwrap();
        let b = sample(&d, 10, 42).unwrap();
        assert_eq!(
            a.column("x").unwrap().ints().unwrap(),
            b.column("x").unwrap().ints().unwrap()
        );
        assert_eq!(a.column_ids(), b.column_ids());
        let c = sample(&d, 10, 43).unwrap();
        assert_ne!(a.column_ids(), c.column_ids());
    }

    #[test]
    fn draws_without_replacement() {
        let d = df();
        let s = sample(&d, 100, 7).unwrap();
        let mut values = s.column("x").unwrap().ints().unwrap().to_vec();
        values.sort_unstable();
        assert_eq!(values, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn oversampling_is_an_error() {
        assert!(sample(&df(), 101, 1).is_err());
    }
}
