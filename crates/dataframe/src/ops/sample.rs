//! Seeded row sampling (the paper's Listing 2 example operation).

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash::{self, fast_map, FastMap};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Stable operation signature for [`sample`].
#[must_use]
pub fn sample_signature(n: usize, seed: u64) -> u64 {
    hash::fnv1a_parts(&["sample", &n.to_string(), &seed.to_string()])
}

/// Draw `n` rows without replacement using a seeded RNG (deterministic:
/// the same `(n, seed)` on the same frame always yields the same rows, so
/// the artifact is reproducible and cacheable). Sampling reorders rows, so
/// all column ids are derived.
///
/// Uses a *partial* Fisher–Yates: only the first `n` positions of the
/// virtual index permutation are materialized, with displaced entries
/// tracked in a sparse map, so cost is O(n) in the sample size rather
/// than O(rows) — the previous implementation shuffled the entire index
/// vector just to keep a prefix.
pub fn sample(df: &DataFrame, n: usize, seed: u64) -> Result<DataFrame> {
    let len = df.n_rows();
    if n > len {
        return Err(DfError::InvalidArgument(format!(
            "sample n={n} exceeds {len} rows"
        )));
    }
    let sig = sample_signature(n, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    // `swapped[i]` is the current occupant of virtual slot `i` where it
    // differs from `i` itself.
    let mut swapped: FastMap<usize, usize> = fast_map();
    let mut indices = Vec::with_capacity(n);
    for k in 0..n {
        let j = rng.random_range(k..len);
        let pick = swapped.get(&j).copied().unwrap_or(j);
        let at_k = swapped.get(&k).copied().unwrap_or(k);
        swapped.insert(j, at_k);
        indices.push(pick);
    }
    Ok(df.take_rows(&indices)?.map_ids(|id| id.derive(sig)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};

    fn df() -> DataFrame {
        DataFrame::new(vec![Column::source(
            "t",
            "x",
            ColumnData::Int((0..100).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = df();
        let a = sample(&d, 10, 42).unwrap();
        let b = sample(&d, 10, 42).unwrap();
        assert_eq!(
            a.column("x").unwrap().ints().unwrap(),
            b.column("x").unwrap().ints().unwrap()
        );
        assert_eq!(a.column_ids(), b.column_ids());
        let c = sample(&d, 10, 43).unwrap();
        assert_ne!(a.column_ids(), c.column_ids());
    }

    #[test]
    fn draws_without_replacement() {
        let d = df();
        let s = sample(&d, 100, 7).unwrap();
        let mut values = s.column("x").unwrap().ints().unwrap().to_vec();
        values.sort_unstable();
        assert_eq!(values, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn oversampling_is_an_error() {
        assert!(sample(&df(), 101, 1).is_err());
    }

    #[test]
    fn matches_dense_fisher_yates_reference() {
        // The sparse O(n) implementation must select exactly the rows a
        // dense partial Fisher–Yates over the same RNG stream would.
        let d = df();
        for seed in [0u64, 1, 42, 7777] {
            for n in [0usize, 1, 7, 100] {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut v: Vec<i64> = (0..100).collect();
                for k in 0..n {
                    let j = rng.random_range(k..100);
                    v.swap(k, j);
                }
                v.truncate(n);
                let s = sample(&d, n, seed).unwrap();
                assert_eq!(
                    s.column("x").unwrap().ints().unwrap(),
                    &v[..],
                    "seed {seed} n {n}"
                );
            }
        }
    }

    #[test]
    fn pinned_selection_for_fixed_seed() {
        // Golden values: a change here means the same (n, seed) no longer
        // reproduces the same artifact, which would invalidate every
        // cached sample in the experiment graph.
        let s = sample(&df(), 5, 42).unwrap();
        let rows = s.column("x").unwrap().ints().unwrap().to_vec();
        assert_eq!(rows, vec![51, 12, 56, 84, 87]);
        let again = sample(&df(), 5, 42).unwrap();
        assert_eq!(rows, again.column("x").unwrap().ints().unwrap().to_vec());
    }
}
