//! Categorical encodings. One-hot encoding replaces a single column with
//! indicator columns — only the encoded column's lineage changes; all other
//! columns keep their ids (they are untouched).

use crate::column::{Column, ColumnData};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash::{self, fast_map, FastMap};
use crate::par;

/// Stable operation signature for [`one_hot`].
#[must_use]
pub fn one_hot_signature(col: &str, max_categories: usize) -> u64 {
    hash::fnv1a_parts(&["one_hot", col, &max_categories.to_string()])
}

/// One-hot encode a string column.
///
/// The `max_categories` most frequent values (ties broken by value, for
/// determinism) become `Float` indicator columns named `"{col}={value}"`;
/// rows outside the kept categories are all-zero. The source column is
/// removed. Indicator ids derive from the encoded column's id plus the
/// category value.
pub fn one_hot(df: &DataFrame, col: &str, max_categories: usize) -> Result<DataFrame> {
    if max_categories == 0 {
        return Err(DfError::InvalidArgument(
            "one_hot with max_categories=0".to_owned(),
        ));
    }
    let source = df.column(col)?;
    let values = source.strs().map_err(|_| DfError::TypeMismatch {
        column: col.to_owned(),
        expected: "str",
        found: source.dtype().name(),
    })?;
    let sig = one_hot_signature(col, max_categories);

    // Count category frequencies chunk-parallel; summing the per-chunk
    // counts is order-insensitive, and the category *order* below comes
    // from an explicit sort, so the result is thread-count independent.
    let chunk_counts: Vec<FastMap<&str, usize>> = par::run_chunks(values.len(), |_ci, s, e| {
        let mut counts: FastMap<&str, usize> = fast_map();
        for v in &values[s..e] {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        Ok(counts)
    })?;
    let mut counts: FastMap<&str, usize> = fast_map();
    for m in chunk_counts {
        for (k, n) in m {
            *counts.entry(k).or_insert(0) += n;
        }
    }
    let mut cats: Vec<(&str, usize)> = counts.into_iter().collect();
    // Most frequent first; ties by value so the output is deterministic.
    cats.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    cats.truncate(max_categories);

    let mut out = df.drop_columns(&[col])?;
    for (cat, _) in cats {
        let mut data = vec![0.0f64; values.len()];
        par::fill_chunks(&mut data, |_ci, start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = if values[start + off] == cat { 1.0 } else { 0.0 };
            }
            Ok(())
        })?;
        let cat_sig = hash::fnv1a_parts(&["one_hot_cat", cat]);
        let id = source.id().derive(hash::combine(sig, cat_sig));
        out = out.with_column(Column::derived(
            &format!("{col}={cat}"),
            id,
            ColumnData::Float(data),
        ))?;
    }
    Ok(out)
}

/// Stable operation signature for [`label_encode`].
#[must_use]
pub fn label_encode_signature(col: &str) -> u64 {
    hash::fnv1a_parts(&["label_encode", col])
}

/// Replace a string column with integer codes assigned by sorted value
/// order (deterministic). Other columns are unaffected.
pub fn label_encode(df: &DataFrame, col: &str) -> Result<DataFrame> {
    let source = df.column(col)?;
    let values = source.strs().map_err(|_| DfError::TypeMismatch {
        column: col.to_owned(),
        expected: "str",
        found: source.dtype().name(),
    })?;
    let sig = label_encode_signature(col);

    let mut distinct: Vec<&str> = values.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let codes: FastMap<&str, i64> = distinct
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as i64))
        .collect();

    let mut encoded = vec![0i64; values.len()];
    par::fill_chunks(&mut encoded, |_ci, start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let v = values[start + off].as_str();
            *slot = codes.get(v).copied().ok_or_else(|| {
                DfError::Internal(format!("label_encode: value {v:?} missing from code table"))
            })?;
        }
        Ok(())
    })?;
    df.with_column(Column::derived(
        col,
        source.id().derive(sig),
        ColumnData::Int(encoded),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source(
                "t",
                "city",
                ColumnData::Str(vec!["b".into(), "a".into(), "b".into(), "c".into()]),
            ),
            Column::source("t", "v", ColumnData::Int(vec![1, 2, 3, 4])),
        ])
        .unwrap()
    }

    #[test]
    fn one_hot_expands_top_categories() {
        let d = df();
        let out = one_hot(&d, "city", 2).unwrap();
        // "b" (2 occurrences) then "a" (tie with "c", lexicographic).
        assert_eq!(out.column_names(), vec!["v", "city=b", "city=a"]);
        assert_eq!(
            out.column("city=b").unwrap().floats().unwrap(),
            &[1.0, 0.0, 1.0, 0.0]
        );
        assert_eq!(
            out.column("city=a").unwrap().floats().unwrap(),
            &[0.0, 1.0, 0.0, 0.0]
        );
        // Untouched column keeps its id.
        assert_eq!(out.column("v").unwrap().id(), d.column("v").unwrap().id());
    }

    #[test]
    fn one_hot_lineage_per_category() {
        let out = one_hot(&df(), "city", 3).unwrap();
        let ids: Vec<_> = ["city=b", "city=a", "city=c"]
            .iter()
            .map(|n| out.column(n).unwrap().id())
            .collect();
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        let out2 = one_hot(&df(), "city", 3).unwrap();
        assert_eq!(out.column_ids(), out2.column_ids());
    }

    #[test]
    fn one_hot_rejects_non_string() {
        assert!(one_hot(&df(), "v", 2).is_err());
        assert!(one_hot(&df(), "city", 0).is_err());
    }

    #[test]
    fn label_encode_assigns_sorted_codes() {
        let d = df();
        let out = label_encode(&d, "city").unwrap();
        assert_eq!(out.column("city").unwrap().ints().unwrap(), &[1, 0, 1, 2]);
        assert_ne!(
            out.column("city").unwrap().id(),
            d.column("city").unwrap().id()
        );
        assert_eq!(out.column("v").unwrap().id(), d.column("v").unwrap().id());
    }
}
