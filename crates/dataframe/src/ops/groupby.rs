//! Group-by aggregation. The output is a new table (one row per key), so
//! every output column id is derived: the key column from the key's id, each
//! aggregate column from the (key, value) id pair plus the aggregate name.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash;
use crate::ops::AggFn;
use std::collections::HashMap;

/// Stable operation signature for [`groupby_agg`].
#[must_use]
pub fn groupby_signature(key: &str, aggs: &[(&str, AggFn)]) -> u64 {
    let mut parts: Vec<String> = vec!["groupby".to_owned(), key.to_owned()];
    for (col, f) in aggs {
        parts.push(format!("{col}:{}", f.name()));
    }
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    hash::fnv1a_parts(&refs)
}

/// Group rows by an integer or string key and compute the requested
/// aggregates over numeric columns. Output rows are sorted by key for
/// determinism; aggregate columns are named `"{col}_{agg}"`.
pub fn groupby_agg(df: &DataFrame, key: &str, aggs: &[(&str, AggFn)]) -> Result<DataFrame> {
    if aggs.is_empty() {
        return Err(DfError::InvalidArgument(
            "groupby with no aggregates".to_owned(),
        ));
    }
    let sig = groupby_signature(key, aggs);
    let key_col = df.column(key)?;

    // Group row indices by key, preserving a sortable representation.
    enum Keys {
        Int(Vec<i64>),
        Str(Vec<String>),
    }
    let (groups, keys): (Vec<Vec<usize>>, Keys) = match key_col.ints() {
        Ok(ints) => {
            let mut map: HashMap<i64, Vec<usize>> = HashMap::new();
            for (i, &k) in ints.iter().enumerate() {
                map.entry(k).or_default().push(i);
            }
            let mut pairs: Vec<(i64, Vec<usize>)> = map.into_iter().collect();
            pairs.sort_unstable_by_key(|(k, _)| *k);
            let (ks, gs): (Vec<i64>, Vec<Vec<usize>>) = pairs.into_iter().unzip();
            (gs, Keys::Int(ks))
        }
        Err(_) => {
            let strs = key_col.strs().map_err(|_| DfError::TypeMismatch {
                column: key.to_owned(),
                expected: "int or str key",
                found: key_col.dtype().name(),
            })?;
            let mut map: HashMap<&str, Vec<usize>> = HashMap::new();
            for (i, k) in strs.iter().enumerate() {
                map.entry(k.as_str()).or_default().push(i);
            }
            let mut pairs: Vec<(&str, Vec<usize>)> = map.into_iter().collect();
            pairs.sort_unstable_by_key(|(k, _)| *k);
            let (ks, gs): (Vec<&str>, Vec<Vec<usize>>) = pairs.into_iter().unzip();
            (gs, Keys::Str(ks.into_iter().map(str::to_owned).collect()))
        }
    };

    let mut out: Vec<Column> = Vec::with_capacity(aggs.len() + 1);
    let key_data = match keys {
        Keys::Int(ks) => ColumnData::Int(ks),
        Keys::Str(ks) => ColumnData::Str(ks),
    };
    out.push(Column::derived(key, key_col.id().derive(sig), key_data));

    for (col, f) in aggs {
        let value_col = df.column(col)?;
        let values = value_col.to_f64()?;
        let agg_sig = hash::fnv1a_parts(&["groupby_agg", key, col, f.name()]);
        let agged: Vec<f64> = groups
            .iter()
            .map(|rows| {
                let slice: Vec<f64> = rows.iter().map(|&i| values[i]).collect();
                f.apply(&slice)
            })
            .collect();
        let id =
            ColumnId::derive_many(&[key_col.id(), value_col.id()], hash::combine(sig, agg_sig));
        out.push(Column::derived(
            &format!("{col}_{}", f.name()),
            id,
            ColumnData::Float(agged),
        ));
    }
    DataFrame::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "k", ColumnData::Int(vec![2, 1, 2, 1, 2])),
            Column::source(
                "t",
                "v",
                ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0, f64::NAN]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn groups_sorted_by_key() {
        let out = groupby_agg(&df(), "k", &[("v", AggFn::Sum), ("v", AggFn::Count)]).unwrap();
        assert_eq!(out.column_names(), vec!["k", "v_sum", "v_count"]);
        assert_eq!(out.column("k").unwrap().ints().unwrap(), &[1, 2]);
        assert_eq!(out.column("v_sum").unwrap().floats().unwrap(), &[6.0, 4.0]);
        assert_eq!(
            out.column("v_count").unwrap().floats().unwrap(),
            &[2.0, 2.0]
        );
    }

    #[test]
    fn string_keys() {
        let d = DataFrame::new(vec![
            Column::source(
                "t",
                "k",
                ColumnData::Str(vec!["b".into(), "a".into(), "b".into()]),
            ),
            Column::source("t", "v", ColumnData::Int(vec![1, 2, 3])),
        ])
        .unwrap();
        let out = groupby_agg(&d, "k", &[("v", AggFn::Mean)]).unwrap();
        assert_eq!(
            out.column("k").unwrap().strs().unwrap(),
            &["a".to_owned(), "b".to_owned()]
        );
        assert_eq!(out.column("v_mean").unwrap().floats().unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn lineage_is_deterministic_and_param_sensitive() {
        let d = df();
        let a = groupby_agg(&d, "k", &[("v", AggFn::Sum)]).unwrap();
        let b = groupby_agg(&d, "k", &[("v", AggFn::Sum)]).unwrap();
        let c = groupby_agg(&d, "k", &[("v", AggFn::Mean)]).unwrap();
        assert_eq!(a.column_ids(), b.column_ids());
        assert_ne!(
            a.column("v_sum").unwrap().id(),
            c.column("v_mean").unwrap().id()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = df();
        assert!(groupby_agg(&d, "k", &[]).is_err());
        assert!(groupby_agg(&d, "missing", &[("v", AggFn::Sum)]).is_err());
        assert!(groupby_agg(&d, "v", &[("k", AggFn::Sum)]).is_err()); // float key
    }
}
