//! Group-by aggregation. The output is a new table (one row per key), so
//! every output column id is derived: the key column from the key's id, each
//! aggregate column from the (key, value) id pair plus the aggregate name.
//!
//! Grouping is partitioned and chunk-parallel: rows are chunk-scattered to
//! `hash(key) % P` partitions (per-partition row lists stay in ascending
//! row order because chunks are merged in chunk order), and each partition
//! builds a *dense* group index — key → small integer gid via one hash
//! lookup per row, plus per-gid counts — instead of a map of per-key row
//! vectors. Aggregates then stream over each partition's rows once per
//! (column, function) pair with per-gid accumulators: no per-group
//! allocation, no gather.
//!
//! Determinism: the output row order comes from a global sort of the unique
//! keys, and every accumulator folds its group's values in ascending row
//! order — the same order a serial scan produces — so the result is
//! bit-identical for any thread count. Gid numbering *does* depend on the
//! partition count, but gids never escape this module.

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash::{self, fast_map_with_capacity, partition_of, FastMap};
use crate::ops::AggFn;
use crate::par;

/// A partition's share of the group index.
struct Partition<K> {
    /// Row indices owned by this partition, ascending. `None` means "all
    /// rows" (single-partition fast path — avoids materializing 0..n).
    rows: Option<Vec<u32>>,
    /// Per-row local gid, parallel to `rows` (or to 0..n).
    gids: Vec<u32>,
    /// Local gid → key, in first-seen order.
    uniq: Vec<K>,
}

/// Dense group index over a key column.
struct GroupIndex<K> {
    parts: Vec<Partition<K>>,
    /// Output order: `(partition, local gid)` pairs sorted by key.
    order: Vec<(u32, u32)>,
}

impl<K: Clone + Eq + Ord + std::hash::Hash + Send + Sync> GroupIndex<K> {
    fn keys(&self) -> Vec<K> {
        self.order
            .iter()
            .map(|&(p, g)| self.parts[p as usize].uniq[g as usize].clone())
            .collect()
    }

    fn n_groups(&self) -> usize {
        self.order.len()
    }
}

/// Assign dense gids to a stream of keys (one hash lookup per key).
fn assign_gids<K: Clone + Eq + std::hash::Hash>(
    keys: impl Iterator<Item = K>,
    size_hint: usize,
) -> (Vec<u32>, Vec<K>) {
    let mut map: FastMap<K, u32> = fast_map_with_capacity(size_hint / 4);
    let mut uniq: Vec<K> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(size_hint);
    for k in keys {
        // co-lint:allow(lossy-cast) group ids are u32 and uniq <= row count < u32::MAX
        let next = uniq.len() as u32;
        let gid = *map.entry(k.clone()).or_insert(next);
        if gid == next {
            uniq.push(k);
        }
        gids.push(gid);
    }
    (gids, uniq)
}

/// Key types the group index accepts. The single method exists so integer
/// keys can take a direct-address fast path (dense entity-id ranges need no
/// hashing at all) while string keys keep the generic hash map; both assign
/// gids in first-seen order, so the choice never changes results.
trait GroupKey: Clone + Eq + Ord + std::hash::Hash + Send + Sync {
    /// Gid per row (over `rows`, or all of `keys` when `rows` is `None`)
    /// plus the unique keys in first-seen order.
    fn assign(keys: &[Self], rows: Option<&[u32]>) -> (Vec<u32>, Vec<Self>);
}

impl GroupKey for String {
    fn assign(keys: &[Self], rows: Option<&[u32]>) -> (Vec<u32>, Vec<Self>) {
        match rows {
            Some(rs) => assign_gids(rs.iter().map(|&r| keys[r as usize].clone()), rs.len()),
            None => assign_gids(keys.iter().cloned(), keys.len()),
        }
    }
}

impl GroupKey for i64 {
    fn assign(keys: &[Self], rows: Option<&[u32]>) -> (Vec<u32>, Vec<Self>) {
        const ABSENT: u32 = u32::MAX;
        let n = rows.map_or(keys.len(), <[u32]>::len);
        let span = match rows {
            Some(rs) => hash::dense_key_span(rs.iter().map(|&r| keys[r as usize]), n),
            None => hash::dense_key_span(keys.iter().copied(), n),
        };
        let Some((min, span)) = span else {
            // Sparse keys: generic hash path.
            return match rows {
                Some(rs) => assign_gids(rs.iter().map(|&r| keys[r as usize]), n),
                None => assign_gids(keys.iter().copied(), n),
            };
        };
        let mut table = vec![ABSENT; span];
        let mut uniq: Vec<i64> = Vec::new();
        let mut gids: Vec<u32> = Vec::with_capacity(n);
        let mut assign = |k: i64| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // lint:reason k - min is in [0, span), and span fits usize
            let slot = &mut table[(k - min) as usize];
            if *slot == ABSENT {
                #[allow(clippy::cast_possible_truncation)] // lint:reason uniq <= n < u32::MAX
                {
                    *slot = uniq.len() as u32;
                }
                uniq.push(k);
            }
            gids.push(*slot);
        };
        match rows {
            Some(rs) => rs.iter().for_each(|&r| assign(keys[r as usize])),
            None => keys.iter().for_each(|&k| assign(k)),
        }
        (gids, uniq)
    }
}

/// Build the dense group index: partitioned scatter + per-partition gid
/// assignment + a global key sort.
fn group_index<K: GroupKey>(keys: &[K]) -> Result<GroupIndex<K>> {
    let parts_n = par::current_threads().max(1);
    let parts: Vec<Partition<K>> = if parts_n == 1 {
        let (gids, uniq) = K::assign(keys, None);
        vec![Partition {
            rows: None,
            gids,
            uniq,
        }]
    } else {
        // Chunk-scatter row ids to partitions; chunk-order concat keeps
        // each partition's rows ascending.
        let chunked: Vec<Vec<Vec<u32>>> = par::run_chunks(keys.len(), |_ci, s, e| {
            let mut scatter: Vec<Vec<u32>> = (0..parts_n).map(|_| Vec::new()).collect();
            for (off, k) in keys[s..e].iter().enumerate() {
                scatter[partition_of(k, parts_n)].push((s + off) as u32);
            }
            Ok(scatter)
        })?;
        let mut by_part: Vec<Vec<u32>> = (0..parts_n).map(|_| Vec::new()).collect();
        for chunk in chunked {
            for (p, mut rows) in chunk.into_iter().enumerate() {
                by_part[p].append(&mut rows);
            }
        }
        let assigned = par::run_tasks(parts_n, |p| Ok(K::assign(keys, Some(&by_part[p]))))?;
        by_part
            .into_iter()
            .zip(assigned)
            .map(|(rows, (gids, uniq))| Partition {
                rows: Some(rows),
                gids,
                uniq,
            })
            .collect()
    };

    let mut order: Vec<(u32, u32)> = parts
        .iter()
        .enumerate()
        // co-lint:allow(lossy-cast) per-partition uniq and partition counts are < u32::MAX
        .flat_map(|(p, part)| (0..part.uniq.len() as u32).map(move |g| (p as u32, g)))
        .collect();
    // Keys are unique across partitions, so an unstable sort is fine.
    order.sort_unstable_by(|&(pa, ga), &(pb, gb)| {
        parts[pa as usize].uniq[ga as usize].cmp(&parts[pb as usize].uniq[gb as usize])
    });
    Ok(GroupIndex { parts, order })
}

/// Streaming per-group accumulator matching [`AggFn::apply`] bit for bit:
/// values arrive in ascending row order (exactly the order `apply` folds a
/// gathered slice), NaNs are skipped, and each fold uses the same
/// operations in the same sequence.
struct Accumulator {
    f: AggFn,
    /// Sum (Sum/Mean/Std phase 1) or running min/max (Min/Max) or the
    /// centered square sum (Std phase 2).
    acc: Vec<f64>,
    /// Non-NaN count.
    n: Vec<u32>,
    /// Std only: per-gid mean from phase 1.
    mean: Vec<f64>,
}

impl Accumulator {
    fn new(f: AggFn, groups: usize) -> Self {
        let init = match f {
            AggFn::Min | AggFn::Max => f64::NAN,
            // `apply` computes these via `Iterator::sum`, whose f64
            // identity is -0.0 (the IEEE additive identity: -0.0 + -0.0
            // stays -0.0, which +0.0 would not). Match it exactly.
            AggFn::Sum | AggFn::Std => -0.0,
            // Mean folds from an explicit (0.0, 0) in `apply`.
            AggFn::Mean | AggFn::Count => 0.0,
        };
        Accumulator {
            f,
            acc: vec![init; groups],
            n: vec![0; groups],
            mean: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, gid: u32, v: f64) {
        if v.is_nan() {
            return;
        }
        let g = gid as usize;
        match self.f {
            AggFn::Sum | AggFn::Mean => self.acc[g] += v,
            AggFn::Count => {}
            AggFn::Min => {
                let a = self.acc[g];
                if a.is_nan() || v < a {
                    self.acc[g] = v;
                }
            }
            AggFn::Max => {
                let a = self.acc[g];
                if a.is_nan() || v > a {
                    self.acc[g] = v;
                }
            }
            AggFn::Std => {
                if self.mean.is_empty() {
                    self.acc[g] += v; // phase 1: plain sum
                } else {
                    self.acc[g] += (v - self.mean[g]).powi(2); // phase 2
                }
            }
        }
        self.n[g] += 1;
    }

    /// Finish one gid. For `Std` this is only valid after both phases.
    fn finish(&self, gid: u32) -> f64 {
        let g = gid as usize;
        let n = self.n[g];
        match self.f {
            AggFn::Sum => self.acc[g],
            AggFn::Count => f64::from(n),
            AggFn::Mean | AggFn::Std if n == 0 => f64::NAN,
            AggFn::Mean => self.acc[g] / f64::from(n),
            // Phase 2 counted every non-NaN value again, so `n` here is
            // the same count `apply` divides by.
            AggFn::Std => (self.acc[g] / f64::from(n)).sqrt(),
            AggFn::Min | AggFn::Max => self.acc[g],
        }
    }
}

/// Aggregate one value column over the group index: each partition streams
/// its rows once (twice for `Std`) with per-gid accumulators, then the
/// results are emitted in globally sorted key order.
fn aggregate<K>(index: &GroupIndex<K>, values: &[f64], f: AggFn) -> Result<Vec<f64>>
where
    K: Clone + Eq + Ord + std::hash::Hash + Send + Sync,
{
    let finished: Vec<Accumulator> = par::run_tasks(index.parts.len(), |p| {
        let part = &index.parts[p];
        let mut acc = Accumulator::new(f, part.uniq.len());
        let stream = |acc: &mut Accumulator| match &part.rows {
            None => {
                for (row, &g) in part.gids.iter().enumerate() {
                    acc.push(g, values[row]);
                }
            }
            Some(rows) => {
                for (&row, &g) in rows.iter().zip(&part.gids) {
                    // co-lint:allow(lossy-cast) u32 to usize widens on every supported platform
                    acc.push(g, values[row as usize]);
                }
            }
        };
        stream(&mut acc);
        if f == AggFn::Std {
            // Phase 2: center on the per-group means from phase 1.
            // co-lint:allow(lossy-cast) uniq <= row count < u32::MAX
            let means: Vec<f64> = (0..part.uniq.len() as u32)
                .map(|g| {
                    let n = acc.n[g as usize];
                    if n == 0 {
                        f64::NAN
                    } else {
                        acc.acc[g as usize] / f64::from(n)
                    }
                })
                .collect();
            acc.acc.iter_mut().for_each(|a| *a = -0.0); // Sum identity again
            acc.n.iter_mut().for_each(|c| *c = 0);
            acc.mean = means;
            stream(&mut acc);
        }
        Ok(acc)
    })?;
    Ok(index
        .order
        .iter()
        .map(|&(p, g)| finished[p as usize].finish(g))
        .collect())
}

/// Stable operation signature for [`groupby_agg`].
#[must_use]
pub fn groupby_signature(key: &str, aggs: &[(&str, AggFn)]) -> u64 {
    let mut parts: Vec<String> = vec!["groupby".to_owned(), key.to_owned()];
    for (col, f) in aggs {
        parts.push(format!("{col}:{}", f.name()));
    }
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    hash::fnv1a_parts(&refs)
}

/// Group rows by an integer or string key and compute the requested
/// aggregates over numeric columns. Output rows are sorted by key for
/// determinism; aggregate columns are named `"{col}_{agg}"`.
pub fn groupby_agg(df: &DataFrame, key: &str, aggs: &[(&str, AggFn)]) -> Result<DataFrame> {
    if aggs.is_empty() {
        return Err(DfError::InvalidArgument(
            "groupby with no aggregates".to_owned(),
        ));
    }
    let sig = groupby_signature(key, aggs);
    let key_col = df.column(key)?;

    enum Index {
        Int(GroupIndex<i64>),
        Str(GroupIndex<String>),
    }
    let index = match key_col.ints() {
        Ok(ints) => Index::Int(group_index(ints)?),
        Err(_) => {
            let strs = key_col.strs().map_err(|_| DfError::TypeMismatch {
                column: key.to_owned(),
                expected: "int or str key",
                found: key_col.dtype().name(),
            })?;
            Index::Str(group_index(strs)?)
        }
    };
    let (key_data, n_groups) = match &index {
        Index::Int(ix) => (ColumnData::Int(ix.keys()), ix.n_groups()),
        Index::Str(ix) => (ColumnData::Str(ix.keys()), ix.n_groups()),
    };
    debug_assert!(n_groups <= df.n_rows());

    let mut out: Vec<Column> = Vec::with_capacity(aggs.len() + 1);
    out.push(Column::derived(key, key_col.id().derive(sig), key_data));

    for (col, f) in aggs {
        let value_col = df.column(col)?;
        let values = value_col.to_f64()?;
        let agg_sig = hash::fnv1a_parts(&["groupby_agg", key, col, f.name()]);
        let agged = match &index {
            Index::Int(ix) => aggregate(ix, &values, *f)?,
            Index::Str(ix) => aggregate(ix, &values, *f)?,
        };
        let id =
            ColumnId::derive_many(&[key_col.id(), value_col.id()], hash::combine(sig, agg_sig));
        out.push(Column::derived(
            &format!("{col}_{}", f.name()),
            id,
            ColumnData::Float(agged),
        ));
    }
    DataFrame::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "k", ColumnData::Int(vec![2, 1, 2, 1, 2])),
            Column::source(
                "t",
                "v",
                ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0, f64::NAN]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn groups_sorted_by_key() {
        let out = groupby_agg(&df(), "k", &[("v", AggFn::Sum), ("v", AggFn::Count)]).unwrap();
        assert_eq!(out.column_names(), vec!["k", "v_sum", "v_count"]);
        assert_eq!(out.column("k").unwrap().ints().unwrap(), &[1, 2]);
        assert_eq!(out.column("v_sum").unwrap().floats().unwrap(), &[6.0, 4.0]);
        assert_eq!(
            out.column("v_count").unwrap().floats().unwrap(),
            &[2.0, 2.0]
        );
    }

    #[test]
    fn string_keys() {
        let d = DataFrame::new(vec![
            Column::source(
                "t",
                "k",
                ColumnData::Str(vec!["b".into(), "a".into(), "b".into()]),
            ),
            Column::source("t", "v", ColumnData::Int(vec![1, 2, 3])),
        ])
        .unwrap();
        let out = groupby_agg(&d, "k", &[("v", AggFn::Mean)]).unwrap();
        assert_eq!(
            out.column("k").unwrap().strs().unwrap(),
            &["a".to_owned(), "b".to_owned()]
        );
        assert_eq!(out.column("v_mean").unwrap().floats().unwrap(), &[2.0, 2.0]);
    }

    #[test]
    fn every_aggregate_matches_apply() {
        // The streaming accumulators must agree with AggFn::apply exactly,
        // including the all-NaN and empty-group edge cases.
        let d = DataFrame::new(vec![
            Column::source("t", "k", ColumnData::Int(vec![1, 2, 1, 2, 1, 3, 3])),
            Column::source(
                "t",
                "v",
                ColumnData::Float(vec![0.1, -2.0, 7.5, f64::NAN, 3.25, f64::NAN, f64::NAN]),
            ),
        ])
        .unwrap();
        for f in [
            AggFn::Sum,
            AggFn::Count,
            AggFn::Mean,
            AggFn::Min,
            AggFn::Max,
            AggFn::Std,
        ] {
            let out = groupby_agg(&d, "k", &[("v", f)]).unwrap();
            let keys = out.column("k").unwrap().ints().unwrap().to_vec();
            let got = out
                .column(&format!("v_{}", f.name()))
                .unwrap()
                .floats()
                .unwrap()
                .to_vec();
            let vals = d.column("v").unwrap().floats().unwrap();
            let ks = d.column("k").unwrap().ints().unwrap();
            for (key, g) in keys.iter().zip(&got) {
                let slice: Vec<f64> = ks
                    .iter()
                    .zip(vals)
                    .filter(|(k, _)| *k == key)
                    .map(|(_, &v)| v)
                    .collect();
                let want = f.apply(&slice);
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "agg {} key {key}: got {g}, want {want}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn lineage_is_deterministic_and_param_sensitive() {
        let d = df();
        let a = groupby_agg(&d, "k", &[("v", AggFn::Sum)]).unwrap();
        let b = groupby_agg(&d, "k", &[("v", AggFn::Sum)]).unwrap();
        let c = groupby_agg(&d, "k", &[("v", AggFn::Mean)]).unwrap();
        assert_eq!(a.column_ids(), b.column_ids());
        assert_ne!(
            a.column("v_sum").unwrap().id(),
            c.column("v_mean").unwrap().id()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = df();
        assert!(groupby_agg(&d, "k", &[]).is_err());
        assert!(groupby_agg(&d, "missing", &[("v", AggFn::Sum)]).is_err());
        assert!(groupby_agg(&d, "v", &[("k", AggFn::Sum)]).is_err()); // float key
    }
}
