//! Aggregates and summary statistics. Whole-column aggregates produce
//! `Aggregate` artifacts (scalars); `value_counts`, `describe`, and
//! `corr_matrix` produce small derived frames (typical terminal vertices of
//! exploratory workloads, per the paper's "aggregated data for
//! visualization").

use crate::column::{Column, ColumnData, ColumnId};
use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::hash;
use crate::ops::AggFn;
use crate::par;
use crate::scalar::Scalar;
use std::collections::HashMap;

/// Stable operation signature for [`agg_column`].
#[must_use]
pub fn agg_signature(col: &str, f: AggFn) -> u64 {
    hash::fnv1a_parts(&["agg", col, f.name()])
}

/// Aggregate one numeric column to a scalar.
pub fn agg_column(df: &DataFrame, col: &str, f: AggFn) -> Result<Scalar> {
    let values = df.column(col)?.to_f64()?;
    Ok(Scalar::Float(f.apply(&values)))
}

/// Stable operation signature for [`value_counts`].
#[must_use]
pub fn value_counts_signature(col: &str) -> u64 {
    hash::fnv1a_parts(&["value_counts", col])
}

/// Frequency table of a string or integer column, sorted by descending
/// count (ties by value).
pub fn value_counts(df: &DataFrame, col: &str) -> Result<DataFrame> {
    let sig = value_counts_signature(col);
    let column = df.column(col)?;
    let rendered: Vec<String> = match column.strs() {
        Ok(strs) => strs.to_vec(),
        Err(_) => column
            .ints()
            .map_err(|_| DfError::TypeMismatch {
                column: col.to_owned(),
                expected: "str or int",
                found: column.dtype().name(),
            })?
            .iter()
            .map(ToString::to_string)
            .collect(),
    };
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for v in &rendered {
        *counts.entry(v.as_str()).or_insert(0) += 1;
    }
    let mut pairs: Vec<(&str, i64)> = counts.into_iter().collect();
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    let values: Vec<String> = pairs.iter().map(|(v, _)| (*v).to_owned()).collect();
    let counts: Vec<i64> = pairs.iter().map(|(_, c)| *c).collect();
    DataFrame::new(vec![
        Column::derived(col, column.id().derive(sig), ColumnData::Str(values)),
        Column::derived(
            "count",
            column
                .id()
                .derive(hash::combine(sig, hash::fnv1a(b"count"))),
            ColumnData::Int(counts),
        ),
    ])
}

/// Stable operation signature for [`describe`].
#[must_use]
pub fn describe_signature() -> u64 {
    hash::fnv1a(b"describe")
}

/// Per-numeric-column summary: mean, std, min, max, count.
pub fn describe(df: &DataFrame) -> Result<DataFrame> {
    let sig = describe_signature();
    // Materialize the f64 view once per numeric column, so the stat loop
    // below never has to re-convert (and never has a panic path).
    let numeric: Vec<(&Column, Vec<f64>)> = df
        .columns()
        .iter()
        .filter_map(|c| c.to_f64().ok().map(|v| (c, v)))
        .collect();
    if numeric.is_empty() {
        return Err(DfError::Empty("describe: no numeric columns".to_owned()));
    }
    let names: Vec<String> = numeric.iter().map(|(c, _)| c.name().to_owned()).collect();
    let stats = [
        AggFn::Mean,
        AggFn::Std,
        AggFn::Min,
        AggFn::Max,
        AggFn::Count,
    ];
    let ids = ColumnId::derive_many(
        &numeric.iter().map(|(c, _)| c.id()).collect::<Vec<_>>(),
        sig,
    );
    let mut cols = vec![Column::derived("column", ids, ColumnData::Str(names))];
    for f in stats {
        let values: Vec<f64> = numeric.iter().map(|(_, v)| f.apply(v)).collect();
        let id = ids.derive(hash::fnv1a_parts(&["describe", f.name()]));
        cols.push(Column::derived(f.name(), id, ColumnData::Float(values)));
    }
    DataFrame::new(cols)
}

/// Stable operation signature for [`corr_matrix`].
#[must_use]
pub fn corr_signature() -> u64 {
    hash::fnv1a(b"corr")
}

/// Pearson correlation matrix over the numeric columns, returned as a frame
/// with a `column` label column plus one column per variable. Rows with
/// missing values are excluded pairwise.
pub fn corr_matrix(df: &DataFrame) -> Result<DataFrame> {
    let sig = corr_signature();
    let numeric: Vec<(&str, Vec<f64>)> = df
        .columns()
        .iter()
        .filter_map(|c| c.to_f64().ok().map(|v| (c.name(), v)))
        .collect();
    if numeric.is_empty() {
        return Err(DfError::Empty("corr: no numeric columns".to_owned()));
    }
    let n = numeric.len();
    // Each upper-triangle pair is an independent Pearson pass over two
    // columns; compute them task-parallel and mirror into the matrix.
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (i..n).map(move |j| (i, j))).collect();
    let rs = par::run_tasks(pairs.len(), |t| {
        let (i, j) = pairs[t];
        Ok(pearson(&numeric[i].1, &numeric[j].1))
    })?;
    let mut matrix = vec![vec![0.0f64; n]; n];
    for (&(i, j), r) in pairs.iter().zip(rs) {
        matrix[i][j] = r;
        matrix[j][i] = r;
    }
    let base = ColumnId::derive_many(&df.column_ids(), sig);
    let labels: Vec<String> = numeric.iter().map(|(n, _)| (*n).to_owned()).collect();
    let mut cols = vec![Column::derived("column", base, ColumnData::Str(labels))];
    for (j, (name, _)) in numeric.iter().enumerate() {
        let id = base.derive(hash::fnv1a_parts(&["corr_col", name]));
        let data: Vec<f64> = (0..n).map(|i| matrix[i][j]).collect();
        cols.push(Column::derived(name, id, ColumnData::Float(data)));
    }
    DataFrame::new(cols)
}

/// Pearson correlation with pairwise-complete observations.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| !a.is_nan() && !b.is_nan())
        .map(|(&a, &b)| (a, b))
        .collect();
    if pairs.len() < 2 {
        return f64::NAN;
    }
    let n = pairs.len() as f64;
    let (mx, my) = (
        pairs.iter().map(|(a, _)| a).sum::<f64>() / n,
        pairs.iter().map(|(_, b)| b).sum::<f64>() / n,
    );
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in &pairs {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    // co-lint:allow(float-eq) exact-zero variance sentinel: correlation is undefined for a constant series
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::source("t", "x", ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0])),
            Column::source("t", "y", ColumnData::Float(vec![2.0, 4.0, 6.0, 8.0])),
            Column::source("t", "z", ColumnData::Float(vec![4.0, 3.0, 2.0, 1.0])),
            Column::source("t", "s", ColumnData::Str(vec!["a".into(); 4])),
        ])
        .unwrap()
    }

    #[test]
    fn scalar_aggregates() {
        let d = df();
        assert_eq!(
            agg_column(&d, "x", AggFn::Mean).unwrap(),
            Scalar::Float(2.5)
        );
        assert_eq!(agg_column(&d, "x", AggFn::Max).unwrap(), Scalar::Float(4.0));
        assert!(agg_column(&d, "s", AggFn::Mean).is_err());
    }

    #[test]
    fn value_counts_orders_by_frequency() {
        let d = DataFrame::new(vec![Column::source(
            "t",
            "k",
            ColumnData::Str(vec!["b".into(), "a".into(), "b".into()]),
        )])
        .unwrap();
        let out = value_counts(&d, "k").unwrap();
        assert_eq!(
            out.column("k").unwrap().strs().unwrap(),
            &["b".to_owned(), "a".to_owned()]
        );
        assert_eq!(out.column("count").unwrap().ints().unwrap(), &[2, 1]);
        // Works on int columns too.
        let d = DataFrame::new(vec![Column::source(
            "t",
            "k",
            ColumnData::Int(vec![5, 5, 1]),
        )])
        .unwrap();
        assert_eq!(value_counts(&d, "k").unwrap().n_rows(), 2);
    }

    #[test]
    fn describe_covers_numeric_columns() {
        let out = describe(&df()).unwrap();
        assert_eq!(out.n_rows(), 3); // x, y, z — s skipped
        assert_eq!(
            out.column_names(),
            vec!["column", "mean", "std", "min", "max", "count"]
        );
        assert_eq!(out.column("mean").unwrap().floats().unwrap()[0], 2.5);
    }

    #[test]
    fn correlation_matrix() {
        let out = corr_matrix(&df()).unwrap();
        let xy = out.column("y").unwrap().floats().unwrap()[0];
        let xz = out.column("z").unwrap().floats().unwrap()[0];
        assert!((xy - 1.0).abs() < 1e-12);
        assert!((xz + 1.0).abs() < 1e-12);
        let xx = out.column("x").unwrap().floats().unwrap()[0];
        assert!((xx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_edge_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan()); // zero variance
        let r = pearson(&[1.0, f64::NAN, 3.0], &[1.0, 5.0, 3.0]);
        assert!((r - 1.0).abs() < 1e-12); // NaN pair skipped
    }
}
