//! Semantic dataframe operations.
//!
//! Every operation here follows the paper's column-id lineage rules (§5.3):
//!
//! * columns whose **content** is unchanged keep their [`crate::ColumnId`]
//!   (projection, horizontal concat, alignment, one-hot on *other* columns);
//! * columns affected by the operation get a new id derived from the
//!   operation hash and the input id(s), so identical pipelines on identical
//!   sources converge to identical ids across artifacts.
//!
//! Each operation module also exposes a `*_signature` function returning the
//! stable hash of the operation name and parameters. The graph layer uses
//! those signatures for artifact identity; the operations themselves use them
//! (mixed with input column ids where the semantics require it, e.g. joins)
//! to derive output column ids.

mod concat;
mod encode;
mod filter;
mod groupby;
mod join;
mod map;
mod sample;
mod sort;
mod stats;

pub use concat::{align, align_signature, hconcat, hconcat_signature, vconcat, vconcat_signature};
pub use encode::{label_encode, label_encode_signature, one_hot, one_hot_signature};
pub use filter::{dropna, dropna_signature, filter, filter_signature, Predicate};
pub use groupby::{groupby_agg, groupby_signature};
pub use join::{inner_join, join_signature, left_join, left_join_signature};
pub use map::{
    binary_op, binary_op_signature, map_column, map_signature, str_feature, str_feature_signature,
    BinFn, MapFn, StrFn,
};
pub use sample::{sample, sample_signature};
pub use sort::{sort_by, sort_signature};
pub use stats::{
    agg_column, agg_signature, corr_matrix, corr_signature, describe, describe_signature,
    value_counts, value_counts_signature,
};

use std::fmt;

/// Aggregation functions used by group-by and whole-column aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Sum of values (missing values ignored).
    Sum,
    /// Arithmetic mean (missing values ignored).
    Mean,
    /// Minimum (missing values ignored).
    Min,
    /// Maximum (missing values ignored).
    Max,
    /// Number of non-missing values.
    Count,
    /// Population standard deviation (missing values ignored).
    Std,
}

impl AggFn {
    /// Short stable name used in digests and output column names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Count => "count",
            AggFn::Std => "std",
        }
    }

    /// Fold a slice of numeric values (NaN = missing) into the aggregate.
    #[must_use]
    pub fn apply(self, values: &[f64]) -> f64 {
        let present = values.iter().copied().filter(|v| !v.is_nan());
        match self {
            AggFn::Sum => present.sum(),
            AggFn::Count => present.count() as f64,
            AggFn::Mean => {
                let (sum, n) = present.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
                if n == 0 {
                    f64::NAN
                } else {
                    sum / n as f64
                }
            }
            AggFn::Min => present.fold(
                f64::NAN,
                |acc, v| if acc.is_nan() || v < acc { v } else { acc },
            ),
            AggFn::Max => present.fold(
                f64::NAN,
                |acc, v| if acc.is_nan() || v > acc { v } else { acc },
            ),
            AggFn::Std => {
                let vals: Vec<f64> = present.collect();
                if vals.is_empty() {
                    return f64::NAN;
                }
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
                var.sqrt()
            }
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_ignore_missing() {
        let values = [1.0, f64::NAN, 3.0];
        assert_eq!(AggFn::Sum.apply(&values), 4.0);
        assert_eq!(AggFn::Mean.apply(&values), 2.0);
        assert_eq!(AggFn::Count.apply(&values), 2.0);
        assert_eq!(AggFn::Min.apply(&values), 1.0);
        assert_eq!(AggFn::Max.apply(&values), 3.0);
        assert_eq!(AggFn::Std.apply(&values), 1.0);
    }

    #[test]
    fn aggregates_of_all_missing_are_nan_or_zero() {
        let values = [f64::NAN, f64::NAN];
        assert!(AggFn::Mean.apply(&values).is_nan());
        assert!(AggFn::Min.apply(&values).is_nan());
        assert_eq!(AggFn::Sum.apply(&values), 0.0);
        assert_eq!(AggFn::Count.apply(&values), 0.0);
    }
}
