//! Chunk-parallel execution runtime for the columnar kernels.
//!
//! Every hot kernel in `ops/` splits its row range into contiguous chunks,
//! processes each chunk on a scoped worker thread, and merges the
//! per-chunk results **in chunk order**. Because chunks are contiguous and
//! the merge is ordered, a parallel kernel produces bit-identical output
//! to the serial one — the property the differential suite in
//! `tests/parallel_diff_props.rs` pins down.
//!
//! Determinism rules the helpers here enforce by construction:
//!
//! - Chunk boundaries depend only on `(len, threads, min_chunk)`, never on
//!   scheduling. The same configuration always yields the same split.
//! - Results come back as a `Vec` indexed by chunk, so the caller's merge
//!   order is the chunk order regardless of which worker finished first.
//! - A panicking worker never unwinds through the caller: panics are
//!   caught at the scope boundary and surfaced as [`DfError::Internal`].
//!   (The executor's `catch_unwind` confines panics on *its* thread only;
//!   a panic on a pool thread would otherwise abort the process.)
//!
//! Thread count resolution order: an active [`with_config`] override
//! (used by tests to force serial or parallel execution regardless of the
//! host), else [`set_threads`], else the `CO_DF_THREADS` environment
//! variable, else [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::error::{DfError, Result};

/// Global thread-count override; 0 = unset (fall back to env / hardware).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Rows below which kernels stay serial: thread spawn + merge overhead
/// beats any win on small frames.
pub const DEFAULT_MIN_CHUNK: usize = 16 * 1024;

thread_local! {
    /// Per-thread `(threads, min_chunk)` override installed by [`with_config`].
    static LOCAL_CONFIG: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Set the process-wide worker thread count (0 clears the override).
///
/// Wired to `ServerConfig::df_threads` and the `CO_DF_THREADS` environment
/// variable; individual calls can still be pinned with [`with_config`].
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Run `f` with a pinned `(threads, min_chunk)` configuration.
///
/// Thread-local, so concurrent tests cannot race each other's settings.
/// `min_chunk = 1` forces chunked execution even on tiny frames, which is
/// how the differential suite exercises the parallel path on generated
/// frames of a few rows.
pub fn with_config<R>(threads: usize, min_chunk: usize, f: impl FnOnce() -> R) -> R {
    LOCAL_CONFIG.with(|cfg| {
        let prev = cfg.replace(Some((threads.max(1), min_chunk.max(1))));
        let out = f();
        cfg.set(prev);
        out
    })
}

/// The effective `(threads, min_chunk)` for the current thread.
fn config() -> (usize, usize) {
    if let Some(cfg) = LOCAL_CONFIG.with(Cell::get) {
        return cfg;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    let threads = if global > 0 {
        global
    } else if let Some(n) = std::env::var("CO_DF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        n
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    };
    (threads.max(1), DEFAULT_MIN_CHUNK)
}

/// The worker thread count kernels currently resolve to.
#[must_use]
pub fn current_threads() -> usize {
    config().0
}

/// Deterministic split of `0..len` into at most `threads` contiguous
/// chunks of at least `min_chunk` rows (except possibly the last).
fn chunk_bounds(len: usize, threads: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let max_chunks = len.div_ceil(min_chunk.max(1));
    let n_chunks = threads.min(max_chunks).max(1);
    let base = len / n_chunks;
    let extra = len % n_chunks;
    let mut bounds = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

fn internal_panic() -> DfError {
    DfError::Internal("worker thread panicked".into())
}

/// Run `job` over contiguous chunks of `0..len` and return the per-chunk
/// results **in chunk order**.
///
/// `job(chunk_index, start, end)` must depend only on its arguments (and
/// shared immutable input); chunk order in the returned `Vec` is the merge
/// order. Falls back to inline serial execution when one chunk suffices,
/// so small frames never pay for a thread spawn. Worker panics and errors
/// both surface as `Err`; the first error in chunk order wins.
pub fn run_chunks<T, F>(len: usize, job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, usize, usize) -> Result<T> + Sync,
{
    let (threads, min_chunk) = config();
    let bounds = chunk_bounds(len, threads, min_chunk);
    if bounds.len() <= 1 {
        return bounds
            .into_iter()
            .enumerate()
            .map(|(i, (s, e))| job(i, s, e))
            .collect();
    }
    let slots: Vec<Mutex<Option<Result<T>>>> = bounds.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for (i, &(start, end)) in bounds.iter().enumerate() {
            let slot = &slots[i];
            let job = &job;
            scope.spawn(move |_| {
                *slot.lock() = Some(job(i, start, end));
            });
        }
    })
    .map_err(|_| internal_panic())?;
    slots
        .into_iter()
        .map(|slot| slot.into_inner().ok_or_else(internal_panic)?)
        .collect()
}

/// Run `k` independent tasks and return their results in task order.
///
/// Task-shaped counterpart of [`run_chunks`] for work that partitions by
/// something other than rows (hash partitions in join/group-by, column
/// pairs in the correlation matrix). Honors the same thread-count
/// configuration: with 1 thread the tasks run inline, serially, in order.
pub fn run_tasks<T, F>(k: usize, job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let (threads, _) = config();
    if k <= 1 || threads <= 1 {
        return (0..k).map(&job).collect();
    }
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..k).map(|_| Mutex::new(None)).collect();
    // Cap live threads at the configured count: workers sweep the slot
    // array and claim unclaimed tasks, so at most `threads` OS threads
    // exist while all `k` tasks still run exactly once.
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(k) {
            let slots = &slots;
            let next = &next;
            let job = &job;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                *slots[i].lock() = Some(job(i));
            });
        }
    })
    .map_err(|_| internal_panic())?;
    slots
        .into_iter()
        .map(|slot| slot.into_inner().ok_or_else(internal_panic)?)
        .collect()
}

/// Fill `out` in place by running `job` over contiguous chunks of it.
///
/// `job(chunk_index, start, chunk)` writes the values for `out[start..]`
/// into `chunk` (a disjoint `&mut` sub-slice handed out via
/// `split_at_mut`, so no locking and no copy-merge step). The chunk
/// layout matches [`run_chunks`], keeping output placement deterministic.
pub fn fill_chunks<T, F>(out: &mut [T], job: F) -> Result<()>
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) -> Result<()> + Sync,
{
    let (threads, min_chunk) = config();
    let bounds = chunk_bounds(out.len(), threads, min_chunk);
    if bounds.len() <= 1 {
        for (i, &(start, end)) in bounds.iter().enumerate() {
            job(i, start, &mut out[start..end])?;
        }
        return Ok(());
    }
    let errors: Mutex<Vec<(usize, DfError)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0;
        for (i, &(start, end)) in bounds.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(end - consumed);
            rest = tail;
            consumed = end;
            let errors = &errors;
            let job = &job;
            scope.spawn(move |_| {
                if let Err(e) = job(i, start, chunk) {
                    errors.lock().push((i, e));
                }
            });
        }
    })
    .map_err(|_| internal_panic())?;
    let mut errors = errors.into_inner();
    errors.sort_by_key(|&(i, _)| i);
    match errors.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_range_exactly() {
        for len in [0usize, 1, 2, 7, 100, 1001] {
            for threads in [1usize, 2, 3, 8] {
                for min_chunk in [1usize, 4, 1000] {
                    let bounds = chunk_bounds(len, threads, min_chunk);
                    let mut pos = 0;
                    for &(s, e) in &bounds {
                        assert_eq!(s, pos, "len={len} threads={threads}");
                        assert!(e > s, "empty chunk len={len} threads={threads}");
                        pos = e;
                    }
                    assert_eq!(pos, len);
                    assert!(bounds.len() <= threads.max(1));
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_are_deterministic() {
        assert_eq!(chunk_bounds(10, 4, 1), chunk_bounds(10, 4, 1));
        assert_eq!(
            chunk_bounds(10, 4, 1),
            vec![(0, 3), (3, 6), (6, 8), (8, 10)]
        );
    }

    #[test]
    fn run_chunks_merges_in_chunk_order() {
        let data: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4] {
            let parts = with_config(threads, 1, || {
                run_chunks(data.len(), |_i, s, e| Ok(data[s..e].to_vec()))
            })
            .unwrap();
            let flat: Vec<u64> = parts.into_iter().flatten().collect();
            assert_eq!(flat, data);
        }
    }

    #[test]
    fn run_chunks_surfaces_errors_first_in_chunk_order() {
        let r: Result<Vec<()>> = with_config(4, 1, || {
            run_chunks(100, |i, _s, _e| {
                if i >= 1 {
                    Err(DfError::Internal(format!("chunk {i}")))
                } else {
                    Ok(())
                }
            })
        });
        assert_eq!(r.unwrap_err(), DfError::Internal("chunk 1".into()));
    }

    #[test]
    fn run_chunks_catches_worker_panics() {
        let r: Result<Vec<()>> = with_config(4, 1, || {
            run_chunks(100, |i, _s, _e| {
                assert!(i < 2, "simulated kernel bug");
                Ok(())
            })
        });
        assert!(matches!(r, Err(DfError::Internal(_))));
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        for threads in [1, 3] {
            let out = with_config(threads, 1, || run_tasks(10, |i| Ok(i * i))).unwrap();
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fill_chunks_writes_every_slot() {
        for threads in [1, 4] {
            let mut out = vec![0usize; 97];
            with_config(threads, 1, || {
                fill_chunks(&mut out, |_i, start, chunk| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        *v = start + off;
                    }
                    Ok(())
                })
            })
            .unwrap();
            assert_eq!(out, (0..97).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fill_chunks_reports_lowest_chunk_error() {
        let mut out = vec![0u8; 50];
        let r = with_config(4, 1, || {
            fill_chunks(&mut out, |i, _s, _c| {
                if i % 2 == 1 {
                    Err(DfError::Internal(format!("chunk {i}")))
                } else {
                    Ok(())
                }
            })
        });
        assert_eq!(r.unwrap_err(), DfError::Internal("chunk 1".into()));
    }

    #[test]
    fn with_config_is_scoped_and_restores() {
        let before = current_threads();
        let inner = with_config(7, 1, current_threads);
        assert_eq!(inner, 7);
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn serial_config_runs_inline() {
        // threads=1 must not spawn: verify by observing the worker runs on
        // the caller's thread.
        let caller = std::thread::current().id();
        let ids = with_config(1, 1, || {
            run_chunks(10, |_i, _s, _e| Ok(std::thread::current().id()))
        })
        .unwrap();
        assert!(ids.iter().all(|&id| id == caller));
    }
}
