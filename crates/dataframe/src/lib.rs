//! # co-dataframe
//!
//! A small, self-contained columnar dataframe engine: the "pandas substrate"
//! of the collaborative ML workload optimizer (Derakhshan et al., SIGMOD 2020).
//!
//! The engine provides the operations the paper's Kaggle/OpenML workloads rely
//! on — projection, row filtering, column maps, hash joins, concatenation,
//! group-by aggregation, one-hot encoding, sampling, sorting, and the paper's
//! *alignment* operation — plus two features the optimizer itself depends on:
//!
//! 1. **Column-id lineage** (paper §5.3): every column carries a [`ColumnId`].
//!    Operations derive new ids for *affected* columns by hashing the
//!    operation signature with the input column id, while unaffected columns
//!    keep their ids. Two columns in two different artifacts share an id if
//!    and only if the same chain of operations produced them — the invariant
//!    the storage-aware materializer's deduplication builds on.
//! 2. **Cheap size accounting**: [`DataFrame::nbytes`] reports content size so
//!    the materializer can reason about storage budgets.
//!
//! Columns are immutable and reference-counted ([`std::sync::Arc`]), so
//! projections, horizontal concatenation, and alignment are O(#columns) and
//! share underlying buffers — mirroring how the paper's artifact store holds
//! one copy of each deduplicated column.
//!
//! ```
//! use co_dataframe::{DataFrame, Column, ColumnData};
//! use co_dataframe::ops::{filter, Predicate};
//!
//! let df = DataFrame::new(vec![
//!     Column::source("train", "price", ColumnData::Float(vec![1.0, 5.0, 3.0])),
//!     Column::source("train", "y", ColumnData::Int(vec![0, 1, 1])),
//! ]).unwrap();
//! let cheap = filter(&df, &Predicate::lt_f("price", 4.0)).unwrap();
//! assert_eq!(cheap.n_rows(), 2);
//! // Row filtering affects every column, so ids change:
//! assert_ne!(df.column("y").unwrap().id(), cheap.column("y").unwrap().id());
//! // Pure projection keeps ids:
//! let proj = df.select(&["y"]).unwrap();
//! assert_eq!(df.column("y").unwrap().id(), proj.column("y").unwrap().id());
//! ```

#![forbid(unsafe_code)]

pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod hash;
pub mod ops;
pub mod par;
pub mod scalar;
pub mod schema;

pub use column::{Column, ColumnData, ColumnId};
pub use error::{DfError, Result};
pub use frame::DataFrame;
pub use scalar::Scalar;
pub use schema::{DType, Field, Schema};
