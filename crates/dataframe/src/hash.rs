//! Stable, dependency-free hashing used for operation signatures and column
//! ids.
//!
//! The optimizer identifies artifacts and operations by hash (paper §4.1:
//! "for every operation, the system computes a hash based on the operation
//! name and its parameters"). Rust's [`std::collections::hash_map::DefaultHasher`]
//! is not guaranteed stable across releases, so we use FNV-1a, which is
//! deterministic, fast for the short strings we hash, and trivially
//! implemented.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a (64-bit).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with_seed(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a hash from an existing state.
///
/// Feeding parts one by one is equivalent to hashing their concatenation,
/// so callers that need injectivity across parts must add separators (see
/// [`fnv1a_parts`]).
#[must_use]
pub fn fnv1a_with_seed(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hash a sequence of string parts, separating them so that
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
#[must_use]
pub fn fnv1a_parts(parts: &[&str]) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        hash = fnv1a_with_seed(hash, part.as_bytes());
        // Unit separator: cannot appear in the middle of a UTF-8 code point,
        // and is never produced by our digests.
        hash = fnv1a_with_seed(hash, &[0x1f]);
    }
    hash
}

/// Combine two 64-bit hashes into one.
///
/// Used to derive a new [`crate::ColumnId`] from an operation hash and an
/// input column id (paper §5.3), and to chain artifact ids through a DAG.
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    let mut hash = fnv1a_with_seed(FNV_OFFSET, &a.to_le_bytes());
    hash = fnv1a_with_seed(hash, &b.to_le_bytes());
    hash
}

/// Combine an ordered list of hashes into one.
#[must_use]
pub fn combine_all(parts: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for p in parts {
        hash = fnv1a_with_seed(hash, &p.to_le_bytes());
    }
    hash
}

/// Render a float so that it hashes stably (`1` and `1.0` agree, NaN is
/// canonical).
#[must_use]
pub fn float_digest(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{x:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parts_are_separated() {
        assert_ne!(fnv1a_parts(&["ab", "c"]), fnv1a_parts(&["a", "bc"]));
        assert_ne!(fnv1a_parts(&["ab"]), fnv1a_parts(&["ab", ""]));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_ne!(combine_all(&[1, 2, 3]), combine_all(&[3, 2, 1]));
    }

    #[test]
    fn float_digest_round_trips() {
        assert_eq!(float_digest(1.0), "1.0");
        assert_eq!(float_digest(0.1), "0.1");
        assert_eq!(float_digest(f64::NAN), "NaN");
        assert_ne!(float_digest(1.5), float_digest(1.25));
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(
            fnv1a_parts(&["filter", "x<3"]),
            fnv1a_parts(&["filter", "x<3"])
        );
    }
}
