//! Stable, dependency-free hashing used for operation signatures and column
//! ids.
//!
//! The optimizer identifies artifacts and operations by hash (paper §4.1:
//! "for every operation, the system computes a hash based on the operation
//! name and its parameters"). Rust's [`std::collections::hash_map::DefaultHasher`]
//! is not guaranteed stable across releases, so we use FNV-1a, which is
//! deterministic, fast for the short strings we hash, and trivially
//! implemented.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a (64-bit).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with_seed(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a hash from an existing state.
///
/// Feeding parts one by one is equivalent to hashing their concatenation,
/// so callers that need injectivity across parts must add separators (see
/// [`fnv1a_parts`]).
#[must_use]
pub fn fnv1a_with_seed(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hash a sequence of string parts, separating them so that
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
#[must_use]
pub fn fnv1a_parts(parts: &[&str]) -> u64 {
    let mut hash = FNV_OFFSET;
    for part in parts {
        hash = fnv1a_with_seed(hash, part.as_bytes());
        // Unit separator: cannot appear in the middle of a UTF-8 code point,
        // and is never produced by our digests.
        hash = fnv1a_with_seed(hash, &[0x1f]);
    }
    hash
}

/// Combine two 64-bit hashes into one.
///
/// Used to derive a new [`crate::ColumnId`] from an operation hash and an
/// input column id (paper §5.3), and to chain artifact ids through a DAG.
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    let mut hash = fnv1a_with_seed(FNV_OFFSET, &a.to_le_bytes());
    hash = fnv1a_with_seed(hash, &b.to_le_bytes());
    hash
}

/// Combine an ordered list of hashes into one.
#[must_use]
pub fn combine_all(parts: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for p in parts {
        hash = fnv1a_with_seed(hash, &p.to_le_bytes());
    }
    hash
}

/// A fast, deterministic hasher for the kernel-internal hash maps (join
/// builds, group-by key collection, category counting).
///
/// `std`'s default SipHash is keyed per-process and costs ~10× more per
/// `i64` key than a multiply-xor mix; the kernels hash millions of keys
/// per call, so the hasher shows up directly in join/group-by wall time.
/// This is an FxHash-style word-at-a-time mix: not DoS-resistant (the
/// kernels hash data we already hold in memory, not attacker-controlled
/// network input) but deterministic across runs, which also keeps any
/// incidental map-iteration order stable between executions.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

/// Odd multiplier from splitmix64's finalizer; any odd constant with good
/// bit dispersion works.
const FAST_K: u64 = 0x9e37_79b9_7f4a_7c15;

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy keys (small ints) spread over the
        // high bits HashMap's mask uses.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(FAST_K);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, deterministic).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastBuild;

impl std::hash::BuildHasher for FastBuild {
    type Hasher = FastHasher;
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed with the deterministic [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

/// An empty [`FastMap`].
#[must_use]
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::with_hasher(FastBuild)
}

/// An empty [`FastMap`] with capacity.
#[must_use]
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FastBuild)
}

/// Deterministic hash partition of a key: which of `parts` buckets it
/// belongs to. A key maps to exactly one partition for a given count, so
/// partitioned kernels produce identical output for any thread count.
#[must_use]
pub fn partition_of<K: std::hash::Hash + ?Sized>(key: &K, parts: usize) -> usize {
    use std::hash::BuildHasher;
    (FastBuild.hash_one(key) % parts.max(1) as u64) as usize
}

/// Decide whether a set of `n` integer keys is dense enough for a
/// direct-address table: returns `(min, span)` when the key span costs at
/// most ~4 table slots per key, `None` for sparse keys (hash instead).
///
/// Entity-id key columns (the paper's `SK_ID_CURR`-style keys) are almost
/// always dense ranges, where a flat array beats any hash map: one bounds
/// check and one load per key, zero hashing.
pub(crate) fn dense_key_span(keys: impl Iterator<Item = i64>, n: usize) -> Option<(i64, usize)> {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for k in keys {
        min = min.min(k);
        max = max.max(k);
    }
    if n == 0 {
        return None;
    }
    let span = i128::from(max) - i128::from(min) + 1;
    if span <= (n as i128) * 4 + 1024 {
        #[allow(clippy::cast_possible_truncation)] // lint:reason bounded by 4n + 1024
        Some((min, span as usize))
    } else {
        None
    }
}

/// Render a float so that it hashes stably (`1` and `1.0` agree, NaN is
/// canonical).
#[must_use]
pub fn float_digest(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{x:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parts_are_separated() {
        assert_ne!(fnv1a_parts(&["ab", "c"]), fnv1a_parts(&["a", "bc"]));
        assert_ne!(fnv1a_parts(&["ab"]), fnv1a_parts(&["ab", ""]));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_ne!(combine_all(&[1, 2, 3]), combine_all(&[3, 2, 1]));
    }

    #[test]
    fn float_digest_round_trips() {
        assert_eq!(float_digest(1.0), "1.0");
        assert_eq!(float_digest(0.1), "0.1");
        assert_eq!(float_digest(f64::NAN), "NaN");
        assert_ne!(float_digest(1.5), float_digest(1.25));
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(
            fnv1a_parts(&["filter", "x<3"]),
            fnv1a_parts(&["filter", "x<3"])
        );
    }
}
