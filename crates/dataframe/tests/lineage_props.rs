//! Property-based tests for the column-id lineage invariants of paper §5.3:
//!
//! 1. Columns not affected by an operation keep their id.
//! 2. Two columns have the same id iff the same operation chain was applied
//!    to the same source column — in particular, identical pipelines re-run
//!    from scratch converge to identical ids (determinism), and different
//!    parameters diverge.

use co_dataframe::ops::{self, AggFn, BinFn, MapFn, Predicate};
use co_dataframe::{Column, ColumnData, DataFrame};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = DataFrame> {
    // 1-40 rows of (int key, float value, category).
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(0i64..5, n),
            proptest::collection::vec(-100.0f64..100.0, n),
            proptest::collection::vec(proptest::sample::select(vec!["a", "b", "c"]), n),
        )
            .prop_map(|(keys, values, cats)| {
                DataFrame::new(vec![
                    Column::source("t", "k", ColumnData::Int(keys)),
                    Column::source("t", "v", ColumnData::Float(values)),
                    Column::source(
                        "t",
                        "c",
                        ColumnData::Str(cats.into_iter().map(str::to_owned).collect()),
                    ),
                ])
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn projection_preserves_ids(df in arb_frame()) {
        let p = df.select(&["v", "k"]).unwrap();
        prop_assert_eq!(p.column("v").unwrap().id(), df.column("v").unwrap().id());
        prop_assert_eq!(p.column("k").unwrap().id(), df.column("k").unwrap().id());
    }

    #[test]
    fn identical_pipelines_converge(df in arb_frame(), threshold in -50.0f64..50.0) {
        let a = ops::filter(&df, &Predicate::gt_f("v", threshold)).unwrap();
        let b = ops::filter(&df, &Predicate::gt_f("v", threshold)).unwrap();
        prop_assert_eq!(a.column_ids(), b.column_ids());
        let a2 = ops::map_column(&a, "v", &MapFn::Abs, "va").unwrap();
        let b2 = ops::map_column(&b, "v", &MapFn::Abs, "va").unwrap();
        prop_assert_eq!(a2.column("va").unwrap().id(), b2.column("va").unwrap().id());
    }

    #[test]
    fn different_params_diverge(df in arb_frame(), t1 in -50.0f64..0.0, t2 in 0.5f64..50.0) {
        let a = ops::filter(&df, &Predicate::gt_f("v", t1)).unwrap();
        let b = ops::filter(&df, &Predicate::gt_f("v", t2)).unwrap();
        prop_assert_ne!(a.column("k").unwrap().id(), b.column("k").unwrap().id());
    }

    #[test]
    fn map_only_affects_target(df in arb_frame(), c in -5.0f64..5.0) {
        let out = ops::map_column(&df, "v", &MapFn::AddConst(c), "v2").unwrap();
        prop_assert_eq!(out.column("k").unwrap().id(), df.column("k").unwrap().id());
        prop_assert_eq!(out.column("c").unwrap().id(), df.column("c").unwrap().id());
        prop_assert_ne!(out.column("v2").unwrap().id(), df.column("v").unwrap().id());
    }

    #[test]
    fn hconcat_is_pure_structure(df in arb_frame()) {
        let left = df.select(&["k"]).unwrap();
        let right = df.select(&["v", "c"]).unwrap();
        let joined = ops::hconcat(&[&left, &right]).unwrap();
        prop_assert_eq!(joined.column_ids(), df.column_ids());
        prop_assert_eq!(joined.nbytes(), df.nbytes());
    }

    #[test]
    fn filter_then_project_commutes_on_ids(df in arb_frame(), t in -50.0f64..50.0) {
        // select-then-filter and filter-then-select give the kept columns the
        // same lineage (projection is id-transparent).
        let pred = Predicate::gt_f("v", t);
        let a = ops::filter(&df.select(&["v", "k"]).unwrap(), &pred).unwrap();
        let b = ops::filter(&df, &pred).unwrap().select(&["v", "k"]).unwrap();
        prop_assert_eq!(a.column_ids(), b.column_ids());
        // Contents agree as well.
        prop_assert_eq!(
            a.column("k").unwrap().ints().unwrap(),
            b.column("k").unwrap().ints().unwrap()
        );
    }

    #[test]
    fn groupby_deterministic(df in arb_frame()) {
        let a = ops::groupby_agg(&df, "k", &[("v", AggFn::Mean)]).unwrap();
        let b = ops::groupby_agg(&df, "k", &[("v", AggFn::Mean)]).unwrap();
        prop_assert_eq!(a.column_ids(), b.column_ids());
        prop_assert_eq!(
            a.column("v_mean").unwrap().floats().unwrap(),
            b.column("v_mean").unwrap().floats().unwrap()
        );
    }

    #[test]
    fn binary_op_no_side_effects(df in arb_frame()) {
        let out = ops::binary_op(&df, "v", "k", BinFn::Mul, "vk").unwrap();
        prop_assert_eq!(out.n_rows(), df.n_rows());
        prop_assert_eq!(out.column("c").unwrap().id(), df.column("c").unwrap().id());
    }

    #[test]
    fn one_hot_keeps_other_columns(df in arb_frame(), k in 1usize..4) {
        let out = ops::one_hot(&df, "c", k).unwrap();
        prop_assert_eq!(out.column("k").unwrap().id(), df.column("k").unwrap().id());
        prop_assert_eq!(out.column("v").unwrap().id(), df.column("v").unwrap().id());
        prop_assert!(!out.has_column("c"));
        // Indicators are 0/1 and each row sums to at most 1.
        for i in 0..out.n_rows() {
            let mut row_sum = 0.0;
            for col in out.columns().iter().filter(|c| c.name().starts_with("c=")) {
                let x = col.floats().unwrap()[i];
                prop_assert!(x == 0.0 || x == 1.0);
                row_sum += x;
            }
            prop_assert!(row_sum <= 1.0);
        }
    }

    #[test]
    fn sample_subset_of_rows(df in arb_frame(), seed in 0u64..1000) {
        let n = df.n_rows() / 2;
        if n > 0 {
            let s = ops::sample(&df, n, seed).unwrap();
            prop_assert_eq!(s.n_rows(), n);
            // Every sampled key exists in the original.
            let orig = df.column("k").unwrap().ints().unwrap();
            for k in s.column("k").unwrap().ints().unwrap() {
                prop_assert!(orig.contains(k));
            }
        }
    }

    #[test]
    fn vconcat_row_count_adds(df in arb_frame()) {
        let out = ops::vconcat(&[&df, &df]).unwrap();
        prop_assert_eq!(out.n_rows(), 2 * df.n_rows());
    }

    #[test]
    fn csv_round_trip(df in arb_frame()) {
        let text = co_dataframe::csv::to_csv_string(&df);
        let back = co_dataframe::csv::read_csv_str("t", &text).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(
            back.column("k").unwrap().ints().unwrap(),
            df.column("k").unwrap().ints().unwrap()
        );
    }
}
