//! Differential properties for the chunk-parallel kernels: for every
//! kernel, running with one thread (one chunk) and running with several
//! threads (forced chunking via `min_chunk = 1`) must produce **the same
//! frame, bit for bit** — same column names, same `ColumnId` lineage, and
//! identical buffers, with floats compared via `to_bits` so `NaN`s and
//! signed zeros count too. This is the lineage contract the experiment
//! graph depends on: a parallel kernel that drifted by even one ULP would
//! silently split cached artifacts from their recomputed twins.
//!
//! Generated inputs deliberately include NaN values, duplicate and
//! colliding keys, and (near-)empty frames.

use co_dataframe::ops::{self, AggFn, BinFn, MapFn, Predicate};
use co_dataframe::{par, Column, ColumnData, DType, DataFrame};
use proptest::prelude::*;

/// Run `f` serial (1 thread, single chunk) and parallel (4 threads,
/// chunking forced down to single rows) and require bit-identical frames.
fn assert_differential<F>(f: F) -> Result<(), TestCaseError>
where
    F: Fn() -> co_dataframe::Result<DataFrame>,
{
    let serial = par::with_config(1, usize::MAX, &f);
    let parallel = par::with_config(4, 1, &f);
    match (serial, parallel) {
        (Ok(s), Ok(p)) => assert_frames_bit_identical(&s, &p),
        (Err(se), Err(pe)) => {
            // Same failure either way is fine, but it must be the same kind.
            prop_assert_eq!(se.to_string(), pe.to_string());
            Ok(())
        }
        (s, p) => Err(TestCaseError::fail(format!(
            "serial/parallel disagree on success: serial={s:?} parallel={p:?}"
        ))),
    }
}

fn assert_frames_bit_identical(a: &DataFrame, b: &DataFrame) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.column_names(), b.column_names());
    prop_assert_eq!(a.column_ids(), b.column_ids());
    prop_assert_eq!(a.n_rows(), b.n_rows());
    for (ca, cb) in a.columns().iter().zip(b.columns()) {
        prop_assert_eq!(ca.dtype(), cb.dtype());
        match ca.dtype() {
            DType::Float => {
                let (xa, xb) = (ca.floats().unwrap(), cb.floats().unwrap());
                prop_assert_eq!(xa.len(), xb.len());
                for (x, y) in xa.iter().zip(xb) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "column {}", ca.name());
                }
            }
            DType::Int => prop_assert_eq!(ca.ints().unwrap(), cb.ints().unwrap()),
            DType::Str => prop_assert_eq!(ca.strs().unwrap(), cb.strs().unwrap()),
            DType::Bool => prop_assert_eq!(ca.bools().unwrap(), cb.bools().unwrap()),
        }
    }
    Ok(())
}

/// Floats with a real chance of NaN and signed zero in the stream.
fn arb_floats(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        (0u8..8, -100.0f64..100.0).prop_map(|(tag, x)| match tag {
            0 => f64::NAN,
            1 => -0.0,
            2 => 0.0,
            _ => x,
        }),
        n,
    )
}

/// Frames from empty to a few hundred rows; keys drawn from a tiny domain
/// so duplicates (and hash-partition collisions) are the norm.
fn arb_frame() -> impl Strategy<Value = DataFrame> {
    (0usize..200).prop_flat_map(|n| {
        (
            proptest::collection::vec(-3i64..4, n),
            arb_floats(n),
            proptest::collection::vec(proptest::sample::select(vec!["a", "b", "c", "d"]), n),
        )
            .prop_map(|(keys, values, cats)| {
                DataFrame::new(vec![
                    Column::source("t", "k", ColumnData::Int(keys)),
                    Column::source("t", "v", ColumnData::Float(values)),
                    Column::source(
                        "t",
                        "c",
                        ColumnData::Str(cats.into_iter().map(str::to_owned).collect()),
                    ),
                ])
                .unwrap()
            })
    })
}

/// A second frame to join against, keyed over the same small domain.
fn arb_right() -> impl Strategy<Value = DataFrame> {
    (0usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(-3i64..4, n),
            proptest::collection::vec(-50i64..50, n),
        )
            .prop_map(|(keys, w)| {
                DataFrame::new(vec![
                    Column::source("r", "k", ColumnData::Int(keys)),
                    Column::source("r", "w", ColumnData::Int(w)),
                ])
                .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inner_join_parallel_matches_serial(left in arb_frame(), right in arb_right()) {
        assert_differential(|| ops::inner_join(&left, &right, "k"))?;
    }

    #[test]
    fn left_join_parallel_matches_serial(left in arb_frame(), right in arb_right()) {
        assert_differential(|| ops::left_join(&left, &right, "k"))?;
    }

    #[test]
    fn groupby_parallel_matches_serial(df in arb_frame()) {
        assert_differential(|| {
            ops::groupby_agg(&df, "k", &[("v", AggFn::Sum), ("v", AggFn::Mean), ("v", AggFn::Count)])
        })?;
    }

    #[test]
    fn groupby_str_keys_parallel_matches_serial(df in arb_frame()) {
        assert_differential(|| ops::groupby_agg(&df, "c", &[("v", AggFn::Sum)]))?;
    }

    #[test]
    fn map_parallel_matches_serial(df in arb_frame(), c in -5.0f64..5.0) {
        assert_differential(|| ops::map_column(&df, "v", &MapFn::AddConst(c), "v2"))?;
        assert_differential(|| ops::map_column(&df, "v", &MapFn::Log1p, "v3"))?;
        assert_differential(|| ops::binary_op(&df, "v", "k", BinFn::Mul, "vk"))?;
    }

    #[test]
    fn filter_parallel_matches_serial(df in arb_frame(), t in -50.0f64..50.0) {
        assert_differential(|| ops::filter(&df, &Predicate::gt_f("v", t)))?;
        assert_differential(|| ops::filter(&df, &Predicate::eq_i("k", 2)))?;
        assert_differential(|| ops::dropna(&df, &["v"]))?;
    }

    #[test]
    fn one_hot_parallel_matches_serial(df in arb_frame(), k in 1usize..4) {
        assert_differential(|| ops::one_hot(&df, "c", k))?;
        assert_differential(|| ops::label_encode(&df, "c"))?;
    }

    #[test]
    fn sort_and_sample_parallel_match_serial(df in arb_frame(), seed in 0u64..500) {
        assert_differential(|| ops::sort_by(&df, "k", true))?;
        let n = df.n_rows() / 2;
        assert_differential(|| ops::sample(&df, n, seed))?;
    }

    #[test]
    fn vconcat_parallel_matches_serial(df in arb_frame()) {
        assert_differential(|| ops::vconcat(&[&df, &df]))?;
    }

    #[test]
    fn stats_parallel_match_serial(df in arb_frame()) {
        if df.n_rows() > 0 {
            assert_differential(|| ops::describe(&df))?;
            assert_differential(|| ops::corr_matrix(&df))?;
        }
    }

    #[test]
    fn thread_count_does_not_matter(df in arb_frame(), threads in 2usize..8) {
        // Beyond serial-vs-4: any thread count gives the same bits.
        let base = par::with_config(1, usize::MAX, || {
            ops::groupby_agg(&df, "k", &[("v", AggFn::Sum)]).unwrap()
        });
        let multi = par::with_config(threads, 1, || {
            ops::groupby_agg(&df, "k", &[("v", AggFn::Sum)]).unwrap()
        });
        assert_frames_bit_identical(&base, &multi)?;
    }
}
