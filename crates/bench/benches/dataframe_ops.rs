//! Dataframe-substrate benchmarks: the operator costs that dominate the
//! Kaggle workloads' feature engineering (joins, group-bys, one-hot,
//! filters).

use co_dataframe::ops::{self, AggFn, Predicate};
use co_dataframe::{Column, ColumnData, DataFrame};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table(rows: usize, keys: i64) -> DataFrame {
    DataFrame::new(vec![
        Column::source(
            "bench",
            "sk_id",
            ColumnData::Int((0..rows).map(|i| i as i64 % keys).collect()),
        ),
        Column::source(
            "bench",
            "x",
            ColumnData::Float((0..rows).map(|i| (i as f64).sin()).collect()),
        ),
        Column::source(
            "bench",
            "cat",
            ColumnData::Str((0..rows).map(|i| format!("c{}", i % 8)).collect()),
        ),
    ])
    .expect("equal lengths")
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataframe_ops");
    group.sample_size(20);
    for &rows in &[10_000usize, 100_000] {
        let left = table(rows, (rows / 4) as i64);
        let right = table(rows / 2, (rows / 4) as i64);
        group.bench_with_input(BenchmarkId::new("inner_join", rows), &rows, |b, _| {
            b.iter(|| black_box(ops::inner_join(&left, &right, "sk_id").expect("joins")));
        });
        group.bench_with_input(BenchmarkId::new("groupby_mean", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(ops::groupby_agg(&left, "sk_id", &[("x", AggFn::Mean)]).expect("groups"))
            });
        });
        group.bench_with_input(BenchmarkId::new("filter", rows), &rows, |b, _| {
            b.iter(|| black_box(ops::filter(&left, &Predicate::gt_f("x", 0.0)).expect("filters")));
        });
        group.bench_with_input(BenchmarkId::new("one_hot", rows), &rows, |b, _| {
            b.iter(|| black_box(ops::one_hot(&left, "cat", 8).expect("encodes")));
        });
        group.bench_with_input(BenchmarkId::new("sort", rows), &rows, |b, _| {
            b.iter(|| black_box(ops::sort_by(&left, "x", true).expect("sorts")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
