//! ML-substrate benchmarks: trainer costs (the other half of workload
//! run time) and the epoch savings from warmstarting.

use co_ml::linear::{LogisticParams, LogisticRegression};
use co_ml::tree::{GbtParams, GradientBoosting, TreeParams};
use co_ml::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(rows: usize, cols: usize) -> (Matrix, Vec<f64>) {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| ((i * 2_654_435_761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let x = Matrix::from_vec(data, rows, cols).expect("shape");
    let y: Vec<f64> = (0..rows)
        .map(|i| {
            let row = x.row(i);
            f64::from(row[0] + 0.5 * row[1 % cols] > 0.0)
        })
        .collect();
    (x, y)
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml_models");
    group.sample_size(10);
    for &rows in &[2000usize, 10_000] {
        let (x, y) = dataset(rows, 20);
        // Strong L2 keeps the optimum at finite weights (the labels are a
        // deterministic function of x, i.e. separable).
        let logit_params = LogisticParams {
            max_iter: 50,
            tol: 1e-12,
            l2: 0.05,
            ..LogisticParams::default()
        };
        group.bench_with_input(BenchmarkId::new("logistic_cold", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    LogisticRegression::new(logit_params.clone())
                        .fit(&x, &y)
                        .expect("fits"),
                )
            });
        });
        // Warmstarted refit: starts near the optimum, converges in a few
        // epochs instead of running the full budget.
        let warm_src = LogisticRegression::new(LogisticParams {
            max_iter: 3000,
            tol: 1e-7,
            l2: 0.05,
            ..LogisticParams::default()
        })
        .fit(&x, &y)
        .expect("fits");
        let warm_params = LogisticParams {
            max_iter: 50,
            tol: 1e-4,
            l2: 0.05,
            ..LogisticParams::default()
        };
        group.bench_with_input(BenchmarkId::new("logistic_warm", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    LogisticRegression::new(warm_params.clone())
                        .fit_warm(&x, &y, Some(&warm_src))
                        .expect("fits"),
                )
            });
        });
        let gbt_params = GbtParams {
            n_estimators: 8,
            learning_rate: 0.25,
            tree: TreeParams {
                max_depth: 3,
                min_samples_leaf: 20,
                n_thresholds: 6,
            },
        };
        group.bench_with_input(BenchmarkId::new("gbt", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    GradientBoosting::new(gbt_params.clone())
                        .fit(&x, &y)
                        .expect("fits"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
