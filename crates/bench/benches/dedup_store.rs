//! Storage-manager benchmarks: column-deduplicated vs plain stores for
//! overlapping artifacts (the mechanism behind Figure 6's 8x packing).

use co_dataframe::ops::{self, MapFn};
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::{ArtifactId, StorageManager, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A chain of frames each sharing all-but-one column with its parent.
fn overlapping_chain(rows: usize, depth: usize) -> Vec<DataFrame> {
    let base = DataFrame::new(vec![Column::source(
        "bench",
        "c0",
        ColumnData::Float((0..rows).map(|i| i as f64).collect()),
    )])
    .expect("one column");
    let mut frames = vec![base];
    for d in 1..depth {
        let prev = frames.last().expect("nonempty");
        let next = ops::map_column(prev, "c0", &MapFn::AddConst(d as f64), &format!("c{d}"))
            .expect("maps");
        frames.push(next);
    }
    frames
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_manager");
    group.sample_size(20);
    for &rows in &[10_000usize, 100_000] {
        let frames = overlapping_chain(rows, 10);
        for (label, dedup) in [("dedup", true), ("plain", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("store_{label}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        let mut sm = StorageManager::new(dedup);
                        for (i, f) in frames.iter().enumerate() {
                            sm.store(ArtifactId(i as u64), &Value::dataset(f.clone()));
                        }
                        black_box(sm.unique_bytes())
                    });
                },
            );
        }
        // Retrieval with reassembly from the column store.
        let mut sm = StorageManager::new(true);
        for (i, f) in frames.iter().enumerate() {
            sm.store(ArtifactId(i as u64), &Value::dataset(f.clone()));
        }
        group.bench_with_input(BenchmarkId::new("get_dedup", rows), &rows, |b, _| {
            b.iter(|| black_box(sm.get(ArtifactId(9)).expect("stored")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
