//! Materialization-algorithm throughput (the updater-side overhead of
//! §5): one full selection pass over an Experiment Graph populated by the
//! Kaggle workloads.

use co_core::materialize::{
    GreedyMaterializer, HelixMaterializer, Materializer, StorageAwareMaterializer,
};
use co_core::server::{MaterializerKind, ReuseKind};
use co_core::{CostModel, OptimizerServer, ServerConfig};
use co_graph::{ArtifactId, ExperimentGraph, Value};
use co_workloads::data::{home_credit, HomeCreditScale};
use co_workloads::kaggle;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

/// Build an EG holding all eight workloads' artifacts plus their
/// contents, at test scale.
fn populated_eg(dedup: bool) -> (ExperimentGraph, HashMap<ArtifactId, Value>) {
    let data = home_credit(&HomeCreditScale::tiny());
    let srv = OptimizerServer::new(ServerConfig {
        budget: u64::MAX,
        alpha: 0.5,
        materializer: MaterializerKind::All,
        reuse: ReuseKind::Linear,
        cost: CostModel::memory(),
        warmstart: false,
        retry: co_core::RetryPolicy::default(),
        quarantine_after: Some(3),
        df_threads: None,
        shards: 1,
    });
    let mut available = HashMap::new();
    for dag in kaggle::all_workloads(&data).expect("builds") {
        let (executed, _) = srv.run_workload(dag).expect("runs");
        for node in executed.nodes() {
            if let Some(v) = &node.computed {
                available.insert(node.artifact, v.clone());
            }
        }
    }
    // Rebuild a fresh EG of the requested dedup mode from the artifacts.
    let mut eg = ExperimentGraph::new(dedup);
    for dag in kaggle::all_workloads(&data).expect("builds") {
        let (executed, _) = srv.run_workload(dag).expect("runs");
        eg.update_with_workload(&executed).expect("updates");
    }
    (eg, available)
}

fn bench_materializers(c: &mut Criterion) {
    let cost = CostModel::memory();
    let mut group = c.benchmark_group("materializers");
    group.sample_size(10);

    let (eg, available) = populated_eg(false);
    let budget = eg.total_artifact_bytes() / 8;
    group.bench_function("greedy_hm", |b| {
        b.iter_batched(
            || populated_eg(false).0,
            |mut eg| {
                GreedyMaterializer::new(budget).run(&mut eg, &available, &cost);
                black_box(eg.storage().n_artifacts())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("helix", |b| {
        b.iter_batched(
            || populated_eg(false).0,
            |mut eg| {
                HelixMaterializer { budget }.run(&mut eg, &available, &cost);
                black_box(eg.storage().n_artifacts())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("storage_aware", |b| {
        b.iter_batched(
            || populated_eg(true).0,
            |mut eg| {
                StorageAwareMaterializer::new(budget).run(&mut eg, &available, &cost);
                black_box(eg.storage().n_artifacts())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
    drop(eg);
}

criterion_group!(benches, bench_materializers);
criterion_main!(benches);
