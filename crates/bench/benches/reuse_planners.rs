//! Microbenchmark behind Figure 9(d): planning time of the linear-time
//! reuse algorithm vs the Helix max-flow baseline as workload DAGs grow.

use co_core::optimizer::{AllMaterializedReuse, HelixReuse, LinearReuse, ReusePlanner};
use co_core::CostModel;
use co_workloads::synthetic::{synthetic_workload, SyntheticConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_planners(c: &mut Criterion) {
    let cost = CostModel::memory();
    let mut group = c.benchmark_group("reuse_planning");
    group.sample_size(10);
    for nodes in [500usize, 1000, 2000] {
        let config = SyntheticConfig {
            n_nodes_min: nodes,
            n_nodes_max: nodes,
            ..SyntheticConfig::default()
        };
        let (dag, eg) = synthetic_workload(&config, 1).expect("generates");
        group.bench_with_input(BenchmarkId::new("LN", nodes), &nodes, |b, _| {
            b.iter(|| black_box(LinearReuse.plan(&dag, &eg, &cost)));
        });
        group.bench_with_input(BenchmarkId::new("HL_maxflow", nodes), &nodes, |b, _| {
            b.iter(|| black_box(HelixReuse.plan(&dag, &eg, &cost)));
        });
        group.bench_with_input(BenchmarkId::new("ALL_M", nodes), &nodes, |b, _| {
            b.iter(|| black_box(AllMaterializedReuse.plan(&dag, &eg, &cost)));
        });
    }
    group.finish();
}

/// Ablation: the same DAG planned under memory/disk/remote load-cost
/// models. As loads get slower, LN's plan diverges from ALL_M's
/// (load-everything) — the paper's §7.4 remark that "LN and HL outperform
/// ALL_M with a larger margin in scenarios where EG is on disk". The
/// bench reports planning time; the plan-quality gap is printed once.
fn bench_costmodel(c: &mut Criterion) {
    let config = SyntheticConfig {
        n_nodes_min: 1000,
        n_nodes_max: 1000,
        ..SyntheticConfig::default()
    };
    let (dag, eg) = synthetic_workload(&config, 3).expect("generates");
    let mut group = c.benchmark_group("reuse_costmodel");
    group.sample_size(20);
    for (label, cost) in [
        ("memory", CostModel::memory()),
        ("disk", CostModel::disk()),
        ("remote", CostModel::remote()),
    ] {
        // One-off plan-quality comparison, printed alongside the bench.
        let ln = LinearReuse.plan(&dag, &eg, &cost);
        let all_m = AllMaterializedReuse.plan(&dag, &eg, &cost);
        let ln_cost = co_core::optimizer::plan_execution_cost(&dag, &eg, &cost, &ln);
        let all_cost = co_core::optimizer::plan_execution_cost(&dag, &eg, &cost, &all_m);
        println!(
            "reuse_costmodel/{label}: LN plan {ln_cost:.3}s vs ALL_M {all_cost:.3}s \
             ({:.2}x worse to load everything)",
            all_cost / ln_cost.max(1e-12)
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(LinearReuse.plan(&dag, &eg, &cost)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planners, bench_costmodel);
criterion_main!(benches);
