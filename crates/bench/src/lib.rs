//! # co-bench
//!
//! The benchmark harness: one module (and one binary) per table/figure of
//! the paper's evaluation (§7), plus Criterion microbenchmarks under
//! `benches/`.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1`  | Table 1 — workload artifact counts and sizes |
//! | `figure4` | repeated executions of W1–W3 under CO/HL/KG |
//! | `figure5` | cumulative run time of W1–W8 under CO/KG/HL |
//! | `figure6` | real materialized size per budget and materializer |
//! | `figure7` | total run time and speedup per materializer/budget |
//! | `figure8` | model-benchmarking: CO vs OML, and the α sweep |
//! | `figure9` | reuse comparison and LN-vs-HL planner overhead |
//! | `figure10`| warmstarting: run time and cumulative Δ accuracy |
//! | `run_all` | everything above |
//!
//! Each run prints its series and writes TSV files under
//! `target/figures/`. Pass `--full` for paper-scale workload counts
//! (e.g. 10 000 synthetic DAGs, 2000 OpenML pipelines); the default is a
//! faster configuration with the same shape.

#![forbid(unsafe_code)]

pub mod figures;

use std::fs;
use std::path::PathBuf;

/// Output directory for TSV series (`target/figures`).
#[must_use]
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("can create target/figures");
    dir
}

/// Write a TSV file under [`out_dir`] and echo its path.
pub fn write_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut text = header.join("\t");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join("\t"));
        text.push('\n');
    }
    let path = out_dir().join(name);
    fs::write(&path, text).expect("can write TSV");
    println!("  -> wrote {}", path.display());
}

/// Write a JSON file under [`out_dir`] and echo its path. The harness
/// emits `BENCH_*.json` files so successive revisions can track
/// performance trajectories.
pub fn write_json(name: &str, text: &str) {
    let path = out_dir().join(name);
    fs::write(&path, text).expect("can write JSON");
    println!("  -> wrote {}", path.display());
}

/// True when `--full` was passed (paper-scale run counts).
#[must_use]
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The budget grid: the paper's {8, 16, 32, 64} GB out of a ~130 GB ALL
/// footprint, expressed as fractions of our measured footprint.
pub const BUDGET_GRID: [(&str, f64); 4] = [
    ("8GB", 0.0625),
    ("16GB", 0.125),
    ("32GB", 0.25),
    ("64GB", 0.5),
];

/// Render seconds with 3 decimals.
#[must_use]
pub fn s3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_exists_and_tsv_written() {
        write_tsv("selftest.tsv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = fs::read_to_string(out_dir().join("selftest.tsv")).unwrap();
        assert_eq!(text, "a\tb\n1\t2\n");
    }
}
