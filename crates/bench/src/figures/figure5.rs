//! Figure 5: cumulative run time of the eight Kaggle workloads executed
//! in sequence under CO, KG, and HL. The reproduced shape: CO well below
//! KG (the paper reports ~50% cumulative saving), HL in between.

use crate::{s3, write_tsv, BUDGET_GRID};
use co_core::server::{MaterializerKind, ReuseKind};
use co_workloads::kaggle;
use co_workloads::runner::{cumulative_run_times, run_sequence};

/// Run and print Figure 5.
pub fn run() {
    println!("== Figure 5: cumulative run time, Workloads 1-8 in sequence ==");
    let data = super::bench_data();
    let footprint = super::all_footprint(&data);
    let budget = (footprint as f64 * BUDGET_GRID[1].1) as u64;

    let mut series = Vec::new();
    for (label, materializer, reuse) in [
        ("CO", MaterializerKind::StorageAware, ReuseKind::Linear),
        ("KG", MaterializerKind::None, ReuseKind::None),
        ("HL", MaterializerKind::Helix, ReuseKind::Helix),
    ] {
        let srv = super::server(materializer, reuse, budget);
        let reports =
            run_sequence(&srv, kaggle::all_workloads(&data).expect("builds")).expect("runs");
        super::assert_graph_clean(&srv);
        series.push((label, cumulative_run_times(&reports)));
    }

    println!("workload   CO(s)     KG(s)     HL(s)");
    let mut rows = Vec::new();
    for i in 0..8 {
        println!(
            "W{}       {:>7.3}   {:>7.3}   {:>7.3}",
            i + 1,
            series[0].1[i],
            series[1].1[i],
            series[2].1[i]
        );
        rows.push(vec![
            format!("W{}", i + 1),
            s3(series[0].1[i]),
            s3(series[1].1[i]),
            s3(series[2].1[i]),
        ]);
    }
    let saving = (1.0 - series[0].1[7] / series[1].1[7]) * 100.0;
    println!("CO saves {saving:.0}% of the cumulative run time vs KG");
    write_tsv("figure5.tsv", &["workload", "co_s", "kg_s", "hl_s"], &rows);
}
