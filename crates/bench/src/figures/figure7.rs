//! Figure 7: (a) total run time of the eight-workload sequence per
//! materializer and budget; (b) cumulative speedup vs the KG baseline for
//! SA and HL at the two smaller budgets plus ALL. Reproduced shape: SA
//! tracks ALL even at small budgets; HL only slightly beats the baseline.

use crate::{s3, write_tsv, BUDGET_GRID};
use co_core::server::{MaterializerKind, ReuseKind};
use co_workloads::kaggle;
use co_workloads::runner::{cumulative_run_times, run_sequence};

fn sequence_cumulative(
    data: &co_workloads::data::HomeCredit,
    materializer: MaterializerKind,
    reuse: ReuseKind,
    budget: u64,
) -> Vec<f64> {
    let srv = super::server(materializer, reuse, budget);
    let reports = run_sequence(&srv, kaggle::all_workloads(data).expect("builds")).expect("runs");
    super::assert_graph_clean(&srv);
    cumulative_run_times(&reports)
}

/// Run and print Figure 7.
pub fn run() {
    println!("== Figure 7: total run time and speedup per materializer ==");
    let data = super::bench_data();
    let footprint = super::all_footprint(&data);

    // (a) total run time per budget.
    println!("\n(a) total run time of W1-8 (s)");
    println!("budget    SA       HM       HL       ALL");
    let mut rows_a = Vec::new();
    let mut kept: Vec<(String, Vec<f64>)> = Vec::new(); // for (b)
    for (budget_label, fraction) in BUDGET_GRID {
        let budget = (footprint as f64 * fraction) as u64;
        let mut totals = Vec::new();
        for (label, materializer, reuse) in [
            ("SA", MaterializerKind::StorageAware, ReuseKind::Linear),
            ("HM", MaterializerKind::Greedy, ReuseKind::Linear),
            ("HL", MaterializerKind::Helix, ReuseKind::Helix),
            ("ALL", MaterializerKind::All, ReuseKind::Linear),
        ] {
            let cumulative = sequence_cumulative(&data, materializer, reuse, budget);
            totals.push(*cumulative.last().expect("8 workloads"));
            if matches!(
                (label, budget_label),
                ("SA", "8GB") | ("SA", "16GB") | ("HL", "8GB") | ("HL", "16GB")
            ) {
                kept.push((format!("{label}-{budget_label}"), cumulative));
            } else if label == "ALL" && budget_label == "8GB" {
                kept.push(("ALL".to_owned(), cumulative));
            }
        }
        println!(
            "{budget_label:<8} {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}",
            totals[0], totals[1], totals[2], totals[3]
        );
        rows_a.push(vec![
            budget_label.to_owned(),
            s3(totals[0]),
            s3(totals[1]),
            s3(totals[2]),
            s3(totals[3]),
        ]);
    }
    write_tsv(
        "figure7a.tsv",
        &["budget", "sa_s", "hm_s", "hl_s", "all_s"],
        &rows_a,
    );

    // (b) cumulative speedup vs KG.
    let kg = sequence_cumulative(&data, MaterializerKind::None, ReuseKind::None, 0);
    println!("\n(b) cumulative speedup vs KG");
    let labels: Vec<&str> = kept.iter().map(|(l, _)| l.as_str()).collect();
    println!("workload  {}", labels.join("  "));
    let mut rows_b = Vec::new();
    for i in 0..8 {
        let speedups: Vec<f64> = kept.iter().map(|(_, c)| kg[i] / c[i]).collect();
        let rendered: Vec<String> = speedups.iter().map(|s| format!("{s:>7.2}")).collect();
        println!("W{}       {}", i + 1, rendered.join("  "));
        let mut row = vec![format!("W{}", i + 1)];
        row.extend(speedups.iter().map(|s| format!("{s:.3}")));
        rows_b.push(row);
    }
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(labels.iter());
    write_tsv("figure7b.tsv", &header, &rows_b);
}
