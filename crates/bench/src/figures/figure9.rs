//! Figure 9: reuse-algorithm comparison.
//!
//! (a)/(b): cumulative run time of the Kaggle sequence for the four reuse
//! strategies (LN, HL, ALL_M, ALL_C) under the heuristics-based and
//! storage-aware materializers. (c): cumulative speedup vs ALL_C under
//! SA. (d): the planner-overhead scaling study — LN vs HL (Edmonds–Karp)
//! across thousands of synthetic workloads; the paper reports a 40x gap
//! at 10 000 workloads.

use crate::{full_scale, s3, write_tsv, BUDGET_GRID};
use co_core::optimizer::{HelixReuse, LinearReuse, ReusePlanner};
use co_core::server::{MaterializerKind, ReuseKind};
use co_core::CostModel;
use co_workloads::kaggle;
use co_workloads::runner::{cumulative_run_times, run_sequence};
use co_workloads::synthetic::{synthetic_workload, SyntheticConfig};
use std::time::Instant;

const REUSES: [(&str, ReuseKind); 4] = [
    ("LN", ReuseKind::Linear),
    ("HL", ReuseKind::Helix),
    ("ALL_M", ReuseKind::AllMaterialized),
    ("ALL_C", ReuseKind::None),
];

fn panel(
    data: &co_workloads::data::HomeCredit,
    materializer: MaterializerKind,
    budget: u64,
) -> Vec<(&'static str, Vec<f64>)> {
    REUSES
        .iter()
        .map(|(label, reuse)| {
            let srv = super::server(materializer, *reuse, budget);
            let reports =
                run_sequence(&srv, kaggle::all_workloads(data).expect("builds")).expect("runs");
            super::assert_graph_clean(&srv);
            (*label, cumulative_run_times(&reports))
        })
        .collect()
}

fn print_panel(name: &str, series: &[(&'static str, Vec<f64>)], rows: &mut Vec<Vec<String>>) {
    println!("\n({name}) workload   LN(s)    HL(s)    ALL_M(s)  ALL_C(s)");
    for i in 0..8 {
        println!(
            "    W{}        {:>7.3}  {:>7.3}  {:>7.3}   {:>7.3}",
            i + 1,
            series[0].1[i],
            series[1].1[i],
            series[2].1[i],
            series[3].1[i]
        );
        rows.push(vec![
            name.to_owned(),
            format!("W{}", i + 1),
            s3(series[0].1[i]),
            s3(series[1].1[i]),
            s3(series[2].1[i]),
            s3(series[3].1[i]),
        ]);
    }
}

/// Run and print Figure 9.
pub fn run() {
    println!("== Figure 9: reuse methods ==");
    let data = super::bench_data();
    let footprint = super::all_footprint(&data);
    let budget = (footprint as f64 * BUDGET_GRID[1].1) as u64;

    let mut rows = Vec::new();
    let hm = panel(&data, MaterializerKind::Greedy, budget);
    print_panel("a:heuristics-based", &hm, &mut rows);
    let sa = panel(&data, MaterializerKind::StorageAware, budget);
    print_panel("b:storage-aware", &sa, &mut rows);
    write_tsv(
        "figure9ab.tsv",
        &["panel", "workload", "ln_s", "hl_s", "all_m_s", "all_c_s"],
        &rows,
    );

    // (c) speedup vs ALL_C under SA.
    println!("\n(c) cumulative speedup vs ALL_C (storage-aware)");
    let all_c = &sa[3].1;
    let mut rows = Vec::new();
    for i in 0..8 {
        let speedups: Vec<f64> = sa[..3].iter().map(|(_, c)| all_c[i] / c[i]).collect();
        println!(
            "    W{}   LN {:.2}   HL {:.2}   ALL_M {:.2}",
            i + 1,
            speedups[0],
            speedups[1],
            speedups[2]
        );
        rows.push(vec![
            format!("W{}", i + 1),
            format!("{:.3}", speedups[0]),
            format!("{:.3}", speedups[1]),
            format!("{:.3}", speedups[2]),
        ]);
    }
    write_tsv("figure9c.tsv", &["workload", "ln", "hl", "all_m"], &rows);

    // (d) planner overhead on synthetic workloads.
    let n = if full_scale() { 10_000 } else { 1000 };
    println!("\n(d) reuse overhead, {n} synthetic workloads (500-2000 nodes)");
    let config = SyntheticConfig::default();
    let cost = CostModel::memory();
    let mut ln_cumulative = 0.0;
    let mut hl_cumulative = 0.0;
    let mut rows = Vec::new();
    let checkpoints: Vec<usize> = [1usize, 10, 100, 1000, 10_000]
        .iter()
        .copied()
        .filter(|&c| c <= n)
        .collect();
    for idx in 0..n {
        let (dag, eg) = synthetic_workload(&config, idx as u64).expect("generates");
        let start = Instant::now();
        let ln_plan = LinearReuse.plan(&dag, &eg, &cost);
        ln_cumulative += start.elapsed().as_secs_f64();
        let start = Instant::now();
        let hl_plan = HelixReuse.plan(&dag, &eg, &cost);
        hl_cumulative += start.elapsed().as_secs_f64();
        // The plans must agree on cost-optimality direction.
        debug_assert!(hl_plan.estimated_cost <= ln_plan.estimated_cost + 1e-6);
        let _ = (ln_plan, hl_plan);
        if checkpoints.contains(&(idx + 1)) {
            println!(
                "    after {:>6} workloads: LN {:.3}s, HL {:.3}s ({:.0}x)",
                idx + 1,
                ln_cumulative,
                hl_cumulative,
                hl_cumulative / ln_cumulative.max(1e-12)
            );
            rows.push(vec![
                (idx + 1).to_string(),
                format!("{ln_cumulative:.4}"),
                format!("{hl_cumulative:.4}"),
            ]);
        }
    }
    println!(
        "    total: LN {ln_cumulative:.2}s vs HL {hl_cumulative:.2}s ({:.0}x overhead ratio)",
        hl_cumulative / ln_cumulative.max(1e-12)
    );
    rows.push(vec![
        n.to_string(),
        format!("{ln_cumulative:.4}"),
        format!("{hl_cumulative:.4}"),
    ]);
    write_tsv(
        "figure9d.tsv",
        &["n_workloads", "ln_cum_s", "hl_cum_s"],
        &rows,
    );
}
