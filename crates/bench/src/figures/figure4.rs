//! Figure 4: repeated executions of Workloads 1–3. Each workload runs
//! twice against a fresh system; the paper's shape — run 2 an order of
//! magnitude faster under CO (and HL), run 1 comparable to KG or better
//! thanks to intra-workload redundancy elimination — should reproduce.

use crate::{s3, write_tsv, BUDGET_GRID};
use co_core::server::{MaterializerKind, ReuseKind};
use co_workloads::kaggle;

/// Run and print Figure 4.
pub fn run() {
    println!("== Figure 4: repeated execution of Workloads 1-3 ==");
    let data = super::bench_data();
    println!("measuring the ALL-materialization footprint for the budget...");
    let footprint = super::all_footprint(&data);
    // The paper's 16 GB budget roughly equals W1's artifact footprint and
    // is ~1/5 of W3's; our workload-size ratios differ slightly, so the
    // 25% grid point reproduces those relations (W1 fits, W3 is ~3x over).
    let budget = (footprint as f64 * BUDGET_GRID[2].1) as u64;
    println!(
        "footprint = {:.1} MB, budget = {:.1} MB",
        footprint as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64
    );

    let builders: [fn(&co_workloads::data::HomeCredit) -> co_graph::Result<co_graph::WorkloadDag>;
        3] = [kaggle::w1, kaggle::w2, kaggle::w3];
    let mut rows = Vec::new();
    println!("workload  system  run1(s)  run2(s)");
    for (i, build) in builders.iter().enumerate() {
        for (label, materializer, reuse) in [
            ("CO", MaterializerKind::StorageAware, ReuseKind::Linear),
            ("HL", MaterializerKind::Helix, ReuseKind::Helix),
            ("KG", MaterializerKind::None, ReuseKind::None),
        ] {
            let srv = super::server(materializer, reuse, budget);
            let (_, first) = srv
                .run_workload(build(&data).expect("builds"))
                .expect("runs");
            let (_, second) = srv
                .run_workload(build(&data).expect("builds"))
                .expect("runs");
            super::assert_graph_clean(&srv);
            println!(
                "W{}        {label}     {:>7.3}  {:>7.3}",
                i + 1,
                first.run_seconds(),
                second.run_seconds()
            );
            rows.push(vec![
                format!("W{}", i + 1),
                label.to_owned(),
                s3(first.run_seconds()),
                s3(second.run_seconds()),
            ]);
        }
    }
    write_tsv(
        "figure4.tsv",
        &["workload", "system", "run1_s", "run2_s"],
        &rows,
    );
}
