//! Figure 10: warmstarting over the OpenML workload stream.
//!
//! (a) cumulative run time of CO with warmstarting (CO+W), the baseline
//! (OML), and CO without warmstarting (CO−W). Reproduced shape: CO−W ≈
//! OML (the data transforms are milliseconds); CO+W clearly faster
//! because training dominates and warmstarted trainers stop early.
//!
//! (b) cumulative Δ accuracy (test score) between CO+W and OML: positive
//! and growing, because iteration-capped trainers end closer to the
//! optimum when initialised from a good model.

use crate::{full_scale, write_tsv};
use co_core::{OptimizerServer, ServerConfig};
use co_workloads::data::creditg;
use co_workloads::openml::pipeline;
use co_workloads::runner::terminal_eval_score;

struct StreamResult {
    cumulative_s: Vec<f64>,
    scores: Vec<f64>,
    warmstarts: usize,
}

fn run_stream(
    server: &OptimizerServer,
    data: &co_workloads::data::CreditG,
    n: usize,
) -> StreamResult {
    let mut cumulative_s = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut total = 0.0;
    let mut warmstarts = 0;
    for i in 0..n {
        let (dag, report) = server
            .run_workload(pipeline(data, i as u64, 53).expect("builds"))
            .expect("runs");
        total += report.run_seconds();
        warmstarts += report.warmstarts;
        cumulative_s.push(total);
        scores.push(terminal_eval_score(&dag).unwrap_or(0.0));
    }
    super::assert_graph_clean(server);
    StreamResult {
        cumulative_s,
        scores,
        warmstarts,
    }
}

/// Run and print Figure 10.
pub fn run() {
    let n = if full_scale() { 2000 } else { 400 };
    println!("== Figure 10: warmstarting ({n} OpenML workloads) ==");
    let data = creditg(1000, 0);

    println!("running CO+W (collaborative, warmstart on)...");
    let mut config = ServerConfig::collaborative(100 << 20);
    config.warmstart = true;
    let co_w = run_stream(&OptimizerServer::new(config), &data, n);
    println!("  {} training operations warmstarted", co_w.warmstarts);

    println!("running OML (baseline)...");
    let oml = run_stream(&OptimizerServer::new(ServerConfig::baseline()), &data, n);

    println!("running CO-W (collaborative, warmstart off)...");
    let co_nw = run_stream(
        &OptimizerServer::new(ServerConfig::collaborative(100 << 20)),
        &data,
        n,
    );

    println!(
        "\n(a) cumulative run time: CO+W {:.2}s, OML {:.2}s, CO-W {:.2}s ({:.1}x from warmstarting)",
        co_w.cumulative_s.last().unwrap(),
        oml.cumulative_s.last().unwrap(),
        co_nw.cumulative_s.last().unwrap(),
        co_nw.cumulative_s.last().unwrap() / co_w.cumulative_s.last().unwrap().max(1e-12)
    );

    // (b) cumulative score delta. NOTE: with reuse enabled, a repeated
    // identical pipeline would load the same model; pipelines here are
    // distinct, so every Δ comes from warmstarting.
    let delta: Vec<f64> = co_w
        .scores
        .iter()
        .zip(&oml.scores)
        .scan(0.0, |acc, (w, o)| {
            *acc += w - o;
            Some(*acc)
        })
        .collect();
    println!(
        "(b) cumulative delta accuracy after {n} workloads: {:.3} (avg {:+.5} per workload)",
        delta.last().unwrap(),
        delta.last().unwrap() / n as f64
    );

    let rows: Vec<Vec<String>> = (0..n)
        .step_by((n / 100).max(1))
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.4}", co_w.cumulative_s[i]),
                format!("{:.4}", oml.cumulative_s[i]),
                format!("{:.4}", co_nw.cumulative_s[i]),
                format!("{:.5}", delta[i]),
            ]
        })
        .collect();
    write_tsv(
        "figure10.tsv",
        &[
            "workload",
            "co_w_cum_s",
            "oml_cum_s",
            "co_nw_cum_s",
            "cum_delta_acc",
        ],
        &rows,
    );
}
