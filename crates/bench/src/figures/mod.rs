//! One module per reproduced table/figure.

pub mod figure10;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod table1;

use co_core::server::{MaterializerKind, ReuseKind};
use co_core::{CostModel, OptimizerServer, ServerConfig};
use co_workloads::data::{home_credit, HomeCredit, HomeCreditScale};
use co_workloads::kaggle;

/// The Kaggle data scale used by the harnesses.
#[must_use]
pub fn bench_scale() -> HomeCreditScale {
    HomeCreditScale::default()
}

/// Generate the benchmark dataset (deterministic).
#[must_use]
pub fn bench_data() -> HomeCredit {
    home_credit(&bench_scale())
}

/// Build a server with an explicit materializer/reuse combination.
#[must_use]
pub fn server(materializer: MaterializerKind, reuse: ReuseKind, budget: u64) -> OptimizerServer {
    OptimizerServer::new(ServerConfig {
        budget,
        alpha: 0.5,
        materializer,
        reuse,
        cost: CostModel::memory(),
        warmstart: false,
        retry: co_core::RetryPolicy::default(),
        quarantine_after: Some(3),
        df_threads: None,
        shards: 1,
    })
}

/// Run egfsck over a driver's Experiment Graph after its workload
/// sequence: a figure must never be plotted off a graph that broke an
/// invariant. Panics with the full violation report.
pub fn assert_graph_clean(server: &OptimizerServer) {
    let report = co_graph::fsck::check_graph(&server.eg());
    assert!(report.is_clean(), "egfsck after bench run: {report}");
}

/// The footprint materializing *everything* would occupy: the analogue of
/// the paper's "130 GB of artifacts", measured by running the full
/// sequence against an ALL-materializing server.
pub fn all_footprint(data: &HomeCredit) -> u64 {
    let srv = server(MaterializerKind::All, ReuseKind::Linear, u64::MAX);
    for dag in kaggle::all_workloads(data).expect("workloads build") {
        srv.run_workload(dag).expect("workload runs");
    }
    let (_, _, logical) = srv.storage_stats();
    logical
}
