//! Figure 8: the effect of model quality on materialization.
//!
//! (a) The model-benchmarking scenario over the OpenML pipeline stream:
//! cumulative run time of CO (storage-aware, α = 0.5) vs the OML baseline
//! that re-executes the gold standard from scratch. Reproduced shape:
//! CO several times faster.
//!
//! (b) With the budget restricted to **one artifact**, sweep
//! α ∈ {0, 0.1, 0.25, 0.5, 0.75, 0.9}: the cumulative-run-time *delta*
//! against α = 1 (which always materializes the gold model). Reproduced
//! shape: larger α materializes the gold standard sooner and plateaus
//! earlier/lower.

use crate::{full_scale, write_tsv};
use co_core::server::{MaterializerKind, ReuseKind};
use co_core::{CostModel, OptimizerServer, ServerConfig};
use co_workloads::data::creditg;
use co_workloads::openml::model_benchmark_scenario;

fn scenario_cumulative(
    server: &OptimizerServer,
    data: &co_workloads::data::CreditG,
    n: usize,
) -> Vec<f64> {
    let steps = model_benchmark_scenario(server, data, n, 31).expect("scenario runs");
    super::assert_graph_clean(server);
    steps
        .iter()
        .scan(0.0, |acc, s| {
            *acc += s.run_seconds;
            Some(*acc)
        })
        .collect()
}

/// Run and print Figure 8.
pub fn run() {
    let n = if full_scale() { 2000 } else { 400 };
    println!("== Figure 8: quality-based materialization ({n} OpenML workloads) ==");
    let data = creditg(1000, 0);

    // (a) CO vs OML.
    let co = OptimizerServer::new(ServerConfig {
        budget: 100 << 20, // the paper's 100 MB OpenML budget
        ..ServerConfig::collaborative(0)
    });
    let oml = OptimizerServer::new(ServerConfig::baseline());
    println!("(a) running CO...");
    let co_cum = scenario_cumulative(&co, &data, n);
    println!("(a) running OML...");
    let oml_cum = scenario_cumulative(&oml, &data, n);
    let improvement = oml_cum.last().unwrap() / co_cum.last().unwrap().max(1e-12);
    println!(
        "(a) cumulative: CO {:.2}s vs OML {:.2}s ({improvement:.1}x)",
        co_cum.last().unwrap(),
        oml_cum.last().unwrap()
    );
    let rows: Vec<Vec<String>> = (0..n)
        .step_by((n / 100).max(1))
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.4}", co_cum[i]),
                format!("{:.4}", oml_cum[i]),
            ]
        })
        .collect();
    write_tsv(
        "figure8a.tsv",
        &["workload", "co_cum_s", "oml_cum_s"],
        &rows,
    );

    // (b) alpha sweep with a one-artifact budget.
    println!("(b) alpha sweep (budget = one artifact)...");
    let alphas = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut curves = Vec::new();
    for &alpha in &alphas {
        let server = OptimizerServer::new(ServerConfig {
            budget: u64::MAX,
            alpha,
            materializer: MaterializerKind::GreedyCapped(1),
            reuse: ReuseKind::Linear,
            cost: CostModel::memory(),
            warmstart: false,
            retry: co_core::RetryPolicy::default(),
            quarantine_after: Some(3),
            df_threads: None,
            shards: 1,
        });
        let cum = scenario_cumulative(&server, &data, n);
        println!(
            "    alpha={alpha:<4} cumulative {:.2}s",
            cum.last().unwrap()
        );
        curves.push(cum);
    }
    let reference = curves.last().expect("alpha=1 curve").clone();
    let mut rows = Vec::new();
    for i in (0..n).step_by((n / 100).max(1)) {
        let mut row = vec![i.to_string()];
        for curve in &curves[..curves.len() - 1] {
            row.push(format!("{:.4}", curve[i] - reference[i]));
        }
        rows.push(row);
    }
    write_tsv(
        "figure8b.tsv",
        &[
            "workload", "d_a0.0", "d_a0.1", "d_a0.25", "d_a0.5", "d_a0.75", "d_a0.9",
        ],
        &rows,
    );
    println!(
        "(b) final deltas to alpha=1: {:?}",
        curves[..curves.len() - 1]
            .iter()
            .map(|c| (c.last().unwrap() - reference.last().unwrap()) as f32)
            .collect::<Vec<_>>()
    );
}
