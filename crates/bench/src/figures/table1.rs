//! Table 1: per-workload artifact counts (`N`) and total artifact sizes
//! (`S`), with the paper's reported values alongside for shape
//! comparison (the reproduction runs ~3x smaller workloads on MB-scale
//! data; the *relative* ordering — W2/W3 largest, W4 smallest — is the
//! reproduced property).

use crate::{s3, write_tsv};
use co_core::server::{MaterializerKind, ReuseKind};
use co_workloads::kaggle;

/// Paper values: (N artifacts, S in GB).
const PAPER: [(u64, f64); 8] = [
    (397, 14.5),
    (406, 25.0),
    (146, 83.5),
    (280, 10.0),
    (402, 13.8),
    (121, 21.0),
    (145, 83.0),
    (341, 21.1),
];

/// Run and print Table 1.
pub fn run() {
    println!("== Table 1: Kaggle workload artifact counts and sizes ==");
    let data = super::bench_data();
    let mut rows = Vec::new();
    println!("workload  N(ours)  S(ours MB)  exec(s)   N(paper)  S(paper GB)");
    for (i, dag) in kaggle::all_workloads(&data)
        .expect("workloads build")
        .into_iter()
        .enumerate()
    {
        // A fresh baseline server per workload: measure it in isolation.
        let srv = super::server(MaterializerKind::None, ReuseKind::None, 0);
        let (executed, report) = srv.run_workload(dag).expect("workload runs");
        super::assert_graph_clean(&srv);
        let n = executed.n_nodes();
        let size_mb = executed.total_size() as f64 / (1 << 20) as f64;
        let (paper_n, paper_s) = PAPER[i];
        println!(
            "W{}        {:>5}    {:>8.1}   {:>7.3}   {:>6}    {:>8.1}",
            i + 1,
            n,
            size_mb,
            report.run_seconds(),
            paper_n,
            paper_s
        );
        rows.push(vec![
            format!("W{}", i + 1),
            n.to_string(),
            format!("{size_mb:.2}"),
            s3(report.run_seconds()),
            paper_n.to_string(),
            format!("{paper_s}"),
        ]);
    }
    write_tsv(
        "table1.tsv",
        &[
            "workload",
            "n_artifacts",
            "size_mb",
            "exec_s",
            "paper_n",
            "paper_s_gb",
        ],
        &rows,
    );
}
