//! Figure 6: the *real* (logical) size of the materialized artifacts
//! after each workload, for four budgets and four materializers. The
//! reproduced shape: HM/HL stay at or below the budget; SA's
//! deduplication stores a logical footprint a multiple of the budget
//! (the paper reports up to 8x), approaching ALL for larger budgets.

use crate::{write_tsv, BUDGET_GRID};
use co_core::server::{MaterializerKind, ReuseKind};
use co_workloads::kaggle;

/// Run and print Figure 6.
pub fn run() {
    println!("== Figure 6: real size of materialized artifacts ==");
    let data = super::bench_data();
    let footprint = super::all_footprint(&data);
    println!(
        "ALL footprint = {:.1} MB",
        footprint as f64 / (1 << 20) as f64
    );

    let mut rows = Vec::new();
    for (budget_label, fraction) in BUDGET_GRID {
        let budget = (footprint as f64 * fraction) as u64;
        println!(
            "\n-- budget {budget_label} ({:.1} MB) --",
            budget as f64 / (1 << 20) as f64
        );
        println!("workload   SA(MB)   HM(MB)   HL(MB)   ALL(MB)");
        let mut per_system: Vec<Vec<f64>> = Vec::new();
        for (materializer, reuse) in [
            (MaterializerKind::StorageAware, ReuseKind::Linear),
            (MaterializerKind::Greedy, ReuseKind::Linear),
            (MaterializerKind::Helix, ReuseKind::Helix),
            (MaterializerKind::All, ReuseKind::Linear),
        ] {
            let srv = super::server(materializer, reuse, budget);
            let mut sizes = Vec::new();
            for dag in kaggle::all_workloads(&data).expect("builds") {
                srv.run_workload(dag).expect("runs");
                let (_, _, logical) = srv.storage_stats();
                sizes.push(logical as f64 / (1 << 20) as f64);
            }
            super::assert_graph_clean(&srv);
            per_system.push(sizes);
        }
        #[allow(clippy::needless_range_loop)] // lint:reason four parallel series
        for i in 0..8 {
            println!(
                "W{}       {:>7.1}  {:>7.1}  {:>7.1}  {:>7.1}",
                i + 1,
                per_system[0][i],
                per_system[1][i],
                per_system[2][i],
                per_system[3][i]
            );
            rows.push(vec![
                budget_label.to_owned(),
                format!("W{}", i + 1),
                format!("{:.2}", per_system[0][i]),
                format!("{:.2}", per_system[1][i]),
                format!("{:.2}", per_system[2][i]),
                format!("{:.2}", per_system[3][i]),
            ]);
        }
        let ratio = per_system[0][7] / (footprint as f64 * fraction / (1 << 20) as f64);
        println!("SA stores {ratio:.1}x its budget (logical/budget)");
    }
    write_tsv(
        "figure6.tsv",
        &["budget", "workload", "sa_mb", "hm_mb", "hl_mb", "all_mb"],
        &rows,
    );
}
