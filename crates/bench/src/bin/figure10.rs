//! Regenerate the paper's figure10 (see `co_bench::figures::figure10`).
fn main() {
    co_bench::figures::figure10::run();
}
