//! Regenerate every table and figure in one run; TSV series land in
//! `target/figures/`.
fn main() {
    let start = std::time::Instant::now();
    co_bench::figures::table1::run();
    co_bench::figures::figure4::run();
    co_bench::figures::figure5::run();
    co_bench::figures::figure6::run();
    co_bench::figures::figure7::run();
    co_bench::figures::figure8::run();
    co_bench::figures::figure9::run();
    co_bench::figures::figure10::run();
    println!(
        "\nall figures regenerated in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
