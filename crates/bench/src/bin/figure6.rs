//! Regenerate the paper's figure6 (see `co_bench::figures::figure6`).
fn main() {
    co_bench::figures::figure6::run();
}
