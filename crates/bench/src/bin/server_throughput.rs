//! Multi-client server throughput: workloads/sec at 1–64 submitter
//! threads against one shared, warm `OptimizerServer` partitioned into
//! lock shards (DESIGN.md §14).
//!
//! Every submission shares a warm feature prefix (loaded from the
//! Experiment Graph) but trains with a unique learning rate, so each run
//! carries real work. The training operation is additionally stalled for
//! several milliseconds by the deterministic fault injector, modeling
//! operations that wait on I/O rather than CPU. Because the staged
//! pipeline (DESIGN.md §9) holds no Experiment Graph lock during
//! execution, those stalls overlap across submitters; and because each
//! unique training artifact hashes to its own shard, publishes lock only
//! the shards they touch, so high submitter counts keep scaling where a
//! single graph-wide write lock would plateau. Per-shard lock-wait
//! nanoseconds are sampled around every run: they quantify how much
//! publish-side contention remains at each thread count. The emitted
//! `BENCH_server_throughput.json` lets successive revisions track the
//! trajectory.

use co_bench::{full_scale, write_json};
use co_core::{OptimizerServer, Script, ServerConfig};
use co_dataframe::ops::MapFn;
use co_graph::{FaultInjector, WorkloadDag};
use co_ml::linear::LogisticParams;
use co_workloads::data::{creditg, CreditG};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected per-training-op stall (simulated I/O wait).
const OP_STALL: Duration = Duration::from_millis(5);

/// Experiment Graph lock shards for the bench server.
const SHARDS: usize = 8;

/// Warm shared prefix, unique training op per `serial`.
fn workload(data: &CreditG, serial: usize) -> WorkloadDag {
    #[allow(clippy::cast_precision_loss)] // lint:reason serials stay far below 2^52
    let lr = 0.05 + 1e-4 * (serial as f64);
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let m = s.map(train, "a0", MapFn::Abs, "a0_abs").unwrap();
    // A short, fixed iteration budget: the training op's cost is the
    // injected stall plus a small slice of CPU, so throughput is
    // stall-overlap-bound (what the pipeline and shards optimize), not
    // bound by raw single-core compute.
    let model = s
        .train_logistic(
            m,
            "class",
            LogisticParams {
                lr,
                tol: 0.0,
                max_iter: 10,
                ..Default::default()
            },
        )
        .unwrap();
    s.output(model).unwrap();
    s.into_dag()
}

/// Run `per_thread` submissions on each of `threads` submitters; returns
/// (total workloads, elapsed seconds, and the summed per-report compute /
/// plan / publish seconds for the stage breakdown).
fn drive(
    server: &Arc<OptimizerServer>,
    data: &CreditG,
    threads: usize,
    per_thread: usize,
    serial: &AtomicUsize,
) -> (usize, f64, f64, f64, f64) {
    let split = std::sync::Mutex::new((0.0f64, 0.0f64, 0.0f64));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let server = Arc::clone(server);
            let split = &split;
            scope.spawn(move || {
                for _ in 0..per_thread {
                    let id = serial.fetch_add(1, Ordering::Relaxed);
                    let (_, report) = server
                        .run_workload(workload(data, id))
                        .expect("bench workload runs");
                    let mut s = split.lock().unwrap();
                    s.0 += report.compute_seconds;
                    s.1 += report.optimizer_seconds;
                    s.2 += report.materializer_seconds;
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let (compute, plan, publish) = split.into_inner().unwrap();
    (threads * per_thread, elapsed, compute, plan, publish)
}

fn main() {
    let rows = if full_scale() { 2000 } else { 400 };
    let per_thread = if full_scale() { 100 } else { 25 };
    let data = creditg(rows, 0);
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = SHARDS;
    let server = Arc::new(OptimizerServer::new(config));
    let faults = Arc::new(FaultInjector::new());
    faults.inject_latency("train_logistic", OP_STALL);
    server.set_fault_injector(faults);
    let serial = AtomicUsize::new(0);

    // Warm the graph: the shared prefix is materialized once up front.
    let id = serial.fetch_add(1, Ordering::Relaxed);
    server
        .run_workload(workload(&data, id))
        .expect("warmup runs");

    println!("server throughput ({rows} rows, {per_thread} workloads/thread, {SHARDS} shards)");
    println!(
        "  threads  workloads  seconds  workloads/sec  compute(s)  plan(s)  publish(s)  lock-wait(ms)"
    );
    let mut results = Vec::new();
    for threads in [1usize, 4, 8, 16, 32, 64] {
        let wait_before = server.lock_wait_ns();
        let (total, seconds, compute, plan, publish) =
            drive(&server, &data, threads, per_thread, &serial);
        let wait_after = server.lock_wait_ns();
        // Nanoseconds publishers spent blocked on contended shard write
        // locks during THIS run, per shard.
        let lock_wait_ns: Vec<u64> = wait_after
            .iter()
            .zip(&wait_before)
            .map(|(a, b)| a - b)
            .collect();
        let wait_total_ms = lock_wait_ns.iter().sum::<u64>() as f64 / 1e6;
        let throughput = total as f64 / seconds;
        println!(
            "  {threads:>7}  {total:>9}  {seconds:>7.3}  {throughput:>13.1}  \
             {compute:>10.3}  {plan:>7.3}  {publish:>10.3}  {wait_total_ms:>13.3}"
        );
        let waits = lock_wait_ns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        results.push(format!(
            "    {{\"threads\": {threads}, \"workloads\": {total}, \
             \"seconds\": {seconds:.6}, \"workloads_per_sec\": {throughput:.3}, \
             \"shards\": {SHARDS}, \"lock_wait_ns_per_shard\": [{waits}]}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"rows\": {rows},\n  \
         \"workloads_per_thread\": {per_thread},\n  \"op_stall_ms\": {},\n  \
         \"shards\": {SHARDS},\n  \"results\": [\n{}\n  ]\n}}\n",
        OP_STALL.as_millis(),
        results.join(",\n")
    );
    write_json("BENCH_server_throughput.json", &json);
}
