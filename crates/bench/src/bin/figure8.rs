//! Regenerate the paper's figure8 (see `co_bench::figures::figure8`).
fn main() {
    co_bench::figures::figure8::run();
}
