//! Regenerate the paper's figure4 (see `co_bench::figures::figure4`).
fn main() {
    co_bench::figures::figure4::run();
}
