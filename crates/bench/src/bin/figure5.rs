//! Regenerate the paper's figure5 (see `co_bench::figures::figure5`).
fn main() {
    co_bench::figures::figure5::run();
}
