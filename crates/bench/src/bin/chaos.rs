//! Chaos driver: a seeded, repeatable storage-fault drill against a
//! durable [`OptimizerServer`], at both durability layouts (shards = 1
//! and shards = 8).
//!
//! Concurrent publishers hammer the server with unique workloads while
//! a scheduler thread opens and closes I/O fault windows (ENOSPC,
//! EIO writes, short writes, failed fsyncs) drawn from a seeded PRNG —
//! the same seed replays the same schedule. The drill asserts the full
//! graded-degradation contract (DESIGN.md §15):
//!
//! - inside a window every refused publish is the *retriable* read-only
//!   kind — the server never wedges on transient faults;
//! - once the windows close the server returns to `Healthy` and drains
//!   its backlog without a restart;
//! - a cold-column scrub detects injected bit rot and heals it from
//!   lineage, byte-identically;
//! - a reopened data directory holds exactly what the live server held
//!   (committed prefix + healed backlog), and egfsck finds it clean.
//!
//! Data directories are left under `target/tmp/` so CI's egfsck sweep
//! re-checks them offline. Exits non-zero on any violated invariant.
//!
//! Flags: `--quick` (CI-scale rounds), `--seed <n>` (fault schedule),
//! `--shards <n>` (one layout instead of both), `--dir <path>`.

use co_bench::write_json;
use co_core::{DurabilityConfig, DurabilityHealth, OptimizerServer, ServerConfig, ServerStats};
use co_dataframe::{Column, ColumnData, DataFrame, Scalar};
use co_graph::{
    FaultInjector, GraphError, IoFault, NodeKind, Operation, ScrubOutcome, Value, WorkloadDag,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Splitmix-style PRNG: tiny, deterministic, seed-stable across
/// platforms — the whole point of a chaos *schedule* is replayability.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Publisher op: unique name defeats reuse, the sleep keeps publishes
/// overlapping the fault windows.
struct Step(String);
impl Operation for Step {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(1));
        Ok(Value::Aggregate(Scalar::Float(1.0)))
    }
}

fn workload(name: &str) -> WorkloadDag {
    let mut dag = WorkloadDag::new();
    let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
    let prep = dag
        .add_op(Arc::new(Step(format!("{name}_prep"))), &[s])
        .unwrap();
    let t = dag
        .add_op(Arc::new(Step(name.to_owned())), &[prep])
        .unwrap();
    dag.mark_terminal(t).unwrap();
    dag
}

/// Deterministic dataset producer so the drill exercises the cold
/// store: materialized at publish, recomputable from lineage at scrub.
struct Make;
impl Operation for Make {
    fn name(&self) -> &str {
        "chaos_make"
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> co_graph::Result<Value> {
        std::thread::sleep(Duration::from_millis(2));
        let df = DataFrame::new(vec![Column::source(
            "chaos_src",
            "ints",
            ColumnData::Int((0..128).collect()),
        )])
        .map_err(|e| GraphError::op_failed("chaos_make", e.to_string()))?;
        Ok(Value::dataset(df))
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    vertices: BTreeMap<u64, (u64, u64, u64, u64)>,
    mat: BTreeSet<u64>,
}

fn fingerprint(server: &OptimizerServer) -> Fingerprint {
    let guards = server.shards().read_all();
    let vertices = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices().map(|v| {
                (
                    v.id.0,
                    (
                        v.frequency,
                        v.compute_time.to_bits(),
                        v.size,
                        v.quality.to_bits(),
                    ),
                )
            })
        })
        .collect();
    let mat = guards
        .iter()
        .flat_map(|eg| {
            eg.vertices()
                .filter(|v| eg.was_materialized(v.id))
                .map(|v| v.id.0)
        })
        .collect();
    Fingerprint { vertices, mat }
}

fn assert_fsck_clean(dir: &Path) {
    let report = match co_graph::fsck::detect_shard_layout(dir) {
        Some(n) => co_graph::fsck::check_sharded_data_dir(dir, n, true).unwrap(),
        None => co_graph::fsck::check_data_dir(dir, true).unwrap(),
    };
    assert!(report.is_clean(), "egfsck: {report}");
}

struct DrillReport {
    shards: usize,
    published: usize,
    rejected_readonly: usize,
    repair_attempts: usize,
    repairs_succeeded: usize,
    windows: usize,
    scrub: ScrubOutcome,
    heal_seconds: f64,
}

/// One full drill at a given shard count. Panics (non-zero exit) on any
/// violated invariant.
#[allow(clippy::too_many_lines)] // lint:reason a drill reads as one linear script
fn drill(base: &Path, shards: usize, seed: u64, quick: bool) -> DrillReport {
    let dir = base.join(format!("chaos_s{shards}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = shards;
    let mut durability = DurabilityConfig::new(&dir);
    durability.cold_columns = true;
    let (server, _) = OptimizerServer::open(config, durability).unwrap();
    let server = Arc::new(server);
    let faults = Arc::new(FaultInjector::new());
    server.set_fault_injector(Arc::clone(&faults));

    // Seed the cold store with one dataset artifact before the storm.
    let cold_id = {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("chaos_src", Value::Aggregate(Scalar::Float(0.0)));
        let m = dag.add_op(Arc::new(Make), &[s]).unwrap();
        dag.mark_terminal(m).unwrap();
        let (dag, _) = server.run_workload(dag).unwrap();
        dag.nodes()[m.0].artifact
    };

    let publishers = 4usize;
    let rounds = if quick { 25 } else { 100 };
    let stop = Arc::new(AtomicBool::new(false));

    // Fault scheduler: windows drawn from the seeded PRNG. ReadErr is
    // excluded while publishers run (it targets the *read* path, which
    // the scrub phase covers below with real bit rot instead).
    let schedule = {
        let faults = Arc::clone(&faults);
        let stop = Arc::clone(&stop);
        let mut rng = Rng(seed ^ shards as u64);
        std::thread::spawn(move || {
            let window_faults = [
                IoFault::Enospc,
                IoFault::WriteErr,
                IoFault::ShortWrite,
                IoFault::FsyncFail,
            ];
            let mut windows = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let calm = 10 + rng.below(30);
                std::thread::sleep(Duration::from_millis(calm));
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let fault = window_faults[rng.below(4) as usize];
                faults.arm_io_fault(fault, usize::MAX);
                windows += 1;
                let open = 20 + rng.below(60);
                std::thread::sleep(Duration::from_millis(open));
                faults.clear_io_faults();
            }
            // The drill must end fault-free so the server can heal.
            faults.clear_io_faults();
            windows
        })
    };

    let published: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..publishers)
            .map(|p| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut ok = 0usize;
                    for r in 0..rounds {
                        match server.run_workload(workload(&format!("chaos_p{p}_r{r}"))) {
                            Ok(_) => ok += 1,
                            Err(e) => assert!(
                                e.error.is_transient(),
                                "publisher {p} round {r}: non-transient failure {e}"
                            ),
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    stop.store(true, Ordering::SeqCst);
    let windows = schedule.join().unwrap();
    assert!(published > 0, "no publish landed around the windows");

    // Heal: with the faults gone the server must reach Healthy with an
    // empty backlog, without a restart.
    let heal_started = Instant::now();
    let deadline = heal_started + Duration::from_secs(20);
    while server.durability_health() != DurabilityHealth::Healthy {
        assert!(Instant::now() < deadline, "server never healed");
        let _ = server.try_repair();
        std::thread::sleep(Duration::from_millis(20));
    }
    let heal_seconds = heal_started.elapsed().as_secs_f64();
    assert_eq!(server.backlog_len(), 0, "backlog must drain on repair");
    server.run_workload(workload("chaos_after")).unwrap();
    server.flush_durable().unwrap();

    // Scrub phase: inject real bit rot into the seeded cold column and
    // let the scrubber heal it from lineage.
    let cold_path = dir
        .join("cold")
        .join(format!("cold-{:016x}.col", cold_id.0));
    let pristine = std::fs::read(&cold_path).expect("cold column written");
    let mut rotted = pristine.clone();
    let mid = rotted.len() / 2;
    rotted[mid] ^= 0x10;
    std::fs::write(&cold_path, &rotted).unwrap();
    let scrub = server.scrub();
    assert!(
        scrub.healed >= 1,
        "bit rot must heal from lineage: {scrub:?}"
    );
    assert_eq!(scrub.quarantined, 0, "nothing here is unrecoverable");
    assert_eq!(
        std::fs::read(&cold_path).unwrap(),
        pristine,
        "healing is byte-identical (deterministic encoding)"
    );

    let stats: ServerStats = server.stats();
    assert_eq!(stats.durability_health, 0);

    // Reopen: committed prefix + healed backlog, nothing torn.
    let live = fingerprint(&server);
    drop(server);
    let mut config = ServerConfig::collaborative(u64::MAX);
    config.shards = shards;
    let (reopened, _) = OptimizerServer::open(config, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(
        fingerprint(&reopened),
        live,
        "reopen diverged (shards={shards})"
    );
    drop(reopened);
    assert_fsck_clean(&dir);

    DrillReport {
        shards,
        published,
        rejected_readonly: stats.publishes_rejected_readonly,
        repair_attempts: stats.repair_attempts,
        repairs_succeeded: stats.repairs_succeeded,
        windows,
        scrub,
        heal_seconds,
    }
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = arg_value("--seed").map_or(0x00C0_FFEE, |s| {
        s.parse().expect("--seed takes an unsigned integer")
    });
    let base = PathBuf::from(arg_value("--dir").unwrap_or_else(|| "target/tmp".to_owned()));
    std::fs::create_dir_all(&base).expect("can create the data dir");
    let layouts: Vec<usize> = arg_value("--shards").map_or_else(
        || vec![1, 8],
        |s| vec![s.parse().expect("--shards takes a shard count")],
    );

    println!(
        "chaos drill: seed={seed:#x} quick={quick} layouts={layouts:?} dir={}",
        base.display()
    );
    let mut rows = String::new();
    for (i, &shards) in layouts.iter().enumerate() {
        let r = drill(&base, shards, seed, quick);
        println!(
            "  shards={}: published={} readonly_rejections={} windows={} \
             repairs={}/{} scrub(checked={} healed={}) heal={:.2}s",
            r.shards,
            r.published,
            r.rejected_readonly,
            r.windows,
            r.repairs_succeeded,
            r.repair_attempts.max(r.repairs_succeeded),
            r.scrub.checked,
            r.scrub.healed,
            r.heal_seconds,
        );
        if i > 0 {
            rows.push(',');
        }
        write!(
            rows,
            r#"
    {{"shards": {}, "published": {}, "rejected_readonly": {}, "windows": {}, "repairs_succeeded": {}, "scrub_checked": {}, "scrub_healed": {}, "heal_seconds": {:.4}}}"#,
            r.shards,
            r.published,
            r.rejected_readonly,
            r.windows,
            r.repairs_succeeded,
            r.scrub.checked,
            r.scrub.healed,
            r.heal_seconds,
        )
        .unwrap();
    }
    let json = format!(
        r#"{{
  "bench": "chaos",
  "seed": {seed},
  "quick": {quick},
  "results": [{rows}
  ]
}}
"#
    );
    write_json("BENCH_chaos.json", &json);
    println!("chaos drill OK");
}
