//! Regenerate the paper's figure9 (see `co_bench::figures::figure9`).
fn main() {
    co_bench::figures::figure9::run();
}
