//! Before/after benchmark for the dataframe kernels.
//!
//! "Before" is the seed's algorithms, embedded here verbatim in shape:
//! SipHash `std::collections::HashMap` for the join build and group-by key
//! collection, a fresh `Vec<f64>` allocated per group for aggregation, and
//! deep per-column gathers. "After" is the shipped kernels
//! (`co_dataframe::ops`): FxHash-style deterministic hashing, partitioned
//! chunk-parallel build/probe, one scratch buffer per chunk, and zero-copy
//! column views — run at 1 thread and at 4 threads via
//! [`co_dataframe::par::with_config`].
//!
//! Emits `BENCH_dataframe_ops.json`. `host_cpus` records the machine's
//! actual parallelism so a 4-thread series on a smaller host can be read
//! for what it is; the kernels are bit-identical for any thread count, so
//! thread counts only move throughput.
//!
//! Default scale is 1M left rows (`--quick` for 100k, used by the CI smoke
//! job).

use co_bench::write_json;
use co_dataframe::ops::{self, AggFn, Predicate};
use co_dataframe::{par, Column, ColumnData, DataFrame};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// Numeric table: `rows` rows, `rows/4` distinct int keys and two float
/// features. The join benches run on these — string payload columns would
/// spend most of the time on `String` clones that cost the same in every
/// variant and drown out the kernel difference.
fn table(rows: usize, keys: i64) -> DataFrame {
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_wrap)]
    // lint:reason synthetic key and value ranges are tiny
    DataFrame::new(vec![
        Column::source(
            "bench",
            "sk_id",
            ColumnData::Int(
                (0..rows)
                    .map(|i| (i as i64).wrapping_mul(2654435761) % keys)
                    .collect(),
            ),
        ),
        Column::source(
            "bench",
            "x",
            ColumnData::Float((0..rows).map(|i| (i as f64).sin()).collect()),
        ),
        Column::source(
            "bench",
            "y",
            ColumnData::Float((0..rows).map(|i| (i as f64).mul_add(0.5, 1.0)).collect()),
        ),
    ])
    .expect("equal lengths")
}

/// The numeric table plus a low-cardinality category column, for the
/// string-heavy kernels (`filter` keeps it, `one_hot` encodes it).
fn table_with_cat(rows: usize, keys: i64) -> DataFrame {
    let base = table(rows, keys);
    let mut cols: Vec<Column> = base.columns().to_vec();
    cols.push(Column::source(
        "bench",
        "cat",
        ColumnData::Str((0..rows).map(|i| format!("c{}", i % 8)).collect()),
    ));
    DataFrame::new(cols).expect("equal lengths")
}

/// The seed's inner join: SipHash build, serial probe, deep gathers.
fn seed_inner_join(left: &DataFrame, right: &DataFrame, on: &str) -> DataFrame {
    let lkey = left.column(on).unwrap().ints().unwrap().to_vec();
    let rkey = right.column(on).unwrap().ints().unwrap().to_vec();
    let mut index: HashMap<i64, Vec<usize>> = HashMap::with_capacity(rkey.len());
    for (i, &k) in rkey.iter().enumerate() {
        index.entry(k).or_default().push(i);
    }
    let mut lrows: Vec<usize> = Vec::new();
    let mut rrows: Vec<usize> = Vec::new();
    for (i, k) in lkey.iter().enumerate() {
        if let Some(matches) = index.get(k) {
            for &j in matches {
                lrows.push(i);
                rrows.push(j);
            }
        }
    }
    let gather_f = |v: &[f64], rows: &[usize]| -> Vec<f64> { rows.iter().map(|&i| v[i]).collect() };
    let key: Vec<i64> = lrows.iter().map(|&i| lkey[i]).collect();
    let lx = gather_f(left.column("x").unwrap().floats().unwrap(), &lrows);
    let ly = gather_f(left.column("y").unwrap().floats().unwrap(), &lrows);
    let rx = gather_f(right.column("x").unwrap().floats().unwrap(), &rrows);
    let ry = gather_f(right.column("y").unwrap().floats().unwrap(), &rrows);
    DataFrame::new(vec![
        Column::source("seed", "sk_id", ColumnData::Int(key)),
        Column::source("seed", "x", ColumnData::Float(lx)),
        Column::source("seed", "y", ColumnData::Float(ly)),
        Column::source("seed", "x_r", ColumnData::Float(rx)),
        Column::source("seed", "y_r", ColumnData::Float(ry)),
    ])
    .expect("equal lengths")
}

/// The seed's group-by: SipHash key collection, a fresh `Vec<f64>` per
/// group.
fn seed_groupby_mean(df: &DataFrame, key: &str, col: &str) -> DataFrame {
    let ints = df.column(key).unwrap().ints().unwrap();
    let values = df.column(col).unwrap().to_f64().unwrap();
    let mut map: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, &k) in ints.iter().enumerate() {
        map.entry(k).or_default().push(i);
    }
    let mut pairs: Vec<(i64, Vec<usize>)> = map.into_iter().collect();
    pairs.sort_unstable_by_key(|(k, _)| *k);
    let agged: Vec<f64> = pairs
        .iter()
        .map(|(_, rows)| {
            let slice: Vec<f64> = rows.iter().map(|&i| values[i]).collect();
            AggFn::Mean.apply(&slice)
        })
        .collect();
    let keys: Vec<i64> = pairs.into_iter().map(|(k, _)| k).collect();
    DataFrame::new(vec![
        Column::source("seed", key, ColumnData::Int(keys)),
        Column::source("seed", "mean", ColumnData::Float(agged)),
    ])
    .expect("equal lengths")
}

/// Best-of-`iters` wall time of `f`, seconds.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Entry {
    op: &'static str,
    variant: &'static str,
    threads: usize,
    seconds: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = if quick { 100_000 } else { 1_000_000 };
    let iters = if quick { 3 } else { 5 };
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let left = table(rows, (rows / 4) as i64);
    let right = table(rows / 2, (rows / 4) as i64);
    let cat_frame = table_with_cat(rows, (rows / 4) as i64);

    let mut entries: Vec<Entry> = Vec::new();
    let mut push = |op, variant, threads, seconds| {
        println!("  {op:<14} {variant:<13} threads={threads}  {seconds:>9.4}s");
        entries.push(Entry {
            op,
            variant,
            threads,
            seconds,
        });
    };

    println!("dataframe ops ({rows} rows, best of {iters}, host_cpus={host_cpus})");

    // Seed baselines (single-threaded by construction).
    push(
        "inner_join",
        "seed_baseline",
        1,
        best_of(iters, || {
            black_box(seed_inner_join(&left, &right, "sk_id"));
        }),
    );
    push(
        "groupby_mean",
        "seed_baseline",
        1,
        best_of(iters, || {
            black_box(seed_groupby_mean(&left, "sk_id", "x"));
        }),
    );

    // The shipped kernels at 1 and 4 threads.
    for threads in [1usize, 4] {
        par::with_config(threads, 16 * 1024, || {
            push(
                "inner_join",
                "kernel",
                threads,
                best_of(iters, || {
                    black_box(ops::inner_join(&left, &right, "sk_id").expect("joins"));
                }),
            );
            push(
                "groupby_mean",
                "kernel",
                threads,
                best_of(iters, || {
                    black_box(
                        ops::groupby_agg(&left, "sk_id", &[("x", AggFn::Mean)]).expect("groups"),
                    );
                }),
            );
            push(
                "filter",
                "kernel",
                threads,
                best_of(iters, || {
                    black_box(
                        ops::filter(&cat_frame, &Predicate::gt_f("x", 0.0)).expect("filters"),
                    );
                }),
            );
            push(
                "one_hot",
                "kernel",
                threads,
                best_of(iters, || {
                    black_box(ops::one_hot(&cat_frame, "cat", 8).expect("encodes"));
                }),
            );
        });
    }

    // Headline speedups: best kernel time (any thread count) vs seed.
    let best_kernel = |op: &str| {
        entries
            .iter()
            .filter(|e| e.op == op && e.variant == "kernel")
            .map(|e| e.seconds)
            .fold(f64::INFINITY, f64::min)
    };
    let seed_time = |op: &str| {
        entries
            .iter()
            .find(|e| e.op == op && e.variant == "seed_baseline")
            .map_or(f64::NAN, |e| e.seconds)
    };
    let join_speedup = seed_time("inner_join") / best_kernel("inner_join");
    let groupby_speedup = seed_time("groupby_mean") / best_kernel("groupby_mean");
    println!("  speedup vs seed: inner_join {join_speedup:.2}x, groupby {groupby_speedup:.2}x");

    let results: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"op\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \
                 \"seconds_per_iter\": {:.6}}}",
                e.op, e.variant, e.threads, e.seconds
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"dataframe_ops\",\n  \"rows\": {rows},\n  \
         \"iters\": {iters},\n  \"host_cpus\": {host_cpus},\n  \
         \"speedup_vs_seed\": {{\"inner_join\": {join_speedup:.3}, \
         \"groupby_mean\": {groupby_speedup:.3}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    );
    write_json("BENCH_dataframe_ops.json", &json);
}
