//! Regenerate the paper's table1 (see `co_bench::figures::table1`).
fn main() {
    co_bench::figures::table1::run();
}
