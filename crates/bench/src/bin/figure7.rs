//! Regenerate the paper's figure7 (see `co_bench::figures::figure7`).
fn main() {
    co_bench::figures::figure7::run();
}
