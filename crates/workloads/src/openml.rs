//! The OpenML workload stream: a seeded sampler of scikit-learn-style
//! pipelines over the credit-g dataset, standing in for the paper's 2000
//! extracted runs of OpenML Task 31 (§7.1), plus the model-benchmarking
//! scenario of Figure 8(a).

use crate::data::CreditG;
use crate::runner::terminal_eval_score;
use co_core::ops::EvalMetric;
use co_core::{OptimizerServer, Script};
use co_graph::{NodeId, Result, WorkloadDag};
use co_ml::feature::{ImputeStrategy, ScaleKind};
use co_ml::linear::{LogisticParams, SvmParams};
use co_ml::tree::{ForestParams, GbtParams, TreeParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Numeric columns of credit-g (see [`crate::data::creditg`]).
const NUMERIC: [&str; 10] = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"];

/// Build the `run_idx`-th random pipeline. Pipelines share a small space
/// of preprocessing variants (so artifacts recur across runs, as in real
/// OpenML traces) and sample model families and hyperparameters from
/// modest grids. Trainers are iteration-capped, which is what makes
/// warmstarting improve accuracy (paper Figure 10(b)).
pub fn pipeline(data: &CreditG, run_idx: u64, seed: u64) -> Result<WorkloadDag> {
    let mut rng = StdRng::seed_from_u64(seed ^ run_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut s = Script::new();
    let train = s.load("creditg_train", data.train.clone());
    let test = s.load("creditg_test", data.test.clone());

    // Sample the preprocessing configuration once, then apply the same
    // steps to the train and test tables.
    let strategy = if rng.random::<f64>() < 0.5 {
        ImputeStrategy::Mean
    } else {
        ImputeStrategy::Median
    };
    let scaling = rng.random_range(0..3);
    let selection = if rng.random::<f64>() < 0.4 {
        Some([5usize, 8][rng.random_range(0..2)])
    } else {
        None
    };
    let preprocess = |s: &mut Script, node: NodeId| -> Result<NodeId> {
        let mut node = s.impute(node, strategy, &["a8", "a9"])?;
        match scaling {
            0 => node = s.scale(node, ScaleKind::Standard, &NUMERIC)?,
            1 => node = s.scale(node, ScaleKind::MinMax, &NUMERIC)?,
            _ => {}
        }
        if let Some(k) = selection {
            let selected = s.select_k_best(node, "class", k)?;
            let label = s.select(node, &["class"])?;
            node = s.hconcat(&[selected, label])?;
        }
        Ok(node)
    };
    let fe_train = preprocess(&mut s, train)?;
    let fe_test = preprocess(&mut s, test)?;

    // Family mix (roughly matching OpenML Task 31's skew toward
    // iterative linear classifiers): 3/8 logistic, 2/8 SVM, 2/8 GBT,
    // 1/8 random forest.
    let model = match rng.random_range(0..8) {
        0..=2 => {
            // Low learning rates and tight iteration caps: convergence is
            // slow from a cold start, so warmstarting has room to help
            // (time via early stopping, accuracy under the cap). The
            // regulariser is fixed, so all logistic runs on one artifact
            // share an optimum — a warmstarted run converges immediately.
            let params = LogisticParams {
                lr: [0.01, 0.02, 0.05][rng.random_range(0..3)],
                l2: 1e-4,
                max_iter: [100, 200, 400][rng.random_range(0..3)],
                tol: 1e-6,
            };
            s.train_logistic(fe_train, "class", params)?
        }
        3 | 4 => {
            let params = SvmParams {
                lr: [0.01, 0.02, 0.05][rng.random_range(0..3)],
                l2: 1e-3,
                max_iter: [100, 200, 400][rng.random_range(0..3)],
                tol: 1e-6,
            };
            s.train_svm(fe_train, "class", params)?
        }
        5 | 6 => {
            // One tree shape and shrinkage: a warmstarted GBT continues
            // boosting from a compatible prior ensemble's trees.
            let params = GbtParams {
                n_estimators: [8, 16, 24][rng.random_range(0..3)],
                learning_rate: 0.2,
                tree: TreeParams {
                    max_depth: 3,
                    min_samples_leaf: 5,
                    n_thresholds: 8,
                },
            };
            s.train_gbt(fe_train, "class", params)?
        }
        _ => {
            let params = ForestParams {
                n_estimators: [5, 10][rng.random_range(0..2)],
                tree: TreeParams {
                    max_depth: rng.random_range(3..5),
                    min_samples_leaf: 5,
                    n_thresholds: 8,
                },
                feature_fraction: 0.7,
                seed: 42,
            };
            s.train_forest(fe_train, "class", params)?
        }
    };
    let score = s.evaluate(model, fe_test, "class", EvalMetric::RocAuc)?;
    s.output(model)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// One step of the model-benchmarking scenario.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkStep {
    /// Client-visible time of this step (new workload + gold-standard
    /// comparison).
    pub run_seconds: f64,
    /// The new workload's test score.
    pub score: f64,
    /// Index of the gold-standard workload after this step.
    pub gold: usize,
}

/// The paper's model-benchmarking scenario (Figure 8(a)): execute the
/// pipeline stream; whenever a workload does not beat the current best
/// ("gold standard") model, the user re-runs the gold-standard workload
/// to compare against it. With the collaborative optimizer the
/// re-execution is served from the Experiment Graph; the OpenML baseline
/// recomputes it.
pub fn model_benchmark_scenario(
    server: &OptimizerServer,
    data: &CreditG,
    n_workloads: usize,
    seed: u64,
) -> Result<Vec<BenchmarkStep>> {
    let mut steps = Vec::with_capacity(n_workloads);
    let mut gold: Option<(usize, f64)> = None;
    for i in 0..n_workloads {
        let (dag, report) = server.run_workload(pipeline(data, i as u64, seed)?)?;
        let score = terminal_eval_score(&dag).unwrap_or(0.0);
        let mut run_seconds = report.run_seconds();
        match gold {
            Some((g, best)) if score <= best => {
                // Compare against the champion: re-run its workload.
                let (_, cmp) = server.run_workload(pipeline(data, g as u64, seed)?)?;
                run_seconds += cmp.run_seconds();
                steps.push(BenchmarkStep {
                    run_seconds,
                    score,
                    gold: g,
                });
            }
            _ => {
                gold = Some((i, score));
                steps.push(BenchmarkStep {
                    run_seconds,
                    score,
                    gold: i,
                });
            }
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::creditg;
    use co_core::ServerConfig;

    #[test]
    fn pipelines_are_deterministic_per_index() {
        let data = creditg(300, 0);
        let a = pipeline(&data, 3, 7).unwrap();
        let b = pipeline(&data, 3, 7).unwrap();
        let ids_a: Vec<_> = a.nodes().iter().map(|n| n.artifact).collect();
        let ids_b: Vec<_> = b.nodes().iter().map(|n| n.artifact).collect();
        assert_eq!(ids_a, ids_b);
        let c = pipeline(&data, 4, 7).unwrap();
        let ids_c: Vec<_> = c.nodes().iter().map(|n| n.artifact).collect();
        assert_ne!(ids_a, ids_c);
    }

    #[test]
    fn pipelines_execute_and_score() {
        let data = creditg(300, 0);
        let server = OptimizerServer::new(ServerConfig::baseline());
        for i in 0..6 {
            let (dag, _) = server.run_workload(pipeline(&data, i, 7).unwrap()).unwrap();
            let score = terminal_eval_score(&dag).unwrap();
            assert!((0.0..=1.0).contains(&score), "run {i}: score {score}");
        }
    }

    #[test]
    fn benchmark_scenario_tracks_the_gold_standard() {
        let data = creditg(300, 0);
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let steps = model_benchmark_scenario(&server, &data, 8, 7).unwrap();
        assert_eq!(steps.len(), 8);
        // The gold standard's score is non-decreasing over the stream.
        let mut best = f64::MIN;
        for step in &steps {
            let gold_score = steps[step.gold].score;
            assert!(gold_score >= best - 1e-12);
            best = best.max(gold_score);
        }
    }

    #[test]
    fn reuse_makes_the_scenario_cheaper_than_baseline() {
        let data = creditg(400, 0);
        let co = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let oml = OptimizerServer::new(ServerConfig::baseline());
        let co_steps = model_benchmark_scenario(&co, &data, 10, 3).unwrap();
        let oml_steps = model_benchmark_scenario(&oml, &data, 10, 3).unwrap();
        let total = |steps: &[BenchmarkStep]| -> f64 { steps.iter().map(|s| s.run_seconds).sum() };
        assert!(
            total(&co_steps) < total(&oml_steps),
            "CO {} vs OML {}",
            total(&co_steps),
            total(&oml_steps)
        );
    }
}
