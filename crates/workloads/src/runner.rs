//! Scenario-running helpers shared by the figure harnesses, examples,
//! and integration tests.

use co_core::{ExecutionReport, OptimizerServer};
use co_graph::{Result, WorkloadDag};

/// Run workloads through a server in order, returning one report per
/// workload.
pub fn run_sequence(
    server: &OptimizerServer,
    dags: Vec<WorkloadDag>,
) -> Result<Vec<ExecutionReport>> {
    dags.into_iter()
        .map(|dag| {
            server
                .run_workload(dag)
                .map(|(_, report)| report)
                .map_err(co_graph::GraphError::from)
        })
        .collect()
}

/// Cumulative client run time (compute + charged loads) after each
/// workload.
#[must_use]
pub fn cumulative_run_times(reports: &[ExecutionReport]) -> Vec<f64> {
    reports
        .iter()
        .scan(0.0, |acc, r| {
            *acc += r.run_seconds();
            Some(*acc)
        })
        .collect()
}

/// The best evaluation score among an executed workload's terminal
/// aggregates (scores live in `[0, 1]`).
#[must_use]
pub fn terminal_eval_score(dag: &WorkloadDag) -> Option<f64> {
    dag.terminals()
        .iter()
        .filter_map(|t| {
            dag.node(*t)
                .ok()?
                .computed
                .as_ref()?
                .as_aggregate()?
                .as_f64()
                .filter(|v| (0.0..=1.0).contains(v))
        })
        .fold(None, |best: Option<f64>, v| {
            Some(best.map_or(v, |b| b.max(v)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_core::ops::EvalMetric;
    use co_core::{Script, ServerConfig};
    use co_dataframe::{Column, ColumnData, DataFrame};
    use co_ml::linear::LogisticParams;

    fn tiny_workload() -> WorkloadDag {
        let df = DataFrame::new(vec![
            Column::source(
                "t",
                "x",
                ColumnData::Float((0..40).map(|i| f64::from(i) / 20.0).collect()),
            ),
            Column::source(
                "t",
                "y",
                ColumnData::Int((0..40).map(|i| i64::from(i >= 20)).collect()),
            ),
        ])
        .unwrap();
        let mut s = Script::new();
        let d = s.load("t", df);
        let m = s.train_logistic(d, "y", LogisticParams::default()).unwrap();
        let e = s.evaluate(m, d, "y", EvalMetric::RocAuc).unwrap();
        s.output(e).unwrap();
        s.into_dag()
    }

    #[test]
    fn sequences_and_scores() {
        let server = OptimizerServer::new(ServerConfig::collaborative(u64::MAX));
        let reports = run_sequence(&server, vec![tiny_workload(), tiny_workload()]).unwrap();
        assert_eq!(reports.len(), 2);
        let cumulative = cumulative_run_times(&reports);
        assert!(cumulative[1] >= cumulative[0]);

        let (dag, _) = server.run_workload(tiny_workload()).unwrap();
        let score = terminal_eval_score(&dag).unwrap();
        assert!(score > 0.9);
    }
}
