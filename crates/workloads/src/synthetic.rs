//! Random workload DAGs for the reuse-overhead experiment (paper
//! Figure 9(d)): 10 000 synthetic workloads "designed to have similar
//! characteristics to the real workloads", controlling the five
//! attributes the paper lists — indegree distribution (join/concat
//! operators), outdegree distribution, ratio of materialized nodes, and
//! the distributions of compute and load costs.

use co_dataframe::Scalar;
use co_graph::{ExperimentGraph, NodeKind, Operation, Result, Value, WorkloadDag};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A stand-in operation with a unique label; synthetic workloads are
/// planned, never executed.
pub struct LabelOp(pub String);

impl Operation for LabelOp {
    fn name(&self) -> &str {
        &self.0
    }
    fn params_digest(&self) -> String {
        String::new()
    }
    fn output_kind(&self) -> NodeKind {
        NodeKind::Dataset
    }
    fn run(&self, _inputs: &[&Value]) -> Result<Value> {
        Ok(Value::Aggregate(Scalar::Float(0.0)))
    }
}

/// Attribute distributions for the generator (defaults fitted to the
/// shapes of the Kaggle workloads in [`crate::kaggle`]).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Node-count range, inclusive (paper: `[500, 2000]`).
    pub n_nodes_min: usize,
    /// Upper bound on node count.
    pub n_nodes_max: usize,
    /// Probability an operation has two inputs (joins/concats).
    pub p_multi_input: f64,
    /// Probability a node's parent is drawn preferentially from recent
    /// nodes (chains) rather than uniformly (fan-out reuse of one node).
    pub p_chain: f64,
    /// Fraction of nodes materialized in the Experiment Graph.
    pub mat_ratio: f64,
    /// Mean of the exponential compute-cost distribution (seconds).
    pub compute_mean_s: f64,
    /// Mean artifact size in bytes (log-uniform spread around it).
    pub mean_size_bytes: f64,
    /// Base RNG seed; each workload index perturbs it.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_nodes_min: 500,
            n_nodes_max: 2000,
            p_multi_input: 0.12,
            p_chain: 0.75,
            mat_ratio: 0.3,
            compute_mean_s: 0.02,
            // GB-scale artifacts, as in the paper's workloads: load costs
            // are then comparable to compute costs, so the planners face
            // real decisions instead of always-load trivia.
            mean_size_bytes: 512.0 * 1024.0 * 1024.0,
            seed: 42,
        }
    }
}

/// Generate the `idx`-th synthetic workload plus an Experiment Graph that
/// already contains it, with `mat_ratio` of its vertices materialized —
/// the input a reuse planner sees. Deterministic in `(config, idx)`.
pub fn synthetic_workload(
    config: &SyntheticConfig,
    idx: u64,
) -> Result<(WorkloadDag, ExperimentGraph)> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ idx.wrapping_mul(0xa076_1d64_78bd_642f));
    let n_nodes = rng.random_range(config.n_nodes_min..=config.n_nodes_max);

    let mut dag = WorkloadDag::new();
    let source = dag.add_source(
        &format!("synthetic_src_{idx}"),
        Value::Aggregate(Scalar::Float(0.0)),
    );
    let mut nodes = vec![source];
    for i in 1..n_nodes {
        let pick_parent = |rng: &mut StdRng, nodes: &[co_graph::NodeId]| {
            if rng.random::<f64>() < config.p_chain {
                // Prefer recent nodes: long chains like real pipelines.
                let tail = nodes.len().saturating_sub(4);
                nodes[rng.random_range(tail..nodes.len())]
            } else {
                // Uniform: creates high-outdegree hubs (a dataset feeding
                // many models).
                nodes[rng.random_range(0..nodes.len())]
            }
        };
        let p1 = pick_parent(&mut rng, &nodes);
        let op = Arc::new(LabelOp(format!("op_{idx}_{i}")));
        let node = if rng.random::<f64>() < config.p_multi_input && nodes.len() > 2 {
            let p2 = pick_parent(&mut rng, &nodes);
            if p2 == p1 {
                dag.add_op(op, &[p1])?
            } else {
                dag.add_op(op, &[p1, p2])?
            }
        } else {
            dag.add_op(op, &[p1])?
        };
        nodes.push(node);
    }
    // Terminals: the real Kaggle workloads request many outputs (W1 has
    // ~30 EDA + model terminals); mark every childless node plus the
    // final one.
    let mut has_child = vec![false; dag.n_nodes()];
    for edge in dag.edges() {
        for p in &edge.inputs {
            has_child[p.0] = true;
        }
    }
    for node in &nodes {
        if !has_child[node.0] {
            dag.mark_terminal(*node)?;
        }
    }
    // co-lint:allow(no-panic) the builder loop above pushed at least one node
    dag.mark_terminal(*nodes.last().expect("nonempty"))?;

    // Annotate costs and sizes; build the EG view.
    let mut annotated = dag.clone();
    for node in &nodes[1..] {
        let u: f64 = rng.random_range(1e-9..1.0f64);
        let compute = -config.compute_mean_s * u.ln(); // Exp(mean)
        let spread: f64 = rng.random_range(-2.0..2.0);
        let size = (config.mean_size_bytes * spread.exp2()) as u64;
        annotated.annotate(*node, compute, size)?;
    }
    let mut eg = ExperimentGraph::new(false);
    eg.update_with_workload(&annotated)?;
    for node in &nodes[1..] {
        if rng.random::<f64>() < config.mat_ratio {
            let artifact = annotated.nodes()[node.0].artifact;
            eg.storage_mut()
                .store(artifact, &Value::Aggregate(Scalar::Float(0.0)));
        }
    }
    Ok((dag, eg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_core::optimizer::{plan_execution_cost, HelixReuse, LinearReuse, ReusePlanner};
    use co_core::CostModel;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            n_nodes_min: 60,
            n_nodes_max: 120,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generator_matches_requested_attributes() {
        let config = small();
        let (dag, eg) = synthetic_workload(&config, 0).unwrap();
        assert!((60..=120).contains(&dag.n_nodes()));
        // Childless nodes (plus the final node) are terminals, like the
        // many-output real workloads.
        assert!(!dag.terminals().is_empty());
        assert!(dag.terminals().len() > 1, "expected several terminals");
        // Materialization ratio in a loose band around the target.
        let mat = dag
            .nodes()
            .iter()
            .filter(|n| eg.is_materialized(n.artifact))
            .count() as f64
            / dag.n_nodes() as f64;
        assert!((0.05..0.6).contains(&mat), "mat ratio {mat}");
        // Some multi-input operations exist.
        let multi = dag.edges().iter().filter(|e| e.inputs.len() == 2).count();
        assert!(multi > 0);
    }

    #[test]
    fn deterministic_per_index() {
        let config = small();
        let (a, _) = synthetic_workload(&config, 5).unwrap();
        let (b, _) = synthetic_workload(&config, 5).unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        let ids_a: Vec<_> = a.nodes().iter().map(|n| n.artifact).collect();
        let ids_b: Vec<_> = b.nodes().iter().map(|n| n.artifact).collect();
        assert_eq!(ids_a, ids_b);
        let (c, _) = synthetic_workload(&config, 6).unwrap();
        assert_ne!(a.nodes()[1].artifact, c.nodes()[1].artifact);
    }

    #[test]
    fn planners_agree_on_cost_for_synthetic_dags() {
        // LN is exact on trees; these DAGs have joins, so only assert the
        // optimal (max-flow) cost never exceeds LN's.
        let config = small();
        let cost = CostModel::memory();
        for idx in 0..8 {
            let (dag, eg) = synthetic_workload(&config, idx).unwrap();
            let ln = LinearReuse.plan(&dag, &eg, &cost);
            let hl = HelixReuse.plan(&dag, &eg, &cost);
            let ln_cost = plan_execution_cost(&dag, &eg, &cost, &ln);
            let hl_cost = plan_execution_cost(&dag, &eg, &cost, &hl);
            assert!(
                hl_cost <= ln_cost + 1e-9,
                "idx {idx}: HL {hl_cost} > LN {ln_cost}"
            );
        }
    }
}
