//! # co-workloads
//!
//! The evaluation scenarios of the SIGMOD 2020 paper, rebuilt on
//! synthetic data (see `DESIGN.md` for the substitution arguments):
//!
//! * [`data::homecredit`] — a seeded generator reproducing the relational
//!   shape of the Kaggle *Home Credit Default Risk* competition data
//!   (application/bureau/previous/installments tables, a learnable
//!   binary target, missing values, categoricals, anomalies).
//! * [`kaggle`] — the eight workloads of the paper's Table 1: three
//!   "published kernels" (W1–W3), two real modifications (W4, W5), and
//!   three custom recombinations (W6–W8).
//! * [`data::creditg()`] — a credit-g-like dataset (1000 × 20) plus the
//!   [`openml`] random pipeline sampler that stands in for the 2000
//!   scikit-learn runs of OpenML Task 31.
//! * [`synthetic`] — the random workload-DAG generator used for the reuse
//!   overhead experiment (Figure 9(d)), with the five attribute
//!   distributions the paper lists.
//! * [`runner`] — helpers to run workload sequences through an
//!   [`co_core::OptimizerServer`] and collect cumulative statistics.

#![forbid(unsafe_code)]

pub mod data;
pub mod kaggle;
pub mod openml;
pub mod runner;
pub mod synthetic;
