//! Synthetic *Home Credit Default Risk* data (substitute for the 2.5 GB
//! Kaggle competition data — see DESIGN.md §2).
//!
//! The generator reproduces the properties the paper's workloads exercise:
//! a main application table with a learnable, imbalanced binary target;
//! numeric columns with missing values and a sentinel anomaly
//! (`days_employed = 365243` in the real data); categorical columns for
//! one-hot encoding; and three side tables joined by `sk_id` with multiple
//! rows per applicant, feeding the group-by aggregation features of
//! Workloads 2 and 3.

use co_dataframe::{Column, ColumnData, DataFrame};
use co_ml::linear::sigmoid;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sizing knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct HomeCreditScale {
    /// Rows in the application (train) table.
    pub application_rows: usize,
    /// Rows in the application test table (no target).
    pub test_rows: usize,
    /// Rows in the bureau table.
    pub bureau_rows: usize,
    /// Rows in the previous-applications table.
    pub previous_rows: usize,
    /// Rows in the installments table.
    pub installments_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HomeCreditScale {
    fn default() -> Self {
        HomeCreditScale {
            application_rows: 12_000,
            test_rows: 3000,
            bureau_rows: 100_000,
            previous_rows: 80_000,
            installments_rows: 120_000,
            seed: 42,
        }
    }
}

impl HomeCreditScale {
    /// A tiny instance for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        HomeCreditScale {
            application_rows: 300,
            test_rows: 80,
            bureau_rows: 600,
            previous_rows: 450,
            installments_rows: 750,
            seed: 42,
        }
    }
}

/// The generated tables. The paper's competition ships 9 CSVs; the four
/// here cover every table the three reproduced kernels actually read.
#[derive(Debug, Clone)]
pub struct HomeCredit {
    /// Labelled training applications.
    pub application: DataFrame,
    /// Unlabelled test applications (for the alignment step of W1).
    pub application_test: DataFrame,
    /// Credit-bureau records (many per applicant).
    pub bureau: DataFrame,
    /// Previous applications (many per applicant).
    pub previous: DataFrame,
    /// Installment payments (many per previous application).
    pub installments: DataFrame,
}

/// Deterministically generate the dataset.
#[must_use]
pub fn home_credit(scale: &HomeCreditScale) -> HomeCredit {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let application = application_table("application", scale.application_rows, true, &mut rng);
    let application_test = application_table("application_test", scale.test_rows, false, &mut rng);
    let bureau = bureau_table(scale.bureau_rows, scale.application_rows, &mut rng);
    let previous = previous_table(scale.previous_rows, scale.application_rows, &mut rng);
    let installments = installments_table(scale.installments_rows, scale.previous_rows, &mut rng);
    HomeCredit {
        application,
        application_test,
        bureau,
        previous,
        installments,
    }
}

const OCCUPATIONS: [&str; 8] = [
    "Laborers", "Sales", "Core", "Managers", "Drivers", "Medicine", "Security", "Cooking",
];
const ORGANIZATIONS: [&str; 10] = [
    "Business",
    "School",
    "Government",
    "Religion",
    "Other",
    "XNA",
    "Electricity",
    "Medicine",
    "Self-employed",
    "Trade",
];
const CONTRACT_TYPES: [&str; 2] = ["Cash loans", "Revolving loans"];
const GENDERS: [&str; 3] = ["M", "F", "XNA"];

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.random_range(0..options.len())]
}

/// Lognormal-ish positive amount.
fn amount(rng: &mut StdRng, base: f64, spread: f64) -> f64 {
    let z: f64 = rng.random_range(-1.0..1.0) + rng.random_range(-1.0..1.0);
    base * (spread * z).exp()
}

fn application_table(name: &str, rows: usize, with_target: bool, rng: &mut StdRng) -> DataFrame {
    let mut sk_id = Vec::with_capacity(rows);
    let mut target = Vec::with_capacity(rows);
    let mut amt_income = Vec::with_capacity(rows);
    let mut amt_credit = Vec::with_capacity(rows);
    let mut amt_annuity = Vec::with_capacity(rows);
    let mut days_birth = Vec::with_capacity(rows);
    let mut days_employed = Vec::with_capacity(rows);
    let mut ext1 = Vec::with_capacity(rows);
    let mut ext2 = Vec::with_capacity(rows);
    let mut ext3 = Vec::with_capacity(rows);
    let mut gender = Vec::with_capacity(rows);
    let mut contract = Vec::with_capacity(rows);
    let mut occupation = Vec::with_capacity(rows);
    let mut organization = Vec::with_capacity(rows);
    let mut own_car = Vec::with_capacity(rows);
    let mut cnt_children = Vec::with_capacity(rows);
    let mut region_rating = Vec::with_capacity(rows);

    for i in 0..rows {
        sk_id.push(i as i64);
        let income = amount(rng, 150_000.0, 0.4);
        let credit = amount(rng, 500_000.0, 0.5);
        let annuity = credit / rng.random_range(10.0..30.0);
        let birth = -rng.random_range(7_000.0..25_000.0);
        // ~15% sentinel anomaly, like the real data's 365243.
        let employed = if rng.random::<f64>() < 0.15 {
            365_243.0
        } else {
            -rng.random_range(100.0..12_000.0)
        };
        // External scores in [0, 1], each missing with some probability.
        let miss = |rng: &mut StdRng, p: f64, v: f64| {
            if rng.random::<f64>() < p {
                f64::NAN
            } else {
                v
            }
        };
        let e1v: f64 = rng.random::<f64>();
        let e2v: f64 = rng.random::<f64>();
        let e3v: f64 = rng.random::<f64>();
        let e1 = miss(rng, 0.4, e1v);
        let e2 = miss(rng, 0.05, e2v);
        let e3 = miss(rng, 0.2, e3v);

        // Latent default risk: low external scores, high credit-to-income
        // ratio, short employment raise it.
        let ratio = (credit / income).min(10.0) / 10.0;
        let emp_penalty = if employed > 0.0 {
            0.4
        } else {
            (employed / -12_000.0) * -0.3
        };
        let latent = 2.2 * (0.5 - e2v)
            + 1.2 * (0.5 - e3v)
            + 0.8 * (0.5 - e1v)
            + 1.5 * (ratio - 0.3)
            + emp_penalty
            + rng.random_range(-0.75..0.75);
        let p_default = sigmoid(2.0 * latent - 1.2);
        target.push(i64::from(rng.random::<f64>() < p_default));

        amt_income.push(income);
        amt_credit.push(credit);
        amt_annuity.push(if rng.random::<f64>() < 0.02 {
            f64::NAN
        } else {
            annuity
        });
        days_birth.push(birth);
        days_employed.push(employed);
        ext1.push(e1);
        ext2.push(e2);
        ext3.push(e3);
        gender.push(pick(rng, &GENDERS).to_owned());
        contract.push(pick(rng, &CONTRACT_TYPES).to_owned());
        occupation.push(if rng.random::<f64>() < 0.3 {
            String::new()
        } else {
            pick(rng, &OCCUPATIONS).to_owned()
        });
        organization.push(pick(rng, &ORGANIZATIONS).to_owned());
        own_car.push(if rng.random::<f64>() < 0.34 { "Y" } else { "N" }.to_owned());
        cnt_children.push(rng.random_range(0..4));
        region_rating.push(rng.random_range(1..4));
    }

    let mut cols = vec![Column::source(name, "sk_id", ColumnData::Int(sk_id))];
    if with_target {
        cols.push(Column::source(name, "target", ColumnData::Int(target)));
    }
    cols.extend([
        Column::source(name, "amt_income", ColumnData::Float(amt_income)),
        Column::source(name, "amt_credit", ColumnData::Float(amt_credit)),
        Column::source(name, "amt_annuity", ColumnData::Float(amt_annuity)),
        Column::source(name, "days_birth", ColumnData::Float(days_birth)),
        Column::source(name, "days_employed", ColumnData::Float(days_employed)),
        Column::source(name, "ext_source_1", ColumnData::Float(ext1)),
        Column::source(name, "ext_source_2", ColumnData::Float(ext2)),
        Column::source(name, "ext_source_3", ColumnData::Float(ext3)),
        Column::source(name, "code_gender", ColumnData::Str(gender)),
        Column::source(name, "contract_type", ColumnData::Str(contract)),
        Column::source(name, "occupation", ColumnData::Str(occupation)),
        Column::source(name, "organization", ColumnData::Str(organization)),
        Column::source(name, "own_car", ColumnData::Str(own_car)),
        Column::source(name, "cnt_children", ColumnData::Int(cnt_children)),
        Column::source(name, "region_rating", ColumnData::Int(region_rating)),
    ]);
    DataFrame::new(cols).expect("columns are equal length by construction") // co-lint:allow(no-panic) generated columns share one row count
}

fn bureau_table(rows: usize, n_applicants: usize, rng: &mut StdRng) -> DataFrame {
    let statuses = ["Active", "Closed", "Sold", "Bad debt"];
    let credit_types = ["Consumer credit", "Credit card", "Car loan", "Mortgage"];
    let mut sk_id = Vec::with_capacity(rows);
    let mut days_credit = Vec::with_capacity(rows);
    let mut amt_credit_sum = Vec::with_capacity(rows);
    let mut amt_credit_debt = Vec::with_capacity(rows);
    let mut credit_active = Vec::with_capacity(rows);
    let mut credit_type = Vec::with_capacity(rows);
    for _ in 0..rows {
        sk_id.push(rng.random_range(0..n_applicants as i64));
        days_credit.push(-rng.random_range(1.0..3_000.0));
        let sum = amount(rng, 200_000.0, 0.7);
        amt_credit_sum.push(if rng.random::<f64>() < 0.1 {
            f64::NAN
        } else {
            sum
        });
        amt_credit_debt.push(if rng.random::<f64>() < 0.25 {
            f64::NAN
        } else {
            sum * rng.random_range(0.0..0.9)
        });
        credit_active.push(pick(rng, &statuses).to_owned());
        credit_type.push(pick(rng, &credit_types).to_owned());
    }
    DataFrame::new(vec![
        Column::source("bureau", "sk_id", ColumnData::Int(sk_id)),
        Column::source("bureau", "days_credit", ColumnData::Float(days_credit)),
        Column::source(
            "bureau",
            "amt_credit_sum",
            ColumnData::Float(amt_credit_sum),
        ),
        Column::source(
            "bureau",
            "amt_credit_debt",
            ColumnData::Float(amt_credit_debt),
        ),
        Column::source("bureau", "credit_active", ColumnData::Str(credit_active)),
        Column::source("bureau", "credit_type", ColumnData::Str(credit_type)),
    ])
    // co-lint:allow(no-panic) generated columns share one row count
    .expect("equal lengths")
}

fn previous_table(rows: usize, n_applicants: usize, rng: &mut StdRng) -> DataFrame {
    let statuses = ["Approved", "Refused", "Canceled", "Unused"];
    let mut sk_id = Vec::with_capacity(rows);
    let mut prev_id = Vec::with_capacity(rows);
    let mut amt_application = Vec::with_capacity(rows);
    let mut amt_credit = Vec::with_capacity(rows);
    let mut status = Vec::with_capacity(rows);
    let mut days_decision = Vec::with_capacity(rows);
    let mut cnt_payment = Vec::with_capacity(rows);
    for i in 0..rows {
        sk_id.push(rng.random_range(0..n_applicants as i64));
        prev_id.push(i as i64);
        let app = amount(rng, 150_000.0, 0.8);
        amt_application.push(app);
        amt_credit.push(if rng.random::<f64>() < 0.05 {
            f64::NAN
        } else {
            app * rng.random_range(0.7..1.2)
        });
        status.push(pick(rng, &statuses).to_owned());
        days_decision.push(-rng.random_range(1.0..2_900.0));
        cnt_payment.push(rng.random_range(4..60));
    }
    DataFrame::new(vec![
        Column::source("previous", "sk_id", ColumnData::Int(sk_id)),
        Column::source("previous", "prev_id", ColumnData::Int(prev_id)),
        Column::source(
            "previous",
            "amt_application",
            ColumnData::Float(amt_application),
        ),
        Column::source("previous", "amt_credit_prev", ColumnData::Float(amt_credit)),
        Column::source("previous", "contract_status", ColumnData::Str(status)),
        Column::source(
            "previous",
            "days_decision",
            ColumnData::Float(days_decision),
        ),
        Column::source("previous", "cnt_payment", ColumnData::Int(cnt_payment)),
    ])
    // co-lint:allow(no-panic) generated columns share one row count
    .expect("equal lengths")
}

fn installments_table(rows: usize, n_previous: usize, rng: &mut StdRng) -> DataFrame {
    let mut sk_id = Vec::with_capacity(rows);
    let mut prev_id = Vec::with_capacity(rows);
    let mut amt_installment = Vec::with_capacity(rows);
    let mut amt_payment = Vec::with_capacity(rows);
    let mut days_installment = Vec::with_capacity(rows);
    let mut days_entry_payment = Vec::with_capacity(rows);
    for _ in 0..rows {
        let prev = rng.random_range(0..n_previous.max(1) as i64);
        prev_id.push(prev);
        // Installments belong to the applicant of their previous
        // application; the generator keys both to keep joins meaningful.
        sk_id.push(prev % 1.max(n_previous as i64 / 2));
        let inst = amount(rng, 10_000.0, 0.6);
        amt_installment.push(inst);
        amt_payment.push(inst * rng.random_range(0.5..1.1));
        let due = -rng.random_range(1.0..2_000.0);
        days_installment.push(due);
        days_entry_payment.push(due + rng.random_range(-10.0..30.0));
    }
    DataFrame::new(vec![
        Column::source("installments", "sk_id", ColumnData::Int(sk_id)),
        Column::source("installments", "prev_id", ColumnData::Int(prev_id)),
        Column::source(
            "installments",
            "amt_installment",
            ColumnData::Float(amt_installment),
        ),
        Column::source(
            "installments",
            "amt_payment",
            ColumnData::Float(amt_payment),
        ),
        Column::source(
            "installments",
            "days_installment",
            ColumnData::Float(days_installment),
        ),
        Column::source(
            "installments",
            "days_entry_payment",
            ColumnData::Float(days_entry_payment),
        ),
    ])
    // co-lint:allow(no-panic) generated columns share one row count
    .expect("equal lengths")
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_ml::dataset::supervised;
    use co_ml::linear::{LogisticParams, LogisticRegression};
    use co_ml::metrics::roc_auc;

    #[test]
    fn shapes_and_determinism() {
        let scale = HomeCreditScale::tiny();
        let a = home_credit(&scale);
        let b = home_credit(&scale);
        assert_eq!(a.application.n_rows(), 300);
        assert_eq!(a.application_test.n_rows(), 80);
        assert_eq!(a.bureau.n_rows(), 600);
        assert!(!a.application_test.has_column("target"));
        assert_eq!(
            a.application
                .column("amt_income")
                .unwrap()
                .floats()
                .unwrap(),
            b.application
                .column("amt_income")
                .unwrap()
                .floats()
                .unwrap()
        );
        let c = home_credit(&HomeCreditScale { seed: 7, ..scale });
        assert_ne!(
            a.application
                .column("amt_income")
                .unwrap()
                .floats()
                .unwrap()[0],
            c.application
                .column("amt_income")
                .unwrap()
                .floats()
                .unwrap()[0]
        );
    }

    #[test]
    fn target_is_imbalanced_but_present() {
        let hc = home_credit(&HomeCreditScale::tiny());
        let targets = hc.application.column("target").unwrap().ints().unwrap();
        let positives = targets.iter().filter(|&&t| t == 1).count();
        let rate = positives as f64 / targets.len() as f64;
        assert!((0.02..0.6).contains(&rate), "positive rate = {rate}");
    }

    #[test]
    fn target_is_learnable() {
        let hc = home_credit(&HomeCreditScale::tiny());
        // ext_source_2 (low-missing) should predict the target well above
        // chance even with a linear model.
        let df = hc
            .application
            .select(&[
                "ext_source_2",
                "ext_source_3",
                "amt_income",
                "amt_credit",
                "target",
            ])
            .unwrap();
        let df = co_ml::feature::scale(
            &df,
            co_ml::feature::ScaleKind::Standard,
            &["ext_source_2", "ext_source_3", "amt_income", "amt_credit"],
        )
        .unwrap();
        let sup = supervised(&df, "target").unwrap();
        let model = LogisticRegression::new(LogisticParams::default())
            .fit(&sup.x, &sup.y)
            .unwrap();
        let auc = roc_auc(&sup.y, &model.predict_proba(&sup.x));
        assert!(auc > 0.62, "auc = {auc}");
    }

    #[test]
    fn anomaly_and_missingness_exist() {
        let hc = home_credit(&HomeCreditScale::tiny());
        let employed = hc
            .application
            .column("days_employed")
            .unwrap()
            .floats()
            .unwrap();
        assert!(employed.contains(&365_243.0));
        let ext1 = hc
            .application
            .column("ext_source_1")
            .unwrap()
            .floats()
            .unwrap();
        let missing = ext1.iter().filter(|v| v.is_nan()).count();
        assert!(missing > 0);
    }

    #[test]
    fn side_tables_join_to_applicants() {
        let hc = home_credit(&HomeCreditScale::tiny());
        let max_app = hc.application.n_rows() as i64;
        for (table, frame) in [("bureau", &hc.bureau), ("previous", &hc.previous)] {
            let ids = frame.column("sk_id").unwrap().ints().unwrap();
            assert!(
                ids.iter().all(|&id| (0..max_app).contains(&id)),
                "{table} sk_id out of range"
            );
        }
    }
}
