//! Synthetic credit-g (the dataset of OpenML Task 31: 1000 applicants,
//! 20 attributes, binary good/bad label at a 70/30 split). Substitute for
//! the real OpenML data per DESIGN.md §2: the warmstarting and
//! quality-materialization experiments need a small, cheap, learnable
//! classification dataset — not German credit records specifically.

use co_dataframe::{Column, ColumnData, DataFrame};
use co_ml::linear::sigmoid;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The generated train/test split.
#[derive(Debug, Clone)]
pub struct CreditG {
    /// Training rows (default 700).
    pub train: DataFrame,
    /// Held-out rows (default 300) with labels, for evaluation ops.
    pub test: DataFrame,
}

/// Generate the dataset deterministically. `rows` is the total size
/// (70/30 train/test split); OpenML Task 31 uses 1000.
#[must_use]
pub fn creditg(rows: usize, seed: u64) -> CreditG {
    let mut rng = StdRng::seed_from_u64(seed);
    let purposes = [
        "radio_tv",
        "education",
        "furniture",
        "new_car",
        "used_car",
        "business",
    ];
    let housing = ["own", "rent", "free"];
    let jobs = ["unskilled", "skilled", "management"];

    let n_numeric = 10;
    let mut numeric: Vec<Vec<f64>> = (0..n_numeric).map(|_| Vec::with_capacity(rows)).collect();
    let mut purpose = Vec::with_capacity(rows);
    let mut housing_col = Vec::with_capacity(rows);
    let mut job = Vec::with_capacity(rows);
    let mut foreign = Vec::with_capacity(rows);
    let mut label = Vec::with_capacity(rows);

    // Fixed sparse ground-truth weights over the numeric features.
    let weights: Vec<f64> = (0..n_numeric)
        .map(|j| {
            if j % 3 == 0 {
                1.2
            } else if j % 3 == 1 {
                -0.8
            } else {
                0.0
            }
        })
        .collect();

    for _ in 0..rows {
        let mut score = 0.0;
        for (j, col) in numeric.iter_mut().enumerate() {
            let v: f64 = rng.random_range(-1.0..1.0);
            // A couple of features carry missing values.
            let stored = if j >= 8 && rng.random::<f64>() < 0.1 {
                f64::NAN
            } else {
                v
            };
            col.push(stored);
            score += weights[j] * v;
        }
        purpose.push(purposes[rng.random_range(0..purposes.len())].to_owned());
        housing_col.push(housing[rng.random_range(0..housing.len())].to_owned());
        job.push(jobs[rng.random_range(0..jobs.len())].to_owned());
        foreign.push(
            if rng.random::<f64>() < 0.05 {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
        );
        // Housing contributes a little signal too.
        if housing_col.last().map(String::as_str) == Some("own") {
            score += 0.4;
        }
        let p_good = sigmoid(1.3 * score + 0.85 + rng.random_range(-0.5..0.5));
        label.push(i64::from(rng.random::<f64>() < p_good));
    }

    let mut cols: Vec<Column> = numeric
        .into_iter()
        .enumerate()
        .map(|(j, v)| Column::source("credit-g", &format!("a{j}"), ColumnData::Float(v)))
        .collect();
    cols.push(Column::source(
        "credit-g",
        "purpose",
        ColumnData::Str(purpose),
    ));
    cols.push(Column::source(
        "credit-g",
        "housing",
        ColumnData::Str(housing_col),
    ));
    cols.push(Column::source("credit-g", "job", ColumnData::Str(job)));
    cols.push(Column::source(
        "credit-g",
        "foreign",
        ColumnData::Str(foreign),
    ));
    cols.push(Column::source("credit-g", "class", ColumnData::Int(label)));
    let full = DataFrame::new(cols).expect("equal lengths"); // co-lint:allow(no-panic) generated columns share one row count by construction

    let n_train = rows * 7 / 10;
    let train_rows: Vec<usize> = (0..n_train).collect();
    let test_rows: Vec<usize> = (n_train..rows).collect();
    // take_rows keeps source column ids; re-tag the split identity so
    // train/test are distinct source artifacts.
    let train = full
        .take_rows(&train_rows)
        // co-lint:allow(no-panic) split indices are generated within the row count
        .expect("train rows in range")
        .map_ids(|id| id.derive(1));
    let test = full
        .take_rows(&test_rows)
        // co-lint:allow(no-panic) split indices are generated within the row count
        .expect("test rows in range")
        .map_ids(|id| id.derive(2));
    CreditG { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_ml::dataset::supervised;
    use co_ml::metrics::roc_auc;
    use co_ml::tree::{GbtParams, GradientBoosting};

    #[test]
    fn split_and_determinism() {
        let a = creditg(1000, 0);
        assert_eq!(a.train.n_rows(), 700);
        assert_eq!(a.test.n_rows(), 300);
        assert_eq!(a.train.n_cols(), 15);
        let b = creditg(1000, 0);
        assert_eq!(
            a.train.column("a0").unwrap().floats().unwrap(),
            b.train.column("a0").unwrap().floats().unwrap()
        );
        // Train and test carry different lineage.
        assert_ne!(
            a.train.column("a0").unwrap().id(),
            a.test.column("a0").unwrap().id()
        );
    }

    #[test]
    fn labels_are_mostly_good_and_learnable() {
        let data = creditg(1000, 0);
        let labels = data.train.column("class").unwrap().ints().unwrap();
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / labels.len() as f64;
        assert!((0.55..0.85).contains(&rate), "good rate = {rate}");

        let sup_train = supervised(&data.train, "class").unwrap();
        let sup_test = supervised(&data.test, "class").unwrap();
        let model = GradientBoosting::new(GbtParams::default())
            .fit(&sup_train.x, &sup_train.y)
            .unwrap();
        let auc = roc_auc(&sup_test.y, &model.predict_proba(&sup_test.x));
        assert!(auc > 0.65, "held-out auc = {auc}");
    }
}
