//! Seeded synthetic datasets standing in for the paper's proprietary
//! inputs.

pub mod creditg;
pub mod homecredit;

pub use creditg::{creditg, CreditG};
pub use homecredit::{home_credit, HomeCredit, HomeCreditScale};
