//! The eight Kaggle-style workloads of the paper's Table 1.
//!
//! | # | description (paper) | here |
//! |---|---------------------|------|
//! | 1 | real kernel: feature engineering + logistic regression, random forest, GBT | [`w1`] |
//! | 2 | real kernel: multi-dataset joins + GBT | [`w2`] |
//! | 3 | real kernel: like W2 with more features | [`w3`] |
//! | 4 | modifies W1, GBT with different hyperparameters | [`w4`] |
//! | 5 | modifies W1, random/grid search over GBT | [`w5`] |
//! | 6 | custom: GBT on W2's features | [`w6`] |
//! | 7 | custom: GBT on W3's features | [`w7`] |
//! | 8 | custom: joins W1's and W2's features, GBT | [`w8`] |
//!
//! The decisive structural property is preserved: W4–W8 are built from the
//! *same* feature-engineering sub-pipelines as W1–W3 (same operations,
//! same parameters), so their artifacts share identities with artifacts
//! the earlier workloads produced — which is what the optimizer exploits.
//! Artifact counts are scaled down ~3x from the paper's Table 1 (which
//! reports 121–406 per workload) along with the data itself.

use crate::data::HomeCredit;
use co_core::ops::EvalMetric;
use co_core::Script;
use co_dataframe::ops::{AggFn, BinFn, MapFn};
use co_graph::{NodeId, Result, WorkloadDag};
use co_ml::feature::{ImputeStrategy, ScaleKind};
use co_ml::linear::LogisticParams;
use co_ml::tree::{ForestParams, GbtParams, TreeParams};

/// The GBT configuration the original kernels (W1–W3) train.
#[must_use]
pub fn gbt_baseline() -> GbtParams {
    GbtParams {
        n_estimators: 8,
        learning_rate: 0.25,
        tree: TreeParams {
            max_depth: 3,
            min_samples_leaf: 20,
            n_thresholds: 6,
        },
    }
}

/// The modified GBT configuration of Workloads 4 and 6–8.
#[must_use]
pub fn gbt_modified() -> GbtParams {
    GbtParams {
        n_estimators: 12,
        learning_rate: 0.15,
        ..gbt_baseline()
    }
}

/// The numeric feature columns of the application table.
const APP_NUMERIC: [&str; 9] = [
    "amt_income",
    "amt_credit",
    "amt_annuity",
    "days_birth",
    "days_employed",
    "ext_source_1",
    "ext_source_2",
    "ext_source_3",
    "cnt_children",
];

/// W1's feature engineering over an application-shaped table (shared by
/// W1, W4, W5, and W8). `labelled` distinguishes the train table (with
/// target) from the test table.
fn fe_application(s: &mut Script, app: NodeId) -> Result<NodeId> {
    // Fix the days_employed sentinel anomaly (365243 in the real data).
    let mut node = s.map(
        app,
        "days_employed",
        MapFn::Clip {
            lo: -30_000.0,
            hi: 0.0,
        },
        "days_employed",
    )?;
    // Domain ratio features the kernel engineers.
    node = s.binary(
        node,
        "amt_credit",
        "amt_income",
        BinFn::Div,
        "credit_income_ratio",
    )?;
    node = s.binary(
        node,
        "amt_annuity",
        "amt_income",
        BinFn::Div,
        "annuity_income_ratio",
    )?;
    node = s.binary(
        node,
        "days_employed",
        "days_birth",
        BinFn::Div,
        "employed_birth_ratio",
    )?;
    node = s.map(node, "amt_income", MapFn::Log1p, "log_income")?;
    node = s.map(node, "amt_credit", MapFn::Log1p, "log_credit")?;
    // Per-column mean imputation (one operation per column, as the
    // kernel's loop produces one intermediate per column).
    for col in [
        "amt_annuity",
        "ext_source_1",
        "ext_source_2",
        "ext_source_3",
    ] {
        node = s.impute(node, ImputeStrategy::Mean, &[col])?;
    }
    // Polynomial interactions of the external scores and age.
    node = s.poly(
        node,
        &["ext_source_1", "ext_source_2", "ext_source_3", "days_birth"],
    )?;
    // Categorical encodings.
    for (col, k) in [
        ("code_gender", 3),
        ("contract_type", 2),
        ("own_car", 2),
        ("occupation", 8),
        ("organization", 10),
    ] {
        node = s.one_hot(node, col, k)?;
    }
    // Standardise the continuous features.
    node = s.scale(
        node,
        ScaleKind::Standard,
        &[
            "amt_income",
            "amt_credit",
            "amt_annuity",
            "days_birth",
            "days_employed",
            "credit_income_ratio",
            "annuity_income_ratio",
            "log_income",
            "log_credit",
        ],
    )?;
    Ok(node)
}

/// The EDA cells of W1: per-column aggregates and frequency tables, each
/// a terminal the user looked at.
fn eda_terminals(s: &mut Script, app: NodeId) -> Result<()> {
    let vc = s.value_counts(app, "target")?;
    s.output(vc)?;
    for col in APP_NUMERIC {
        let mean = s.agg(app, col, AggFn::Mean)?;
        s.output(mean)?;
        let std = s.agg(app, col, AggFn::Std)?;
        s.output(std)?;
    }
    let sub = s.select(
        app,
        &[
            "target",
            "ext_source_1",
            "ext_source_2",
            "ext_source_3",
            "days_birth",
        ],
    )?;
    let corr = s.corr(sub)?;
    s.output(corr)?;
    let described = s.describe(app)?;
    s.output(described)?;
    // Per-category default rates, sorted — the notebook's bar charts.
    for col in ["occupation", "organization", "code_gender"] {
        let vc = s.value_counts(app, col)?;
        s.output(vc)?;
        let encoded = s.label_encode(app, col)?;
        let rates = s.groupby(
            encoded,
            col,
            &[("target", AggFn::Mean), ("target", AggFn::Count)],
        )?;
        let sorted = s.sort(rates, "target_mean", false)?;
        s.output(sorted)?;
    }
    // Age-band analysis: sort by age, bucket means.
    let by_age = s.sort(app, "days_birth", true)?;
    let age_stats = s.groupby(by_age, "region_rating", &[("target", AggFn::Mean)])?;
    s.output(age_stats)?;
    Ok(())
}

/// Workload 1: EDA + feature engineering + logistic regression, random
/// forest, and GBT, with train/test alignment (paper §7.2 mentions W1's
/// two alignment operations).
pub fn w1(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let app = s.load("application", data.application.clone());
    let test = s.load("application_test", data.application_test.clone());

    eda_terminals(&mut s, app)?;

    let fe_train = fe_application(&mut s, app)?;
    let fe_test = fe_application(&mut s, test)?;
    // Align encoded train/test (drops categories unseen on one side, and
    // the target column — re-attach it afterwards).
    let (aligned_train, aligned_test) = s.align(fe_train, fe_test)?;
    s.output(aligned_test)?;
    let target = s.select(fe_train, &["target"])?;
    let train_xy = s.hconcat(&[aligned_train, target])?;
    // The notebook saves the engineered training table as well.
    s.output(train_xy)?;

    let lr = s.train_logistic(
        train_xy,
        "target",
        LogisticParams {
            lr: 0.3,
            max_iter: 30,
            ..LogisticParams::default()
        },
    )?;
    let lr_score = s.evaluate(lr, train_xy, "target", EvalMetric::RocAuc)?;
    s.output(lr_score)?;

    let rf = s.train_forest(
        train_xy,
        "target",
        ForestParams {
            n_estimators: 5,
            tree: TreeParams {
                max_depth: 3,
                min_samples_leaf: 20,
                n_thresholds: 6,
            },
            feature_fraction: 0.5,
            seed: 42,
        },
    )?;
    let rf_score = s.evaluate(rf, train_xy, "target", EvalMetric::RocAuc)?;
    s.output(rf_score)?;

    let gbt = s.train_gbt(train_xy, "target", gbt_baseline())?;
    let gbt_score = s.evaluate(gbt, train_xy, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(gbt_score)?;
    Ok(s.into_dag())
}

/// The bureau aggregation features of W2 (and W3, W6–W8): one group-by
/// per (column, aggregate) pair, left-joined into the application table.
fn bureau_features(s: &mut Script, app: NodeId, bureau: NodeId) -> Result<NodeId> {
    let mut node = app;
    for col in ["days_credit", "amt_credit_sum", "amt_credit_debt"] {
        for agg in [
            AggFn::Count,
            AggFn::Mean,
            AggFn::Max,
            AggFn::Min,
            AggFn::Sum,
        ] {
            let grouped = s.groupby(bureau, "sk_id", &[(col, agg)])?;
            node = s.left_join(node, grouped, "sk_id")?;
        }
    }
    // Categorical counts: one-hot the credit status, then sum indicators
    // per applicant.
    let encoded = s.one_hot(bureau, "credit_active", 4)?;
    for status in ["Active", "Closed", "Sold", "Bad debt"] {
        let col = format!("credit_active={status}");
        let grouped = s.groupby(encoded, "sk_id", &[(col.as_str(), AggFn::Sum)])?;
        node = s.left_join(node, grouped, "sk_id")?;
    }
    // Unmatched applicants get zero counts.
    for col in [
        "days_credit_count",
        "credit_active=Active_sum",
        "credit_active=Closed_sum",
    ] {
        node = s.map(node, col, MapFn::FillNa(0.0), col)?;
    }
    Ok(node)
}

/// The previous-application features of W2/W3.
fn previous_features(s: &mut Script, app: NodeId, previous: NodeId) -> Result<NodeId> {
    let mut node = app;
    for col in [
        "amt_application",
        "amt_credit_prev",
        "days_decision",
        "cnt_payment",
    ] {
        for agg in [AggFn::Mean, AggFn::Max, AggFn::Sum] {
            let grouped = s.groupby(previous, "sk_id", &[(col, agg)])?;
            node = s.left_join(node, grouped, "sk_id")?;
        }
    }
    let encoded = s.one_hot(previous, "contract_status", 4)?;
    for status in ["Approved", "Refused"] {
        let col = format!("contract_status={status}");
        let grouped = s.groupby(encoded, "sk_id", &[(col.as_str(), AggFn::Sum)])?;
        node = s.left_join(node, grouped, "sk_id")?;
    }
    Ok(node)
}

/// The installment-payment features of W3: lateness and payment-ratio
/// aggregates.
fn installments_features(s: &mut Script, app: NodeId, installments: NodeId) -> Result<NodeId> {
    let mut inst = s.binary(
        installments,
        "days_entry_payment",
        "days_installment",
        BinFn::Sub,
        "days_late",
    )?;
    inst = s.binary(
        inst,
        "amt_payment",
        "amt_installment",
        BinFn::Div,
        "payment_ratio",
    )?;
    let mut node = app;
    for col in ["days_late", "payment_ratio", "amt_payment"] {
        for agg in [AggFn::Mean, AggFn::Max, AggFn::Min, AggFn::Sum] {
            let grouped = s.groupby(inst, "sk_id", &[(col, agg)])?;
            node = s.left_join(node, grouped, "sk_id")?;
        }
    }
    Ok(node)
}

/// Numeric cleanup applied after the join-heavy feature construction.
fn clean_joined(s: &mut Script, node: NodeId) -> Result<NodeId> {
    let mut node = node;
    for col in [
        "amt_annuity",
        "ext_source_1",
        "ext_source_2",
        "ext_source_3",
    ] {
        node = s.impute(node, ImputeStrategy::Median, &[col])?;
    }
    node = s.binary(
        node,
        "amt_credit",
        "amt_income",
        BinFn::Div,
        "credit_income_ratio",
    )?;
    node = s.one_hot(node, "code_gender", 3)?;
    node = s.one_hot(node, "contract_type", 2)?;
    Ok(node)
}

/// Workload 2: joins the bureau and previous tables into the application
/// table and trains the baseline GBT.
pub fn w2(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let (features, _) = w2_features(&mut s, data)?;
    // The kernel saves the engineered feature table for others to use.
    s.output(features)?;
    let gbt = s.train_gbt(features, "target", gbt_baseline())?;
    let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// W2's feature table (shared with W6 and W8).
fn w2_features(s: &mut Script, data: &HomeCredit) -> Result<(NodeId, NodeId)> {
    let app = s.load("application", data.application.clone());
    let bureau = s.load("bureau", data.bureau.clone());
    let previous = s.load("previous", data.previous.clone());
    let mut node = bureau_features(s, app, bureau)?;
    node = previous_features(s, node, previous)?;
    node = clean_joined(s, node)?;
    Ok((node, app))
}

/// W3's feature table (W2 plus installments and extra engineered
/// columns; "the resulting preprocessed datasets having more features").
fn w3_features(s: &mut Script, data: &HomeCredit) -> Result<NodeId> {
    let (mut node, _) = w2_features(s, data)?;
    let installments = s.load("installments", data.installments.clone());
    node = installments_features(s, node, installments)?;
    // Extra pairwise ratio features over the aggregate columns.
    for (a, b, out) in [
        ("amt_credit_sum_mean", "amt_income", "bureau_income_ratio"),
        (
            "amt_credit_debt_mean",
            "amt_credit_sum_mean",
            "debt_credit_ratio",
        ),
        ("amt_application_mean", "amt_income", "prev_income_ratio"),
        ("days_late_mean", "cnt_payment_sum", "late_per_payment"),
        ("amt_payment_sum", "amt_income", "payments_income_ratio"),
    ] {
        node = s.binary(node, a, b, BinFn::Div, out)?;
    }
    node = s.one_hot(node, "occupation", 8)?;
    node = s.one_hot(node, "organization", 10)?;
    Ok(node)
}

/// Workload 3: W2 with more features.
pub fn w3(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let features = w3_features(&mut s, data)?;
    // As in W2, the engineered feature table is itself an output.
    s.output(features)?;
    let gbt = s.train_gbt(features, "target", gbt_baseline())?;
    let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// W4's feature table: exactly W1's engineered training table.
fn w1_features(s: &mut Script, data: &HomeCredit) -> Result<NodeId> {
    let app = s.load("application", data.application.clone());
    let test = s.load("application_test", data.application_test.clone());
    let fe_train = fe_application(s, app)?;
    let fe_test = fe_application(s, test)?;
    let (aligned_train, _aligned_test) = s.align(fe_train, fe_test)?;
    let target = s.select(fe_train, &["target"])?;
    s.hconcat(&[aligned_train, target])
}

/// Workload 4: a real modification of W1 — the same features, a GBT with
/// a different set of hyperparameters.
pub fn w4(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let features = w1_features(&mut s, data)?;
    let gbt = s.train_gbt(features, "target", gbt_modified())?;
    let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// Workload 5: grid search for the GBT over W1's features.
pub fn w5(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let features = w1_features(&mut s, data)?;
    for n_estimators in [4, 8, 12] {
        for learning_rate in [0.1, 0.25] {
            let params = GbtParams {
                n_estimators,
                learning_rate,
                ..gbt_baseline()
            };
            let gbt = s.train_gbt(features, "target", params)?;
            let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
            s.output(score)?;
        }
    }
    Ok(s.into_dag())
}

/// Workload 6: the modified GBT trained on W2's generated features.
pub fn w6(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let (features, _) = w2_features(&mut s, data)?;
    let gbt = s.train_gbt(features, "target", gbt_modified())?;
    let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// Workload 7: the modified GBT trained on W3's generated features.
pub fn w7(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let features = w3_features(&mut s, data)?;
    let gbt = s.train_gbt(features, "target", gbt_modified())?;
    let score = s.evaluate(gbt, features, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// Workload 8: join W1's and W2's feature tables, then train the modified
/// GBT on the combined features.
pub fn w8(data: &HomeCredit) -> Result<WorkloadDag> {
    let mut s = Script::new();
    let w1_fe = w1_features(&mut s, data)?;
    let (w2_fe, _) = w2_features(&mut s, data)?;
    // Keep only the aggregate features from W2's table to join in.
    let w2_aggs = s.select(
        w2_fe,
        &[
            "sk_id",
            "days_credit_count",
            "days_credit_mean",
            "amt_credit_sum_mean",
            "amt_credit_debt_mean",
            "amt_application_mean",
            "days_decision_mean",
            "credit_active=Active_sum",
            "contract_status=Approved_sum",
        ],
    )?;
    // W1's feature table lost sk_id to alignment? It kept it (both train
    // and test carry sk_id). Join on it.
    let joined = s.join(w1_fe, w2_aggs, "sk_id")?;
    let mut cleaned = joined;
    for col in [
        "days_credit_mean",
        "amt_credit_sum_mean",
        "amt_credit_debt_mean",
    ] {
        cleaned = s.map(cleaned, col, MapFn::FillNa(0.0), col)?;
    }
    let gbt = s.train_gbt(cleaned, "target", gbt_modified())?;
    let score = s.evaluate(gbt, cleaned, "target", EvalMetric::RocAuc)?;
    s.output(gbt)?;
    s.output(score)?;
    Ok(s.into_dag())
}

/// All eight workloads in Table 1 order.
pub fn all_workloads(data: &HomeCredit) -> Result<Vec<WorkloadDag>> {
    Ok(vec![
        w1(data)?,
        w2(data)?,
        w3(data)?,
        w4(data)?,
        w5(data)?,
        w6(data)?,
        w7(data)?,
        w8(data)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{home_credit, HomeCreditScale};
    use co_core::{OptimizerServer, ServerConfig};
    use std::collections::HashSet;

    fn data() -> HomeCredit {
        home_credit(&HomeCreditScale::tiny())
    }

    #[test]
    fn workloads_build_with_expected_shape() {
        let data = data();
        let dags = all_workloads(&data).unwrap();
        assert_eq!(dags.len(), 8);
        for (i, dag) in dags.iter().enumerate() {
            assert!(
                dag.n_nodes() >= 20,
                "workload {} has only {} nodes",
                i + 1,
                dag.n_nodes()
            );
            assert!(
                !dag.terminals().is_empty(),
                "workload {} has no terminals",
                i + 1
            );
        }
        // W1 is the largest builder of EDA artifacts.
        assert!(dags[0].n_nodes() > 60, "w1 nodes = {}", dags[0].n_nodes());
    }

    #[test]
    fn derived_workloads_share_artifacts_with_their_bases() {
        let data = data();
        let overlap = |a: &WorkloadDag, b: &WorkloadDag| {
            let ids: HashSet<_> = a.nodes().iter().map(|n| n.artifact).collect();
            b.nodes()
                .iter()
                .filter(|n| ids.contains(&n.artifact))
                .count()
        };
        let w1 = w1(&data).unwrap();
        let w4 = w4(&data).unwrap();
        let w5 = w5(&data).unwrap();
        // W4 and W5 rebuild W1's whole feature pipeline.
        assert!(
            overlap(&w1, &w4) > 20,
            "w1/w4 overlap = {}",
            overlap(&w1, &w4)
        );
        assert!(overlap(&w4, &w5) > 20);
        // W4 trains a *different* GBT than W1.
        let w1_ids: HashSet<_> = w1.nodes().iter().map(|n| n.artifact).collect();
        let w4_terminal_model = w4
            .terminals()
            .iter()
            .map(|t| w4.nodes()[t.0].artifact)
            .find(|a| !w1_ids.contains(a));
        assert!(w4_terminal_model.is_some());

        let w2 = w2(&data).unwrap();
        let w6 = w6(&data).unwrap();
        assert!(overlap(&w2, &w6) > 20);
        let w3 = w3(&data).unwrap();
        let w7 = w7(&data).unwrap();
        assert!(overlap(&w3, &w7) > overlap(&w2, &w7) / 2);
    }

    #[test]
    fn w1_executes_and_trains_useful_models() {
        let data = data();
        let server = OptimizerServer::new(ServerConfig::baseline());
        let (dag, report) = server.run_workload(w1(&data).unwrap()).unwrap();
        assert!(report.ops_executed > 30);
        assert!(
            report.best_model_quality > 0.6,
            "best quality = {}",
            report.best_model_quality
        );
        // Terminal aggregates hold evaluation scores in [0, 1].
        for t in dag.terminals() {
            let node = dag.node(t).unwrap();
            if let Some(v) = node.computed.as_ref().and_then(|v| v.as_aggregate()) {
                if let Some(x) = v.as_f64() {
                    assert!(x.is_nan() || (-1e12..1e12).contains(&x));
                }
            }
        }
    }

    #[test]
    fn join_heavy_workloads_execute() {
        let data = data();
        let server = OptimizerServer::new(ServerConfig::baseline());
        for build in [w2, w3, w8] {
            let (_, report) = server.run_workload(build(&data).unwrap()).unwrap();
            assert!(report.ops_executed > 10);
            assert!(
                report.best_model_quality > 0.55,
                "q = {}",
                report.best_model_quality
            );
        }
    }
}
