//! Property suite over the wire codec: every request/response type
//! round-trips through encode → frame → read → decode, and any
//! single-byte corruption of a frame is detected (a typed error) —
//! never a panic, never a silently different message.

use co_dataframe::ColumnData;
use co_serve::frame::{encode_frame, read_frame, ProtocolError, HEADER_LEN};
use co_serve::proto::{Request, Response, StatsSnapshot, WorkloadSummary};
use co_serve::spec::{AggSpec, MapFnSpec, SpecStep, WorkloadSpec};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

/// Hostile-ish strings: empty, multi-byte UTF-8, quotes, NULs,
/// separators — everything a codec that splits on bytes would trip on.
fn arb_string() -> impl Strategy<Value = String> {
    vec(
        select(vec![
            'a', 'Z', '0', '_', ' ', '"', '\\', '\n', '\0', 'é', '日', '🦀',
        ]),
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_column_data() -> BoxedStrategy<ColumnData> {
    (0u8..4)
        .prop_flat_map(|kind| match kind {
            0 => vec(-50i64..50, 0..6).prop_map(ColumnData::Int).boxed(),
            1 => vec(-1.0f64..1.0, 0..6).prop_map(ColumnData::Float).boxed(),
            2 => vec(arb_string(), 0..4).prop_map(ColumnData::Str).boxed(),
            _ => vec(prop_bool::ANY, 0..6).prop_map(ColumnData::Bool).boxed(),
        })
        .boxed()
}

fn arb_step() -> BoxedStrategy<SpecStep> {
    (0u8..6)
        .prop_flat_map(|kind| match kind {
            0 => arb_string()
                .prop_map(|dataset| SpecStep::Load { dataset })
                .boxed(),
            1 => (0u32..8, vec(arb_string(), 0..4))
                .prop_map(|(input, columns)| SpecStep::Select { input, columns })
                .boxed(),
            2 => (0u32..8, arb_string(), -10.0f64..10.0)
                .prop_map(|(input, column, value)| SpecStep::FilterGt {
                    input,
                    column,
                    value,
                })
                .boxed(),
            3 => (
                0u32..8,
                arb_string(),
                select(vec![
                    MapFnSpec::Log1p,
                    MapFnSpec::Abs,
                    MapFnSpec::Sqrt,
                    MapFnSpec::AddConst(2.5),
                    MapFnSpec::MulConst(-1.5),
                ]),
                arb_string(),
            )
                .prop_map(|(input, column, f, out)| SpecStep::Map {
                    input,
                    column,
                    f,
                    out,
                })
                .boxed(),
            4 => (0u32..8, arb_string(), 0.0f64..1.0, 1u32..100)
                .prop_map(|(input, label, lr, max_iter)| SpecStep::TrainLogistic {
                    input,
                    label,
                    lr,
                    max_iter,
                })
                .boxed(),
            _ => (
                0u32..8,
                arb_string(),
                select(vec![
                    AggSpec::Sum,
                    AggSpec::Mean,
                    AggSpec::Min,
                    AggSpec::Max,
                    AggSpec::Count,
                    AggSpec::Std,
                ]),
            )
                .prop_map(|(input, column, f)| SpecStep::Agg { input, column, f })
                .boxed(),
        })
        .boxed()
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (vec(arb_step(), 0..5), vec(0u32..8, 0..3))
        .prop_map(|(steps, outputs)| WorkloadSpec { steps, outputs })
}

fn arb_request() -> BoxedStrategy<Request> {
    (0u8..6)
        .prop_flat_map(|kind| match kind {
            0 => (arb_string(), 0u32..5)
                .prop_map(|(client, proto)| Request::Hello { client, proto })
                .boxed(),
            1 => (arb_string(), vec((arb_string(), arb_column_data()), 0..4))
                .prop_map(|(name, columns)| Request::RegisterDataset { name, columns })
                .boxed(),
            2 => (arb_spec(), prop_bool::ANY, 0u64..100_000)
                .prop_map(|(spec, with_deadline, ms)| Request::Submit {
                    spec,
                    deadline_ms: with_deadline.then_some(ms),
                })
                .boxed(),
            3 => Just(Request::Stats).boxed(),
            4 => Just(Request::Ping).boxed(),
            _ => Just(Request::Drain).boxed(),
        })
        .boxed()
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    (
        (
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0.0f64..100.0,
            0.0f64..100.0,
        ),
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
        (
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
            0u64..1000,
        ),
        (0u64..1000, prop_bool::ANY, 1u64..16, 0u64..1_000_000),
        (0u64..3, 0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..1000, 0u64..1000, 0u64..1000),
    )
        .prop_map(|(a, b, c, d, e, f)| StatsSnapshot {
            workloads: a.0,
            ops_executed: a.1,
            artifacts_loaded: a.2,
            warmstarts: a.3,
            run_seconds: a.4,
            baseline_seconds: a.5,
            failed_workloads: b.0,
            salvaged_artifacts: b.1,
            journal_records_replayed: b.2,
            torn_tail_truncated: b.3,
            snapshots_compacted: b.4,
            connections: c.0,
            submitted: c.1,
            served: c.2,
            rejected_overload: c.3,
            rejected_draining: c.4,
            timed_out: c.5,
            protocol_errors: d.0,
            draining: d.1,
            shards: d.2,
            lock_wait_ns: d.3,
            durability_health: e.0,
            repair_attempts: e.1,
            repairs_succeeded: e.2,
            publishes_rejected_readonly: e.3,
            scrub_checked: f.0,
            scrub_healed: f.1,
            scrub_quarantined: f.2,
        })
}

fn arb_response() -> BoxedStrategy<Response> {
    (0u8..12)
        .prop_flat_map(|kind| match kind {
            0 => (0u64..1 << 32, 0u32..5)
                .prop_map(|(session, proto)| Response::Welcome { session, proto })
                .boxed(),
            1 => arb_string()
                .prop_map(|qualified| Response::DatasetRegistered { qualified })
                .boxed(),
            2 => (0u64..100, 0u64..100, 0u64..100, 0.0f64..10.0, 0.0f64..500.0)
                .prop_map(
                    |(ops_executed, artifacts_loaded, warmstarts, run_seconds, queue_ms)| {
                        Response::Done(WorkloadSummary {
                            ops_executed,
                            artifacts_loaded,
                            warmstarts,
                            run_seconds,
                            queue_ms,
                        })
                    },
                )
                .boxed(),
            3 => (1u64..60_000)
                .prop_map(|retry_after_ms| Response::Overloaded { retry_after_ms })
                .boxed(),
            4 => Just(Response::Draining).boxed(),
            5 => (0u64..60_000)
                .prop_map(|waited_ms| Response::TimedOut { waited_ms })
                .boxed(),
            6 => (arb_string(), prop_bool::ANY, 0u64..50)
                .prop_map(|(error, transient, salvaged)| Response::Failed {
                    error,
                    transient,
                    salvaged,
                })
                .boxed(),
            7 => arb_stats().prop_map(Response::StatsReply).boxed(),
            8 => Just(Response::Pong).boxed(),
            9 => Just(Response::DrainStarted).boxed(),
            10 => (1u64..60_000)
                .prop_map(|retry_after_ms| Response::ReadOnly { retry_after_ms })
                .boxed(),
            _ => arb_string()
                .prop_map(|message| Response::Bad { message })
                .boxed(),
        })
        .boxed()
}

/// Round-trip through the full stack: encode → frame → read → decode.
/// Equality is checked on re-encoded bytes so float payloads (NaN-free
/// here, but the codec must not care) compare exactly.
fn frame_round_trip(payload: &[u8]) -> Vec<u8> {
    let framed = encode_frame(payload);
    let mut cursor = std::io::Cursor::new(framed);
    read_frame(&mut cursor).expect("well-formed frame reads back")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn requests_round_trip(request in arb_request()) {
        let encoded = request.encode();
        let read_back = frame_round_trip(&encoded);
        prop_assert_eq!(&read_back, &encoded);
        let decoded = Request::decode(&read_back);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap().encode(), encoded);
    }

    fn responses_round_trip(response in arb_response()) {
        let encoded = response.encode();
        let read_back = frame_round_trip(&encoded);
        prop_assert_eq!(&read_back, &encoded);
        let decoded = Response::decode(&read_back);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap().encode(), encoded);
    }

    /// Any single-byte corruption of a framed message is detected by
    /// the frame layer as a typed error — length and checksum fields
    /// included — and never panics or returns a different payload.
    fn single_byte_corruption_detected(
        request in arb_request(),
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let framed = encode_frame(&request.encode());
        let pos = flip_pos % framed.len();
        let mut corrupted = framed.clone();
        corrupted[pos] ^= 1 << flip_bit;
        let mut cursor = std::io::Cursor::new(corrupted);
        match read_frame(&mut cursor) {
            Err(
                ProtocolError::BadChecksum
                | ProtocolError::Oversized { .. }
                | ProtocolError::Truncated { .. },
            ) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "corruption at byte {pos} surfaced as non-frame error {other:?}"
                )))
            }
            Ok(_) => {
                return Err(TestCaseError::fail(format!(
                    "corruption at byte {pos} went undetected"
                )))
            }
        }
    }

    /// Decoding arbitrary bytes is total: any input is `Ok` or a typed
    /// error, never a panic — the server feeds raw frame payloads
    /// straight into these.
    fn decode_is_total(bytes in vec(0u8..=255u8, 0..64)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// A corrupted frame is *confined*: after the reader rejects it,
    /// a subsequent well-formed frame on the same stream still reads
    /// (the decoder consumed exactly the bytes the bad header claimed,
    /// so recovery at the transport layer is a clean close — but the
    /// frame reader itself must not wedge on the leftover bytes).
    fn truncated_frames_do_not_wedge(request in arb_request(), cut in 1usize..64) {
        let framed = encode_frame(&request.encode());
        let keep = framed.len().saturating_sub(cut).max(1);
        let mut cursor = std::io::Cursor::new(framed[..keep].to_vec());
        // Whether the cut lands mid-header or mid-payload, the reader
        // reports a typed truncation with what it actually saw.
        let result = read_frame(&mut cursor);
        prop_assert!(
            matches!(result, Err(ProtocolError::Truncated { .. })),
            "unexpected result for cut={} (kept {} of {}, header {}): {:?}",
            cut, keep, framed.len(), HEADER_LEN, result
        );
    }
}
