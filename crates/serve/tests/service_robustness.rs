//! End-to-end robustness suite for the serve front-end: real TCP
//! connections against a real (often durable) optimizer server —
//! overload rejection, deadline shedding, malformed-frame confinement,
//! drain under load, and the connection-level fault matrix, each
//! finishing with an `egfsck`-clean data directory.

use co_core::{DurabilityConfig, OptimizerServer, ServerConfig};
use co_dataframe::ColumnData;
use co_graph::{fsck, FaultInjector, NetFault};
use co_serve::frame::{encode_frame, read_frame, ProtocolError};
use co_serve::{
    start, AggSpec, Client, MapFnSpec, Request, Response, RetryConfig, ServeConfig, SpecStep,
    WorkloadSpec,
};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn columns(seed: i64) -> Vec<(String, ColumnData)> {
    let f0: Vec<f64> = (0..32)
        .map(|i| f64::from(i) / 32.0 + seed as f64 * 1e-6)
        .collect();
    let f1: Vec<f64> = (0..32).map(|i| f64::from(i % 7) - 3.0).collect();
    vec![
        ("f0".to_owned(), ColumnData::Float(f0)),
        ("f1".to_owned(), ColumnData::Float(f1)),
    ]
}

/// Load → filter → map(+const) → mean; `salt` makes the map op (and
/// everything downstream) unique, so reuse cannot absorb the work.
fn spec(salt: f64) -> WorkloadSpec {
    WorkloadSpec {
        steps: vec![
            SpecStep::Load {
                dataset: "d".to_owned(),
            },
            SpecStep::FilterGt {
                input: 0,
                column: "f0".to_owned(),
                value: 0.1,
            },
            SpecStep::Map {
                input: 1,
                column: "f0".to_owned(),
                f: MapFnSpec::AddConst(salt),
                out: "salted".to_owned(),
            },
            SpecStep::Agg {
                input: 2,
                column: "salted".to_owned(),
                f: AggSpec::Mean,
            },
        ],
        outputs: vec![3],
    }
}

fn durable_serve(
    dir: &PathBuf,
    configure: impl FnOnce(&mut ServeConfig),
) -> (co_serve::ServeHandle, Arc<OptimizerServer>) {
    let (server, _recovery) = OptimizerServer::open(
        ServerConfig::collaborative(64 * 1024 * 1024),
        DurabilityConfig::new(dir),
    )
    .expect("open durable server");
    let server = Arc::new(server);
    let mut config = ServeConfig::new("127.0.0.1:0");
    configure(&mut config);
    let handle = start(Arc::clone(&server), config).expect("bind");
    (handle, server)
}

fn memory_serve(
    configure: impl FnOnce(&mut ServeConfig),
) -> (co_serve::ServeHandle, Arc<OptimizerServer>) {
    let server = Arc::new(OptimizerServer::new(ServerConfig::collaborative(
        64 * 1024 * 1024,
    )));
    let mut config = ServeConfig::new("127.0.0.1:0");
    configure(&mut config);
    let handle = start(Arc::clone(&server), config).expect("bind");
    (handle, server)
}

#[test]
fn end_to_end_submit_and_reuse_over_tcp() {
    let dir = tmp_dir("serve_e2e");
    let (mut handle, _server) = durable_serve(&dir, |_| {});
    let addr = handle.local_addr();

    let mut client = Client::connect(addr, "e2e").expect("connect");
    client.ping().expect("ping");
    let qualified = client.register_dataset("d", columns(1)).expect("register");
    assert!(qualified.starts_with("d@"), "qualified name: {qualified}");

    let first = client.submit(&spec(0.5), None).expect("submit");
    let Response::Done(first) = first else {
        panic!("first submission not served: {first:?}");
    };
    assert!(first.ops_executed > 0);

    // Same spec again: the Experiment Graph serves it from reuse.
    let second = client.submit(&spec(0.5), None).expect("submit");
    let Response::Done(second) = second else {
        panic!("second submission not served: {second:?}");
    };
    assert!(
        second.ops_executed < first.ops_executed || second.artifacts_loaded > 0,
        "no reuse: {second:?}"
    );

    // A second client registering *identical* content shares the
    // namespace, so its workloads also reuse.
    let mut other = Client::connect(addr, "e2e-b").expect("connect");
    let other_qualified = other.register_dataset("d", columns(1)).expect("register");
    assert_eq!(qualified, other_qualified);

    let stats = handle.join().expect("drain");
    assert_eq!(stats.served, 2);
    assert_eq!(stats.submitted, 2);
    assert!(fsck::check_data_dir(&dir, true)
        .expect("fsck")
        .violations
        .is_empty());
}

#[test]
fn stats_exposes_recovery_counters_over_the_wire() {
    let dir = tmp_dir("serve_recovery");
    {
        let (handle, _server) = durable_serve(&dir, |_| {});
        let mut client = Client::connect(handle.local_addr(), "writer").expect("connect");
        client.register_dataset("d", columns(2)).expect("register");
        let Response::Done(_) = client.submit(&spec(1.0), None).expect("submit") else {
            panic!("submission not served");
        };
        // Drop without join: journal keeps the records, no snapshot —
        // the reopen below must replay them.
        drop(handle);
    }
    let (mut handle, _server) = durable_serve(&dir, |_| {});
    let mut client = Client::connect(handle.local_addr(), "reader").expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.journal_records_replayed >= 1,
        "no journal replay visible over the wire: {stats:?}"
    );
    assert!(!stats.draining);
    handle.join().expect("drain");
}

#[test]
fn overload_rejects_with_retry_hint_and_retry_succeeds() {
    let faults = Arc::new(FaultInjector::new());
    faults.inject_latency("map", Duration::from_millis(60));
    let (mut handle, server) = memory_serve(|c| {
        c.workers = 1;
        c.queue_depth = 1;
    });
    server.set_fault_injector(Arc::clone(&faults));
    let addr = handle.local_addr();

    let overloads = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for i in 0..6 {
            let overloads = Arc::clone(&overloads);
            let served = Arc::clone(&served);
            scope.spawn(move || {
                let mut client = Client::connect(addr, &format!("burst-{i}")).expect("connect");
                client.register_dataset("d", columns(3)).expect("register");
                // Unique salts: every submission really executes (and
                // really stalls on the injected map latency).
                match client
                    .submit(&spec(2.0 + f64::from(i)), None)
                    .expect("submit")
                {
                    Response::Done(_) => {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Overloaded { retry_after_ms } => {
                        assert!(retry_after_ms >= 10, "hint too small: {retry_after_ms}");
                        overloads.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            });
        }
    });
    assert!(
        overloads.load(Ordering::Relaxed) > 0,
        "burst past queue depth produced no Overloaded rejections"
    );
    assert!(served.load(Ordering::Relaxed) > 0);

    // A well-behaved client with retry gets through once the burst
    // clears.
    let mut client = Client::connect(addr, "patient").expect("connect");
    client.register_dataset("d", columns(3)).expect("register");
    let response = client
        .submit_with_retry(&spec(99.0), None, &RetryConfig::default())
        .expect("retry submit");
    assert!(matches!(response, Response::Done(_)), "{response:?}");
    handle.join().expect("drain");
}

#[test]
fn deadlines_shed_queued_work_and_cut_execution() {
    let faults = Arc::new(FaultInjector::new());
    faults.inject_latency("map", Duration::from_millis(150));
    let (mut handle, server) = memory_serve(|c| {
        c.workers = 1;
        c.queue_depth = 8;
    });
    server.set_fault_injector(Arc::clone(&faults));
    let addr = handle.local_addr();

    // Mid-execution: the map op stalls past the 50 ms request deadline,
    // so the executor's workload deadline (propagated from the request)
    // cuts the remaining ops and the client sees TimedOut.
    let mut client = Client::connect(addr, "deadline").expect("connect");
    client.register_dataset("d", columns(4)).expect("register");
    let response = client.submit(&spec(5.0), Some(50)).expect("submit");
    assert!(
        matches!(response, Response::TimedOut { .. }),
        "mid-execution deadline not enforced: {response:?}"
    );

    // Queue shedding: park the single worker on a slow workload, then
    // submit with a deadline far shorter than the wait — the job must
    // be shed at dequeue without running.
    std::thread::scope(|scope| {
        let slow = scope.spawn(move || {
            let mut c = Client::connect(addr, "slow").expect("connect");
            c.register_dataset("d", columns(4)).expect("register");
            c.submit(&spec(6.0), None).expect("submit")
        });
        std::thread::sleep(Duration::from_millis(40));
        let mut hurried = Client::connect(addr, "hurried").expect("connect");
        hurried.register_dataset("d", columns(4)).expect("register");
        let response = hurried.submit(&spec(7.0), Some(5)).expect("submit");
        assert!(
            matches!(response, Response::TimedOut { .. }),
            "queued-past-deadline work not shed: {response:?}"
        );
        let slow_response = slow.join().expect("slow client");
        assert!(
            matches!(slow_response, Response::Done(_)),
            "{slow_response:?}"
        );
    });

    let stats = handle.join().expect("drain");
    assert!(stats.timed_out >= 2, "timed_out counter: {stats:?}");
}

#[test]
fn bad_frames_close_only_their_connection() {
    let (mut handle, _server) = memory_serve(|_| {});
    let addr = handle.local_addr();

    // Corrupted checksum: typed error reply, then close.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut frame = encode_frame(&Request::Ping.encode());
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        stream.write_all(&frame).expect("write");
        stream.flush().expect("flush");
        let reply = read_frame(&mut stream).expect("server replies before closing");
        let response = Response::decode(&reply).expect("typed response");
        assert!(
            matches!(response, Response::Bad { .. }),
            "checksum corruption not reported: {response:?}"
        );
        // ...and the connection is done.
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtocolError::Closed | ProtocolError::Truncated { .. } | ProtocolError::Io(_))
        ));
    }

    // Oversized length prefix (u32::MAX, i.e. a "negative" i32): the
    // reader rejects it before allocating anything.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&header).expect("write");
        stream.flush().expect("flush");
        let reply = read_frame(&mut stream).expect("server replies before closing");
        let response = Response::decode(&reply).expect("typed response");
        assert!(matches!(response, Response::Bad { .. }), "{response:?}");
    }

    // A frame whose payload decodes to garbage: same containment.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = encode_frame(&[0xEE, 0x00, 0x01]);
        stream.write_all(&frame).expect("write");
        stream.flush().expect("flush");
        let reply = read_frame(&mut stream).expect("server replies before closing");
        let response = Response::decode(&reply).expect("typed response");
        assert!(matches!(response, Response::Bad { .. }), "{response:?}");
    }

    // None of that wedged a worker or the acceptor: a fresh client is
    // served normally.
    let mut client = Client::connect(addr, "after").expect("connect");
    client.ping().expect("ping");
    let stats = handle.join().expect("drain");
    assert!(
        stats.protocol_errors >= 3,
        "protocol_errors counter: {stats:?}"
    );
}

#[test]
fn drain_under_load_commits_every_acknowledged_workload() {
    let dir = tmp_dir("serve_drain");
    let faults = Arc::new(FaultInjector::new());
    // A little per-op latency keeps clients genuinely mid-publish when
    // the drain lands.
    faults.inject_latency("map", Duration::from_millis(4));
    let (mut handle, server) = durable_serve(&dir, |c| {
        c.workers = 2;
        c.queue_depth = 16;
    });
    server.set_fault_injector(Arc::clone(&faults));
    let addr = handle.local_addr();

    let done = Arc::new(AtomicU64::new(0));
    let drained = Arc::new(AtomicU64::new(0));
    let final_stats = std::thread::scope(|scope| {
        for i in 0..8 {
            let done = Arc::clone(&done);
            let drained = Arc::clone(&drained);
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr, &format!("drain-{i}")) else {
                    return;
                };
                if client.register_dataset("d", columns(5)).is_err() {
                    return;
                }
                for s in 0..1000 {
                    let salt = f64::from(i) * 1000.0 + f64::from(s);
                    match client.submit(&spec(salt), Some(10_000)) {
                        Ok(Response::Done(_)) => {
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(Response::Draining) => {
                            drained.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                        Ok(Response::Overloaded { .. }) => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(_) => return, // server stopped under us
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        handle.begin_drain();
        // Clients all exit via Draining/disconnect; scope joins them.
        // NB: handle.join() must happen *after* clients finish, so the
        // final stats include everything; join inside the scope blocks
        // on workers, which is fine — admitted work completes.
        handle.join().expect("drain flushes")
    });

    let acknowledged = done.load(Ordering::SeqCst);
    assert!(acknowledged > 0, "no workload served before the drain");
    assert!(
        drained.load(Ordering::SeqCst) > 0,
        "no client observed the drain"
    );
    assert_eq!(final_stats.served, acknowledged);
    assert!(final_stats.draining);

    // Every acknowledged workload is durably committed: the data dir is
    // invariant-clean and replays into a server whose EG serves one of
    // the acknowledged specs purely from reuse.
    let report = fsck::check_data_dir(&dir, true).expect("fsck");
    assert!(report.violations.is_empty(), "{report:?}");
    assert!(report.vertices > 0);

    let (handle2, _server2) = durable_serve(&dir, |_| {});
    let mut client = Client::connect(handle2.local_addr(), "verify").expect("connect");
    client.register_dataset("d", columns(5)).expect("register");
    let response = client
        .submit(&spec(0.0 * 1000.0), Some(10_000))
        .expect("submit");
    assert!(matches!(response, Response::Done(_)), "{response:?}");
}

#[test]
fn net_fault_matrix_leaves_committed_prefix() {
    let dir = tmp_dir("serve_netfault");
    let faults = Arc::new(FaultInjector::new());
    faults.set_net_stall(Duration::from_millis(40));
    let (mut handle, server) = durable_serve(&dir, |c| {
        c.faults = Some(Arc::clone(&faults));
    });
    server.set_fault_injector(Arc::clone(&faults));
    let addr = handle.local_addr();

    // --- accept-fail: the connection dies before the handshake -------
    faults.arm_net_fault(NetFault::AcceptFail, 1);
    assert!(
        Client::connect(addr, "unlucky").is_err(),
        "accept-fail fault did not kill the connection"
    );
    // ...and only that connection: the next one is served.
    let mut client = Client::connect(addr, "lucky").expect("connect after accept-fail");
    client.register_dataset("d", columns(6)).expect("register");

    // --- stalled-write: slow but correct ------------------------------
    faults.arm_net_fault(NetFault::StalledWrite, 1);
    let started = Instant::now();
    client.ping().expect("stalled write still delivers");
    assert!(
        started.elapsed() >= Duration::from_millis(40),
        "stall did not delay the response"
    );

    // --- mid-frame disconnect & torn frame on the submit response ----
    // The workload publishes, then the response write dies; the client
    // never sees the ack, but the EG keeps exactly the committed
    // prefix (the published workload).
    let mut acked_unseen = 0u64;
    for (fault, salt) in [
        (NetFault::MidFrameDisconnect, 10.0),
        (NetFault::TornFrame, 11.0),
    ] {
        let mut victim = Client::connect(addr, "victim").expect("connect");
        victim.register_dataset("d", columns(6)).expect("register");
        faults.arm_net_fault(fault, 1);
        let result = victim.submit(&spec(salt), None);
        assert!(
            result.is_err(),
            "{} should cut the response frame, got {result:?}",
            fault.name()
        );
        acked_unseen += 1;
        // The same connection is dead, but the server is healthy.
        let mut probe = Client::connect(addr, "probe").expect("connect");
        probe.ping().expect("ping after fault");
    }
    assert_eq!(faults.net_faults_fired(), 4);

    let stats = handle.join().expect("drain");
    // Both cut-off submissions were served (committed) server-side.
    assert_eq!(stats.served, acked_unseen);

    // The committed prefix survives: fsck-clean, and the recovered EG
    // holds exactly the vertices of the two acknowledged-but-unseen
    // workloads (source + filter shared, map + agg per salt) — the
    // killed connections lost their response frames, not their
    // published work.
    let report = fsck::check_data_dir(&dir, true).expect("fsck");
    assert!(report.violations.is_empty(), "{report:?}");
    assert!(
        report.vertices >= 6,
        "committed workload vertices missing after the cut connections: {report:?}"
    );

    // And a fresh serve instance over the recovered directory still
    // serves those same specs to completion.
    let (handle2, _server2) = durable_serve(&dir, |_| {});
    let mut verify = Client::connect(handle2.local_addr(), "verify").expect("connect");
    verify.register_dataset("d", columns(6)).expect("register");
    for salt in [10.0, 11.0] {
        let response = verify.submit(&spec(salt), None).expect("submit");
        assert!(
            matches!(response, Response::Done(_)),
            "verification submit failed for salt {salt}: {response:?}"
        );
    }
}
