//! The wire framing layer: length-prefixed, CRC-checked frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! mirroring the `EGWAL` journal record format (DESIGN.md §10), so the
//! same corruption story holds on the wire as on disk: a flipped byte
//! anywhere in a frame is caught by the checksum, a flipped length
//! prefix is caught as an oversized frame or a short read, and a torn
//! frame (the peer died mid-write) is caught as a truncated read. All
//! of these are *typed* [`ProtocolError`]s that tear down exactly one
//! connection — never a panic, never a wedged worker.
//!
//! A length prefix above [`MAX_FRAME`] is rejected before any
//! allocation, which also covers "negative" lengths: any value with the
//! sign bit set, read as `u32`, exceeds the cap by orders of magnitude.

use co_graph::journal::crc32;
use co_graph::{FaultInjector, NetFault};
use std::io::{ErrorKind, Read, Write};

/// Hard cap on a frame payload (64 MiB) — large enough for a chunky
/// dataset registration, small enough that a hostile or corrupt length
/// prefix cannot balloon server memory.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of frame header (length + checksum).
pub const HEADER_LEN: usize = 8;

/// Consecutive idle read cycles tolerated *mid-frame* before the frame
/// is declared torn. With the serve layer's poll-interval read timeout
/// this bounds how long a half-written frame can pin a connection.
const MAX_MID_FRAME_STALLS: usize = 100;

/// A typed wire-protocol failure. Every variant tears down only the
/// connection it occurred on.
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// No bytes arrived within the read timeout while *between* frames —
    /// not an error; the caller polls again (and checks drain state).
    Idle,
    /// The length prefix exceeds [`MAX_FRAME`] (including any prefix
    /// whose sign bit is set when read as a 32-bit integer).
    Oversized { len: u64 },
    /// The connection died (or stalled past the patience budget) in the
    /// middle of a frame: `got` of `expected` payload+header bytes.
    Truncated { expected: usize, got: usize },
    /// The payload does not match its CRC-32.
    BadChecksum,
    /// The payload failed to decode: unknown tag, short field, trailing
    /// bytes, invalid UTF-8, or an implausible element count.
    Malformed(String),
    /// A transport-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::Idle => write!(f, "no frame within the read timeout"),
            ProtocolError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            ProtocolError::BadChecksum => write!(f, "frame payload fails its CRC-32 check"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
            ProtocolError::Io(e) => write!(f, "connection I/O error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl ProtocolError {
    /// Whether this error indicts the *frame bytes* (as opposed to the
    /// transport): oversized, truncated, checksum, or decode failure.
    #[must_use]
    pub fn is_frame_error(&self) -> bool {
        matches!(
            self,
            ProtocolError::Oversized { .. }
                | ProtocolError::Truncated { .. }
                | ProtocolError::BadChecksum
                | ProtocolError::Malformed(_)
        )
    }
}

/// Encode a payload into a complete frame (header + payload).
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    #[allow(clippy::cast_possible_truncation)] // lint:reason guarded by MAX_FRAME
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Write one frame. With a fault injector attached, consults the
/// connection-level fault points first:
///
/// * [`NetFault::StalledWrite`] — sleep the configured stall, then write
///   normally;
/// * [`NetFault::MidFrameDisconnect`] — write roughly half of the frame
///   (cutting inside the header for short frames) and fail;
/// * [`NetFault::TornFrame`] — write the complete header but only half
///   of the payload, and fail.
///
/// On a fault-injected failure the returned error is `Io(ConnectionAborted)`;
/// the caller drops the connection, exactly as it would for a real peer
/// death mid-write.
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    faults: Option<&FaultInjector>,
) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            len: payload.len() as u64,
        });
    }
    let frame = encode_frame(payload);
    if let Some(f) = faults {
        if f.take_net_fault(NetFault::StalledWrite) {
            std::thread::sleep(f.net_stall());
        }
        if f.take_net_fault(NetFault::MidFrameDisconnect) {
            let cut = frame.len() / 2;
            w.write_all(&frame[..cut])?;
            w.flush()?;
            return Err(ProtocolError::Io(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected mid-frame disconnect",
            )));
        }
        if f.take_net_fault(NetFault::TornFrame) {
            let cut = HEADER_LEN + payload.len() / 2;
            w.write_all(&frame[..cut])?;
            w.flush()?;
            return Err(ProtocolError::Io(std::io::Error::new(
                ErrorKind::ConnectionAborted,
                "injected torn frame",
            )));
        }
    }
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Fill `buf[*got..]` from the reader, tolerating interrupted and
/// timed-out reads. Returns `Ok(true)` when full, `Ok(false)` when the
/// patience budget for a stalled peer ran out, and errors on EOF or a
/// hard transport failure (`*got` always reflects bytes consumed).
fn read_fully(
    r: &mut impl Read,
    buf: &mut [u8],
    got: &mut usize,
    expected_total: usize,
    header_got: usize,
) -> Result<bool, ProtocolError> {
    let mut stalls = 0usize;
    while *got < buf.len() {
        match r.read(&mut buf[*got..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    expected: expected_total,
                    got: header_got + *got,
                })
            }
            Ok(n) => {
                *got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                stalls += 1;
                if stalls >= MAX_MID_FRAME_STALLS {
                    return Ok(false);
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame and return its validated payload.
///
/// Designed for sockets carrying a read timeout: a timeout with *no*
/// header byte consumed yields [`ProtocolError::Idle`] (poll again); a
/// timeout after the frame started counts against a bounded patience
/// budget and then yields [`ProtocolError::Truncated`]. EOF between
/// frames is [`ProtocolError::Closed`]; EOF inside a frame is
/// `Truncated`.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    // First byte: distinguish idle (no frame yet) from a torn header.
    while got == 0 {
        match r.read(&mut header) {
            Ok(0) => return Err(ProtocolError::Closed),
            Ok(n) => got = n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(ProtocolError::Idle)
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    if !read_fully(r, &mut header, &mut got, HEADER_LEN, 0)? {
        return Err(ProtocolError::Truncated {
            expected: HEADER_LEN,
            got,
        });
    }
    // co-lint:allow(no-panic) the header buffer is exactly 8 bytes; 4-byte subslices are infallible
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    // co-lint:allow(no-panic) the header buffer is exactly 8 bytes; 4-byte subslices are infallible
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    let mut body_got = 0usize;
    if !read_fully(r, &mut payload, &mut body_got, HEADER_LEN + len, HEADER_LEN)? {
        return Err(ProtocolError::Truncated {
            expected: HEADER_LEN + len,
            got: HEADER_LEN + body_got,
        });
    }
    if crc32(&payload) != crc {
        return Err(ProtocolError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let payload = b"hello frame".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, None).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let back = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[], None).unwrap();
        let back = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn eof_between_frames_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut Cursor::new(empty)),
            Err(ProtocolError::Closed)
        ));
    }

    #[test]
    fn eof_mid_header_and_mid_payload_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload", None).unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // Length prefix of u32::MAX — the "negative i32" case.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ProtocolError::Oversized { .. }), "{err}");
        // Just over the cap, too.
        #[allow(clippy::cast_possible_truncation)]
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn checksum_catches_payload_flips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"sensitive bits", None).unwrap();
        for i in HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let err = read_frame(&mut Cursor::new(&bad)).unwrap_err();
            assert!(err.is_frame_error(), "flip at {i}: {err}");
        }
    }

    #[test]
    fn injected_mid_frame_disconnect_truncates_for_the_reader() {
        let faults = FaultInjector::new();
        faults.arm_net_fault(NetFault::MidFrameDisconnect, 1);
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, b"doomed payload", Some(&faults)).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)));
        assert!(buf.len() < HEADER_LEN + b"doomed payload".len());
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(ProtocolError::Truncated { .. })
        ));
        // Disarmed: the next write goes through whole.
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, b"doomed payload", Some(&faults)).unwrap();
        assert_eq!(
            read_frame(&mut Cursor::new(&buf2)).unwrap(),
            b"doomed payload"
        );
    }

    #[test]
    fn injected_torn_frame_keeps_header_but_cuts_payload() {
        let faults = FaultInjector::new();
        faults.arm_net_fault(NetFault::TornFrame, 1);
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, b"torn in transit", Some(&faults)).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)));
        assert!(buf.len() >= HEADER_LEN, "header is complete");
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn injected_stall_delays_but_delivers() {
        let faults = FaultInjector::new();
        faults.set_net_stall(std::time::Duration::from_millis(15));
        faults.arm_net_fault(NetFault::StalledWrite, 1);
        let mut buf = Vec::new();
        let start = std::time::Instant::now();
        write_frame(&mut buf, b"slow", Some(&faults)).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(read_frame(&mut Cursor::new(&buf)).unwrap(), b"slow");
    }
}
