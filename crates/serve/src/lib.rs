//! # co-serve: overload-safe networked front-end
//!
//! A service layer over [`co_core::OptimizerServer`]: many clients
//! share one Experiment Graph over a length-prefixed TCP wire protocol
//! (std only — no async runtime), with per-session dataset namespaces,
//! admission control that rejects rather than queues unboundedly,
//! per-request deadlines that propagate into the executor's retry
//! policy, and a graceful drain that finishes admitted work and flushes
//! durable state before stopping.
//!
//! Layering, bottom to top:
//!
//! * [`frame`] — the wire framing: `[u32 len][u32 crc32][payload]`,
//!   mirroring the journal record format, with every malformed input
//!   mapped to a typed [`frame::ProtocolError`];
//! * [`proto`] — request/response types and their hand-rolled binary
//!   codec (total: decoding never panics, any input is `Ok` or `Err`);
//! * [`spec`] — the client-visible workload description and its
//!   compiler into a [`co_graph::WorkloadDag`], plus per-session
//!   dataset namespacing by content fingerprint;
//! * [`server`] — acceptor, session threads, admission queue, worker
//!   pool, drain state machine;
//! * [`client`] — blocking client with capped-backoff retry honoring
//!   the server's retry-after hints.
//!
//! Connection-level fault injection (accept failures, mid-frame
//! disconnects, stalled writes, torn frames) comes from
//! [`co_graph::FaultInjector`] via [`co_graph::NetFault`], so network
//! and durability faults share one deterministic schedule.

#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod spec;

pub use client::{Client, ClientError, RetryConfig};
pub use frame::{encode_frame, read_frame, write_frame, ProtocolError, MAX_FRAME};
pub use proto::{Request, Response, StatsSnapshot, WorkloadSummary, PROTO_VERSION};
pub use server::{start, ServeConfig, ServeCounters, ServeHandle};
pub use spec::{AggSpec, MapFnSpec, SessionDatasets, SpecError, SpecStep, WorkloadSpec};
