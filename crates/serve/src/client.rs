//! Client library for the `co-serve` wire protocol.
//!
//! [`Client`] is a thin blocking wrapper over one TCP connection:
//! request out, response in, strictly alternating. The interesting
//! piece is [`Client::submit_with_retry`], which implements the
//! well-behaved-client side of the overload contract: on
//! [`Response::Overloaded`] it sleeps for the server's `retry_after_ms`
//! hint (never less), layered under its own capped exponential backoff,
//! and gives up once the attempt budget or overall deadline runs out.

use crate::frame::{encode_frame, read_frame, ProtocolError};
use crate::proto::{Request, Response, StatsSnapshot, PROTO_VERSION};
use crate::spec::WorkloadSpec;
use co_dataframe::ColumnData;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure on the connection.
    Protocol(ProtocolError),
    /// The server answered, but with something the caller cannot use
    /// (e.g. `Bad`, or an unexpected response type for the request).
    Rejected(String),
    /// Retries exhausted without an accepted submission; carries the
    /// last response observed.
    RetriesExhausted {
        /// Attempts made (all rejected or timed out).
        attempts: u32,
        /// Human-readable description of the last rejection.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Rejected(m) => write!(f, "rejected: {m}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts (last: {last})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// Retry policy for [`Client::submit_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Maximum attempts (≥ 1) before giving up.
    pub max_attempts: u32,
    /// First backoff on `Overloaded` without a usable hint.
    pub initial_backoff: Duration,
    /// Backoff cap; the server's `retry_after_ms` hint is also clamped
    /// to this, so a hostile hint cannot park the client for minutes.
    pub max_backoff: Duration,
    /// Overall budget across all attempts and sleeps.
    pub overall_deadline: Option<Duration>,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            overall_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// One blocking connection to a `co-serve` front-end.
pub struct Client {
    stream: TcpStream,
    /// Session id assigned by the server's `Welcome`.
    session: u64,
}

impl Client {
    /// Connect and perform the `Hello`/`Welcome` handshake.
    ///
    /// # Errors
    ///
    /// Connection failure, protocol-version mismatch, or an
    /// `Overloaded` turn-away from a server at its connection cap.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream, session: 0 };
        let hello = Request::Hello {
            client: name.to_owned(),
            proto: PROTO_VERSION,
        };
        match client.roundtrip(&hello)? {
            Response::Welcome { session, .. } => {
                client.session = session;
                Ok(client)
            }
            Response::Overloaded { retry_after_ms } => Err(ClientError::Rejected(format!(
                "server at connection cap (retry after {retry_after_ms} ms)"
            ))),
            other => Err(ClientError::Rejected(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// The session id the server assigned at handshake.
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Send one request and read one response.
    ///
    /// # Errors
    ///
    /// Transport or framing failure.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = encode_frame(&request.encode());
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        let payload = read_frame(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }

    /// Register a dataset in this session's namespace. Returns the
    /// content-qualified name the server filed it under.
    ///
    /// # Errors
    ///
    /// Transport failure or a server-side rejection (malformed data).
    pub fn register_dataset(
        &mut self,
        name: &str,
        columns: Vec<(String, ColumnData)>,
    ) -> Result<String, ClientError> {
        let request = Request::RegisterDataset {
            name: name.to_owned(),
            columns,
        };
        match self.roundtrip(&request)? {
            Response::DatasetRegistered { qualified } => Ok(qualified),
            Response::Failed { error, .. } | Response::Bad { message: error } => {
                Err(ClientError::Rejected(error))
            }
            other => Err(ClientError::Rejected(format!(
                "unexpected response to RegisterDataset: {other:?}"
            ))),
        }
    }

    /// Submit once, no retry. The caller sees the raw server decision
    /// (`Done` / `Overloaded` / `Draining` / `TimedOut` / `Failed`).
    ///
    /// # Errors
    ///
    /// Transport or framing failure only.
    pub fn submit(
        &mut self,
        spec: &WorkloadSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Submit {
            spec: spec.clone(),
            deadline_ms,
        })
    }

    /// Submit with capped-backoff retry, honoring the server's
    /// retry-after hint on `Overloaded` and `ReadOnly` (a durability
    /// layer repairing itself). `Draining` is terminal (the
    /// server will not come back on this address); `TimedOut` and
    /// transient `Failed` responses are retried; permanent failures are
    /// surfaced immediately.
    ///
    /// # Errors
    ///
    /// Transport failure, a permanent server-side failure, or
    /// [`ClientError::RetriesExhausted`].
    pub fn submit_with_retry(
        &mut self,
        spec: &WorkloadSpec,
        deadline_ms: Option<u64>,
        retry: &RetryConfig,
    ) -> Result<Response, ClientError> {
        let started = Instant::now();
        let mut backoff = retry.initial_backoff;
        let mut last = String::from("no attempt made");
        let attempts = retry.max_attempts.max(1);
        for attempt in 0..attempts {
            if let Some(overall) = retry.overall_deadline {
                if started.elapsed() >= overall {
                    return Err(ClientError::RetriesExhausted {
                        attempts: attempt,
                        last,
                    });
                }
            }
            let sleep = match self.submit(spec, deadline_ms)? {
                done @ Response::Done(_) => return Ok(done),
                draining @ Response::Draining => return Ok(draining),
                Response::Overloaded { retry_after_ms } => {
                    last = format!("overloaded (retry after {retry_after_ms} ms)");
                    // Honor the hint, but never sleep less than our own
                    // backoff (the hint can be optimistic) nor more
                    // than the cap (the hint can be hostile).
                    Duration::from_millis(retry_after_ms)
                        .max(backoff)
                        .min(retry.max_backoff)
                }
                Response::ReadOnly { retry_after_ms } => {
                    // Same discipline as `Overloaded`: the durability
                    // layer is repairing itself; the identical
                    // submission succeeds once it catches up.
                    last = format!("durability read-only (retry after {retry_after_ms} ms)");
                    Duration::from_millis(retry_after_ms)
                        .max(backoff)
                        .min(retry.max_backoff)
                }
                Response::TimedOut { waited_ms } => {
                    last = format!("timed out after {waited_ms} ms");
                    backoff.min(retry.max_backoff)
                }
                Response::Failed {
                    error,
                    transient: true,
                    ..
                } => {
                    last = format!("transient failure: {error}");
                    backoff.min(retry.max_backoff)
                }
                Response::Failed { error, .. } => return Err(ClientError::Rejected(error)),
                other => {
                    return Err(ClientError::Rejected(format!(
                        "unexpected response to Submit: {other:?}"
                    )))
                }
            };
            if attempt + 1 < attempts {
                std::thread::sleep(sleep);
                backoff = (backoff * 2).min(retry.max_backoff);
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// Fetch the server's full counter set.
    ///
    /// # Errors
    ///
    /// Transport failure or an unexpected response type.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsReply(snapshot) => Ok(snapshot),
            other => Err(ClientError::Rejected(format!(
                "unexpected response to Stats: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failure or an unexpected response type.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Rejected(format!(
                "unexpected response to Ping: {other:?}"
            ))),
        }
    }

    /// Ask the server to begin a graceful drain.
    ///
    /// # Errors
    ///
    /// Transport failure or an unexpected response type.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Drain)? {
            Response::DrainStarted => Ok(()),
            other => Err(ClientError::Rejected(format!(
                "unexpected response to Drain: {other:?}"
            ))),
        }
    }
}
