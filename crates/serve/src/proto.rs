//! Protocol messages and their binary codec.
//!
//! Frame payloads (see [`crate::frame`]) carry exactly one [`Request`]
//! or [`Response`], encoded with a small tagged binary format: one tag
//! byte per variant, little-endian fixed-width integers, and
//! `u32`-length-prefixed strings and sequences. Decoding is *total*:
//! every read is bounds-checked, element counts are validated against
//! the bytes actually remaining (so a corrupt count cannot balloon an
//! allocation), strings must be UTF-8, and a decoded message must
//! consume the payload exactly — anything else is a typed
//! [`ProtocolError::Malformed`], never a panic.
//!
//! The protocol is versioned by [`PROTO_VERSION`], exchanged in
//! `Hello`/`Welcome`.

use crate::frame::ProtocolError;
use crate::spec::{AggSpec, MapFnSpec, SpecStep, WorkloadSpec};
use co_dataframe::ColumnData;

/// Wire protocol version, exchanged in `Hello`/`Welcome`.
pub const PROTO_VERSION: u32 = 1;

/// Cap on elements of any decoded sequence (columns, steps, rows are
/// additionally bounded by the frame size itself).
const MAX_SEQ: usize = 1 << 24;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session. `client` is a display name for observability.
    Hello { client: String, proto: u32 },
    /// Register a source dataset under this session's namespace. The
    /// server derives a content-qualified source name, so two clients
    /// registering *different* data under the same name never collide
    /// in the shared Experiment Graph, while identical data dedups to
    /// the same artifacts.
    RegisterDataset {
        name: String,
        columns: Vec<(String, ColumnData)>,
    },
    /// Submit a workload, optionally with a deadline relative to the
    /// server receiving the request.
    Submit {
        spec: WorkloadSpec,
        deadline_ms: Option<u64>,
    },
    /// Fetch the live server counter set (core + serve layers).
    Stats,
    /// Liveness probe.
    Ping,
    /// Operator request: begin a graceful drain.
    Drain,
}

/// Summary of a served workload, returned in [`Response::Done`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadSummary {
    /// Operations actually executed.
    pub ops_executed: u64,
    /// Artifacts served from the Experiment Graph instead of computed.
    pub artifacts_loaded: u64,
    /// Training operations warmstarted.
    pub warmstarts: u64,
    /// Client-visible run time (compute + charged loads), seconds.
    pub run_seconds: f64,
    /// Time the request waited in the admission queue, milliseconds.
    pub queue_ms: f64,
}

/// The full live counter set, returned by [`Request::Stats`] — the
/// in-process `ServerStats` (including the recovery counters) plus the
/// serve layer's own admission/drain counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    // ---- core OptimizerServer counters -------------------------------
    /// Workloads merged into the Experiment Graph.
    pub workloads: u64,
    /// Operations executed across all workloads.
    pub ops_executed: u64,
    /// Artifacts served from the graph.
    pub artifacts_loaded: u64,
    /// Training operations warmstarted.
    pub warmstarts: u64,
    /// Total client-visible run time, seconds.
    pub run_seconds: f64,
    /// Estimated no-reuse cost of the same submissions, seconds.
    pub baseline_seconds: f64,
    /// Workloads that terminated with an error.
    pub failed_workloads: u64,
    /// Vertices salvaged from failed runs.
    pub salvaged_artifacts: u64,
    /// Journal records replayed during startup recovery.
    pub journal_records_replayed: u64,
    /// Torn journal tails truncated during recovery.
    pub torn_tail_truncated: u64,
    /// Snapshot compactions performed.
    pub snapshots_compacted: u64,
    /// Experiment Graph lock shards (1 = unsharded).
    pub shards: u64,
    /// Total nanoseconds publishers spent blocked on contended shard
    /// write locks, summed across shards (0 while uncontended).
    pub lock_wait_ns: u64,
    // ---- serve-layer counters ----------------------------------------
    /// Connections accepted.
    pub connections: u64,
    /// Workloads submitted over the wire.
    pub submitted: u64,
    /// Submissions served to completion.
    pub served: u64,
    /// Submissions rejected by admission control.
    pub rejected_overload: u64,
    /// Submissions rejected because the server is draining.
    pub rejected_draining: u64,
    /// Submissions that exceeded their deadline (shed or mid-run).
    pub timed_out: u64,
    /// Connections torn down by a frame/decode error.
    pub protocol_errors: u64,
    // ---- durability health -------------------------------------------
    /// Durability health at snapshot time: 0 healthy, 1 read-only
    /// (publishes rejected retriably while repair catches up), 2 wedged.
    pub durability_health: u64,
    /// Repair attempts over the server's lifetime.
    pub repair_attempts: u64,
    /// Repairs that returned the durability layer to healthy.
    pub repairs_succeeded: u64,
    /// Publishes rejected retriably while the layer was read-only.
    pub publishes_rejected_readonly: u64,
    /// Cold column files whose CRCs the scrubber verified.
    pub scrub_checked: u64,
    /// Corrupt cold files healed by lineage-based recomputation.
    pub scrub_healed: u64,
    /// Corrupt cold files quarantined as unrecoverable.
    pub scrub_quarantined: u64,
    /// Whether a drain is in progress (or complete).
    pub draining: bool,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Welcome { session: u64, proto: u32 },
    /// Dataset registered; `qualified` is the content-qualified source
    /// name the session's workloads resolve it to.
    DatasetRegistered { qualified: String },
    /// Workload served.
    Done(WorkloadSummary),
    /// Admission control rejected the submission: the publish queue is
    /// at its configured depth. `retry_after_ms` is the server's
    /// estimate of when capacity frees up; the client library's backoff
    /// honors it.
    Overloaded { retry_after_ms: u64 },
    /// The durability layer is read-only — a persistence failure left
    /// the disk behind memory and repair has not caught up. Retriable
    /// exactly like `Overloaded`: the same submission succeeds once
    /// repair drains the backlog. `retry_after_ms` hints when.
    ReadOnly { retry_after_ms: u64 },
    /// The server is draining; it accepts no new workloads.
    Draining,
    /// The submission exceeded its deadline — either shed from the
    /// queue before running or cut off mid-execution.
    TimedOut { waited_ms: u64 },
    /// The workload ran and failed. `salvaged` counts vertices the
    /// server kept from the failed run's untainted prefix.
    Failed {
        error: String,
        transient: bool,
        salvaged: u64,
    },
    /// Live counter set.
    StatsReply(StatsSnapshot),
    /// Liveness reply.
    Pong,
    /// Graceful drain initiated.
    DrainStarted,
    /// Protocol-level rejection (sent best-effort before the server
    /// closes this connection).
    Bad { message: String },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, n: usize) {
        // co-lint:allow(no-panic) encoded sequences are bounded by MAX_FRAME, far below u32::MAX
        self.u32(u32::try_from(n).expect("sequence length fits u32"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

/// Bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, ProtocolError>;

fn malformed<T>(what: impl Into<String>) -> DecodeResult<T> {
    Err(ProtocolError::Malformed(what.into()))
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return malformed(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => malformed(format!("bool byte {b}")),
        }
    }
    fn u32(&mut self) -> DecodeResult<u32> {
        // co-lint:allow(no-panic) take(4) returned exactly 4 bytes; the conversion is infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> DecodeResult<u64> {
        // co-lint:allow(no-panic) take(8) returned exactly 8 bytes; the conversion is infallible
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn i64(&mut self) -> DecodeResult<i64> {
        // co-lint:allow(no-panic) take(8) returned exactly 8 bytes; the conversion is infallible
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> DecodeResult<f64> {
        // co-lint:allow(no-panic) take(8) returned exactly 8 bytes; the conversion is infallible
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// A sequence count, validated against the bytes remaining given a
    /// minimum encoded size per element.
    fn seq(&mut self, min_elem_bytes: usize) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n > MAX_SEQ || n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return malformed(format!(
                "implausible sequence count {n} for {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }
    fn str(&mut self) -> DecodeResult<String> {
        let n = self.seq(1)?;
        match std::str::from_utf8(self.take(n)?) {
            Ok(s) => Ok(s.to_owned()),
            Err(e) => malformed(format!("invalid UTF-8 string: {e}")),
        }
    }
    fn opt_u64(&mut self) -> DecodeResult<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    fn finish(self) -> DecodeResult<()> {
        if self.remaining() != 0 {
            return malformed(format!("{} trailing bytes after message", self.remaining()));
        }
        Ok(())
    }
}

fn put_column_data(w: &mut Writer, data: &ColumnData) {
    match data {
        ColumnData::Int(v) => {
            w.u8(1);
            w.len(v.len());
            for x in v {
                w.i64(*x);
            }
        }
        ColumnData::Float(v) => {
            w.u8(2);
            w.len(v.len());
            for x in v {
                w.f64(*x);
            }
        }
        ColumnData::Str(v) => {
            w.u8(3);
            w.len(v.len());
            for x in v {
                w.str(x);
            }
        }
        ColumnData::Bool(v) => {
            w.u8(4);
            w.len(v.len());
            for x in v {
                w.bool(*x);
            }
        }
    }
}

fn get_column_data(r: &mut Reader<'_>) -> DecodeResult<ColumnData> {
    match r.u8()? {
        1 => {
            let n = r.seq(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            Ok(ColumnData::Int(v))
        }
        2 => {
            let n = r.seq(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            Ok(ColumnData::Float(v))
        }
        3 => {
            let n = r.seq(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.str()?);
            }
            Ok(ColumnData::Str(v))
        }
        4 => {
            let n = r.seq(1)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.bool()?);
            }
            Ok(ColumnData::Bool(v))
        }
        t => malformed(format!("unknown column-data tag {t}")),
    }
}

fn put_map_fn(w: &mut Writer, f: &MapFnSpec) {
    match f {
        MapFnSpec::Log1p => w.u8(1),
        MapFnSpec::Abs => w.u8(2),
        MapFnSpec::Sqrt => w.u8(3),
        MapFnSpec::AddConst(c) => {
            w.u8(4);
            w.f64(*c);
        }
        MapFnSpec::MulConst(c) => {
            w.u8(5);
            w.f64(*c);
        }
    }
}

fn get_map_fn(r: &mut Reader<'_>) -> DecodeResult<MapFnSpec> {
    match r.u8()? {
        1 => Ok(MapFnSpec::Log1p),
        2 => Ok(MapFnSpec::Abs),
        3 => Ok(MapFnSpec::Sqrt),
        4 => Ok(MapFnSpec::AddConst(r.f64()?)),
        5 => Ok(MapFnSpec::MulConst(r.f64()?)),
        t => malformed(format!("unknown map-fn tag {t}")),
    }
}

fn put_agg(w: &mut Writer, f: AggSpec) {
    w.u8(match f {
        AggSpec::Sum => 1,
        AggSpec::Mean => 2,
        AggSpec::Min => 3,
        AggSpec::Max => 4,
        AggSpec::Count => 5,
        AggSpec::Std => 6,
    });
}

fn get_agg(r: &mut Reader<'_>) -> DecodeResult<AggSpec> {
    match r.u8()? {
        1 => Ok(AggSpec::Sum),
        2 => Ok(AggSpec::Mean),
        3 => Ok(AggSpec::Min),
        4 => Ok(AggSpec::Max),
        5 => Ok(AggSpec::Count),
        6 => Ok(AggSpec::Std),
        t => malformed(format!("unknown agg tag {t}")),
    }
}

fn put_step(w: &mut Writer, step: &SpecStep) {
    match step {
        SpecStep::Load { dataset } => {
            w.u8(1);
            w.str(dataset);
        }
        SpecStep::Select { input, columns } => {
            w.u8(2);
            w.u32(*input);
            w.len(columns.len());
            for c in columns {
                w.str(c);
            }
        }
        SpecStep::FilterGt {
            input,
            column,
            value,
        } => {
            w.u8(3);
            w.u32(*input);
            w.str(column);
            w.f64(*value);
        }
        SpecStep::Map {
            input,
            column,
            f,
            out,
        } => {
            w.u8(4);
            w.u32(*input);
            w.str(column);
            put_map_fn(w, f);
            w.str(out);
        }
        SpecStep::TrainLogistic {
            input,
            label,
            lr,
            max_iter,
        } => {
            w.u8(5);
            w.u32(*input);
            w.str(label);
            w.f64(*lr);
            w.u32(*max_iter);
        }
        SpecStep::Agg { input, column, f } => {
            w.u8(6);
            w.u32(*input);
            w.str(column);
            put_agg(w, *f);
        }
    }
}

fn get_step(r: &mut Reader<'_>) -> DecodeResult<SpecStep> {
    match r.u8()? {
        1 => Ok(SpecStep::Load { dataset: r.str()? }),
        2 => {
            let input = r.u32()?;
            let n = r.seq(4)?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(r.str()?);
            }
            Ok(SpecStep::Select { input, columns })
        }
        3 => Ok(SpecStep::FilterGt {
            input: r.u32()?,
            column: r.str()?,
            value: r.f64()?,
        }),
        4 => Ok(SpecStep::Map {
            input: r.u32()?,
            column: r.str()?,
            f: get_map_fn(r)?,
            out: r.str()?,
        }),
        5 => Ok(SpecStep::TrainLogistic {
            input: r.u32()?,
            label: r.str()?,
            lr: r.f64()?,
            max_iter: r.u32()?,
        }),
        6 => Ok(SpecStep::Agg {
            input: r.u32()?,
            column: r.str()?,
            f: get_agg(r)?,
        }),
        t => malformed(format!("unknown workload step tag {t}")),
    }
}

fn put_spec(w: &mut Writer, spec: &WorkloadSpec) {
    w.len(spec.steps.len());
    for s in &spec.steps {
        put_step(w, s);
    }
    w.len(spec.outputs.len());
    for o in &spec.outputs {
        w.u32(*o);
    }
}

fn get_spec(r: &mut Reader<'_>) -> DecodeResult<WorkloadSpec> {
    let n = r.seq(1)?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        steps.push(get_step(r)?);
    }
    let n = r.seq(4)?;
    let mut outputs = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(r.u32()?);
    }
    Ok(WorkloadSpec { steps, outputs })
}

fn put_summary(w: &mut Writer, s: &WorkloadSummary) {
    w.u64(s.ops_executed);
    w.u64(s.artifacts_loaded);
    w.u64(s.warmstarts);
    w.f64(s.run_seconds);
    w.f64(s.queue_ms);
}

fn get_summary(r: &mut Reader<'_>) -> DecodeResult<WorkloadSummary> {
    Ok(WorkloadSummary {
        ops_executed: r.u64()?,
        artifacts_loaded: r.u64()?,
        warmstarts: r.u64()?,
        run_seconds: r.f64()?,
        queue_ms: r.f64()?,
    })
}

fn put_stats(w: &mut Writer, s: &StatsSnapshot) {
    for v in [
        s.workloads,
        s.ops_executed,
        s.artifacts_loaded,
        s.warmstarts,
        s.failed_workloads,
        s.salvaged_artifacts,
        s.journal_records_replayed,
        s.torn_tail_truncated,
        s.snapshots_compacted,
        s.shards,
        s.lock_wait_ns,
        s.connections,
        s.submitted,
        s.served,
        s.rejected_overload,
        s.rejected_draining,
        s.timed_out,
        s.protocol_errors,
        s.durability_health,
        s.repair_attempts,
        s.repairs_succeeded,
        s.publishes_rejected_readonly,
        s.scrub_checked,
        s.scrub_healed,
        s.scrub_quarantined,
    ] {
        w.u64(v);
    }
    w.f64(s.run_seconds);
    w.f64(s.baseline_seconds);
    w.bool(s.draining);
}

fn get_stats(r: &mut Reader<'_>) -> DecodeResult<StatsSnapshot> {
    let mut s = StatsSnapshot::default();
    for field in [
        &mut s.workloads,
        &mut s.ops_executed,
        &mut s.artifacts_loaded,
        &mut s.warmstarts,
        &mut s.failed_workloads,
        &mut s.salvaged_artifacts,
        &mut s.journal_records_replayed,
        &mut s.torn_tail_truncated,
        &mut s.snapshots_compacted,
        &mut s.shards,
        &mut s.lock_wait_ns,
        &mut s.connections,
        &mut s.submitted,
        &mut s.served,
        &mut s.rejected_overload,
        &mut s.rejected_draining,
        &mut s.timed_out,
        &mut s.protocol_errors,
        &mut s.durability_health,
        &mut s.repair_attempts,
        &mut s.repairs_succeeded,
        &mut s.publishes_rejected_readonly,
        &mut s.scrub_checked,
        &mut s.scrub_healed,
        &mut s.scrub_quarantined,
    ] {
        *field = r.u64()?;
    }
    s.run_seconds = r.f64()?;
    s.baseline_seconds = r.f64()?;
    s.draining = r.bool()?;
    Ok(s)
}

impl Request {
    /// Encode into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Hello { client, proto } => {
                w.u8(1);
                w.str(client);
                w.u32(*proto);
            }
            Request::RegisterDataset { name, columns } => {
                w.u8(2);
                w.str(name);
                w.len(columns.len());
                for (cname, data) in columns {
                    w.str(cname);
                    put_column_data(&mut w, data);
                }
            }
            Request::Submit { spec, deadline_ms } => {
                w.u8(3);
                put_spec(&mut w, spec);
                w.opt_u64(*deadline_ms);
            }
            Request::Stats => w.u8(4),
            Request::Ping => w.u8(5),
            Request::Drain => w.u8(6),
        }
        w.buf
    }

    /// Decode a frame payload. Total: every failure is a typed
    /// [`ProtocolError::Malformed`].
    pub fn decode(payload: &[u8]) -> DecodeResult<Self> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            1 => Request::Hello {
                client: r.str()?,
                proto: r.u32()?,
            },
            2 => {
                let name = r.str()?;
                let n = r.seq(5)?;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let cname = r.str()?;
                    columns.push((cname, get_column_data(&mut r)?));
                }
                Request::RegisterDataset { name, columns }
            }
            3 => Request::Submit {
                spec: get_spec(&mut r)?,
                deadline_ms: r.opt_u64()?,
            },
            4 => Request::Stats,
            5 => Request::Ping,
            6 => Request::Drain,
            t => return malformed(format!("unknown request tag {t}")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Welcome { session, proto } => {
                w.u8(1);
                w.u64(*session);
                w.u32(*proto);
            }
            Response::DatasetRegistered { qualified } => {
                w.u8(2);
                w.str(qualified);
            }
            Response::Done(s) => {
                w.u8(3);
                put_summary(&mut w, s);
            }
            Response::Overloaded { retry_after_ms } => {
                w.u8(4);
                w.u64(*retry_after_ms);
            }
            Response::Draining => w.u8(5),
            Response::TimedOut { waited_ms } => {
                w.u8(6);
                w.u64(*waited_ms);
            }
            Response::Failed {
                error,
                transient,
                salvaged,
            } => {
                w.u8(7);
                w.str(error);
                w.bool(*transient);
                w.u64(*salvaged);
            }
            Response::StatsReply(s) => {
                w.u8(8);
                put_stats(&mut w, s);
            }
            Response::Pong => w.u8(9),
            Response::DrainStarted => w.u8(10),
            Response::Bad { message } => {
                w.u8(11);
                w.str(message);
            }
            Response::ReadOnly { retry_after_ms } => {
                w.u8(12);
                w.u64(*retry_after_ms);
            }
        }
        w.buf
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<Self> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Welcome {
                session: r.u64()?,
                proto: r.u32()?,
            },
            2 => Response::DatasetRegistered {
                qualified: r.str()?,
            },
            3 => Response::Done(get_summary(&mut r)?),
            4 => Response::Overloaded {
                retry_after_ms: r.u64()?,
            },
            5 => Response::Draining,
            6 => Response::TimedOut {
                waited_ms: r.u64()?,
            },
            7 => Response::Failed {
                error: r.str()?,
                transient: r.bool()?,
                salvaged: r.u64()?,
            },
            8 => Response::StatsReply(get_stats(&mut r)?),
            9 => Response::Pong,
            10 => Response::DrainStarted,
            11 => Response::Bad { message: r.str()? },
            12 => Response::ReadOnly {
                retry_after_ms: r.u64()?,
            },
            t => return malformed(format!("unknown response tag {t}")),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello {
                client: "alice".into(),
                proto: PROTO_VERSION,
            },
            Request::RegisterDataset {
                name: "train".into(),
                columns: vec![
                    ("x".into(), ColumnData::Float(vec![1.0, f64::NAN, -0.0])),
                    ("y".into(), ColumnData::Int(vec![i64::MIN, 0, i64::MAX])),
                    (
                        "s".into(),
                        ColumnData::Str(vec!["a\tb".into(), String::new()]),
                    ),
                    ("b".into(), ColumnData::Bool(vec![true, false])),
                ],
            },
            Request::Submit {
                spec: WorkloadSpec {
                    steps: vec![
                        SpecStep::Load {
                            dataset: "train".into(),
                        },
                        SpecStep::FilterGt {
                            input: 0,
                            column: "x".into(),
                            value: 0.5,
                        },
                        SpecStep::TrainLogistic {
                            input: 1,
                            label: "y".into(),
                            lr: 0.1,
                            max_iter: 40,
                        },
                    ],
                    outputs: vec![2],
                },
                deadline_ms: Some(1500),
            },
            Request::Stats,
            Request::Ping,
            Request::Drain,
        ];
        for req in reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).unwrap();
            // NaN != NaN under PartialEq; compare the re-encoding.
            assert_eq!(back.encode(), bytes, "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Welcome {
                session: 7,
                proto: PROTO_VERSION,
            },
            Response::DatasetRegistered {
                qualified: "train@00ff".into(),
            },
            Response::Done(WorkloadSummary {
                ops_executed: 3,
                artifacts_loaded: 2,
                warmstarts: 1,
                run_seconds: 0.25,
                queue_ms: 1.5,
            }),
            Response::Overloaded { retry_after_ms: 40 },
            Response::ReadOnly {
                retry_after_ms: 250,
            },
            Response::Draining,
            Response::TimedOut { waited_ms: 900 },
            Response::Failed {
                error: "op \"train\" failed".into(),
                transient: true,
                salvaged: 4,
            },
            Response::StatsReply(StatsSnapshot {
                workloads: 10,
                served: 9,
                rejected_overload: 1,
                draining: true,
                run_seconds: 1.25,
                shards: 8,
                lock_wait_ns: 1234,
                durability_health: 1,
                repair_attempts: 3,
                repairs_succeeded: 2,
                publishes_rejected_readonly: 5,
                scrub_checked: 12,
                scrub_healed: 1,
                scrub_quarantined: 1,
                ..StatsSnapshot::default()
            }),
            Response::Pong,
            Response::DrainStarted,
            Response::Bad {
                message: "oversized frame".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_counts_cannot_balloon() {
        // A RegisterDataset claiming 2^24 columns in a 20-byte payload.
        let mut w = Writer::new();
        w.u8(2);
        w.str("t");
        w.u32(1 << 24);
        let err = Request::decode(&w.buf).unwrap_err();
        assert!(matches!(err, ProtocolError::Malformed(_)), "{err}");
    }

    #[test]
    fn empty_payload_is_malformed() {
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }
}
