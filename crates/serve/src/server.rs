//! The networked front-end: acceptor, per-connection sessions, the
//! bounded worker pool with admission control, and the drain state
//! machine.
//!
//! ## Threading model
//!
//! One acceptor thread polls the listener; each admitted connection
//! gets its own session thread that parses frames and waits for
//! replies; a bounded pool of worker threads runs the actual workload
//! pipeline against the shared [`OptimizerServer`]. The hand-off
//! between session threads and workers is a bounded queue — the
//! admission queue — whose depth is the server's overload knob.
//!
//! ## Overload semantics
//!
//! * queue at its configured depth → [`Response::Overloaded`] with a
//!   retry-after hint derived from the queue length and an EWMA of
//!   recent service times;
//! * request deadline already expired at dequeue → the job is shed with
//!   [`Response::TimedOut`] without running (expired work never wastes
//!   a worker);
//! * deadline still live → the remaining budget is folded into the
//!   executor's `RetryPolicy` workload deadline, so a slow workload
//!   fails with `DeadlineExceeded` instead of holding the worker.
//!
//! ## Drain state machine
//!
//! `Running → Draining → Stopped`. Draining stops the acceptor,
//! rejects new submissions with [`Response::Draining`], lets workers
//! finish everything already admitted, then flushes durable state
//! (snapshot + journal truncate) and moves to `Stopped`, at which point
//! session threads wind down. Already-admitted work is never dropped:
//! every queued job runs to completion (or its deadline) before the
//! flush.

use crate::frame::{read_frame, write_frame, ProtocolError};
use crate::proto::{Request, Response, StatsSnapshot, WorkloadSummary, PROTO_VERSION};
use crate::spec::{compile, SessionDatasets};
use co_core::{DurabilityHealth, OptimizerServer, PrunedWorkload, READ_ONLY_RETRY_HINT_MS};
use co_graph::{FaultInjector, GraphError, NetFault, WorkloadDag};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serve state machine states.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Session-thread poll interval (read timeout between frames).
const POLL: Duration = Duration::from_millis(100);

/// Extra patience past a request's deadline for the worker's own
/// deadline handling to surface before the session thread gives up.
const REPLY_MARGIN: Duration = Duration::from_secs(5);

/// Reply wait for requests without a deadline.
const DEFAULT_REPLY_WAIT: Duration = Duration::from_secs(600);

/// Serve-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7431"` (`:0` for an ephemeral
    /// port — read it back from [`ServeHandle::local_addr`]).
    pub addr: String,
    /// Worker threads running the workload pipeline.
    pub workers: usize,
    /// Admission-queue depth: submissions beyond `workers` in flight
    /// plus this many queued are rejected with `Overloaded`.
    pub queue_depth: usize,
    /// Maximum concurrent connections; further accepts are turned away
    /// with a best-effort `Overloaded` frame.
    pub max_connections: usize,
    /// Deadline applied to submissions that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Deterministic fault injector consulted at the connection-level
    /// fault points (accept / frame writes). Install the same injector
    /// on the optimizer server's storage to drive durability and
    /// network faults from one schedule.
    pub faults: Option<Arc<FaultInjector>>,
}

impl ServeConfig {
    /// Defaults: 4 workers, depth-64 admission queue, 256 connections.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            workers: 4,
            queue_depth: 64,
            max_connections: 256,
            default_deadline_ms: None,
            faults: None,
        }
    }
}

/// Serve-layer counters (monotonic, lock-free).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections admitted to a session thread.
    pub connections: AtomicU64,
    /// Submissions received over the wire.
    pub submitted: AtomicU64,
    /// Submissions served to completion.
    pub served: AtomicU64,
    /// Submissions rejected by admission control.
    pub rejected_overload: AtomicU64,
    /// Submissions rejected during drain.
    pub rejected_draining: AtomicU64,
    /// Submissions shed or cut off by their deadline.
    pub timed_out: AtomicU64,
    /// Connections torn down by a frame/decode error.
    pub protocol_errors: AtomicU64,
}

/// One admitted submission, queued for a worker.
struct Job {
    dag: WorkloadDag,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: SyncSender<Response>,
}

/// State shared by the acceptor, session threads, and workers.
struct Shared {
    server: Arc<OptimizerServer>,
    config: ServeConfig,
    state: AtomicU8,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    in_flight: AtomicUsize,
    /// EWMA of recent service times, milliseconds (0 = no sample yet).
    ewma_ms: Mutex<f64>,
    counters: ServeCounters,
    session_seq: AtomicU64,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    /// `Running → Draining` (idempotent; a later state is never
    /// regressed). Wakes idle workers so they can notice.
    fn begin_drain(&self) {
        let _ = self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
        // Take the queue lock so the transition is ordered against
        // concurrent admission checks, then wake everyone.
        drop(self.queue.lock().unwrap_or_else(PoisonError::into_inner));
        self.queue_cv.notify_all();
    }

    /// Retry-after hint: how long until the backlog plausibly clears.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let ewma = *self.ewma_ms.lock().unwrap_or_else(PoisonError::into_inner);
        let per_job = if ewma > 0.0 { ewma } else { 25.0 };
        let backlog = queued + self.in_flight.load(Ordering::Relaxed);
        let workers = self.config.workers.max(1);
        // lint:reason backlog and the clamped ms estimate are tiny relative to f64/u64 range
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let ms = ((backlog as f64 / workers as f64) * per_job).clamp(10.0, 30_000.0) as u64;
        ms
    }

    fn observe_service(&self, elapsed: Duration) {
        let ms = elapsed.as_secs_f64() * 1e3;
        let mut ewma = self.ewma_ms.lock().unwrap_or_else(PoisonError::into_inner);
        *ewma = if *ewma == 0.0 {
            ms
        } else {
            0.8 * *ewma + 0.2 * ms
        };
    }

    /// The full counter set: core `ServerStats` + serve counters.
    fn snapshot(&self) -> StatsSnapshot {
        let core = self.server.stats();
        let c = &self.counters;
        #[allow(clippy::cast_possible_truncation)]
        // lint:reason run_seconds millis fit u64 for any realistic uptime
        StatsSnapshot {
            workloads: core.workloads as u64,
            ops_executed: core.ops_executed as u64,
            artifacts_loaded: core.artifacts_loaded as u64,
            warmstarts: core.warmstarts as u64,
            run_seconds: core.run_seconds,
            baseline_seconds: core.baseline_seconds,
            failed_workloads: core.failed_workloads as u64,
            salvaged_artifacts: core.salvaged_artifacts as u64,
            journal_records_replayed: core.journal_records_replayed as u64,
            torn_tail_truncated: core.torn_tail_truncated as u64,
            snapshots_compacted: core.snapshots_compacted as u64,
            shards: self.server.n_shards() as u64,
            lock_wait_ns: self.server.lock_wait_ns().iter().sum(),
            connections: c.connections.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: c.rejected_draining.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            durability_health: core.durability_health,
            repair_attempts: core.repair_attempts as u64,
            repairs_succeeded: core.repairs_succeeded as u64,
            publishes_rejected_readonly: core.publishes_rejected_readonly as u64,
            scrub_checked: core.scrub_checked as u64,
            scrub_healed: core.scrub_healed as u64,
            scrub_quarantined: core.scrub_quarantined as u64,
            draining: self.state() != RUNNING,
        }
    }
}

/// Handle to a running serve front-end.
pub struct ServeHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    repairer: Option<JoinHandle<()>>,
    conn_count: Arc<AtomicUsize>,
}

/// Start serving `server` on `config.addr`. Returns once the listener
/// is bound and the worker pool is up.
pub fn start(server: Arc<OptimizerServer>, config: ServeConfig) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers_n = config.workers.max(1);
    let shared = Arc::new(Shared {
        server,
        config,
        state: AtomicU8::new(RUNNING),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        in_flight: AtomicUsize::new(0),
        ewma_ms: Mutex::new(0.0),
        counters: ServeCounters::default(),
        session_seq: AtomicU64::new(1),
    });
    let conn_count = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::with_capacity(workers_n);
    for i in 0..workers_n {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("co-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                // co-lint:allow(no-panic) server startup: failing to spawn an OS thread is unrecoverable
                .expect("spawn worker"),
        );
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conn_count = Arc::clone(&conn_count);
        std::thread::Builder::new()
            .name("co-serve-acceptor".to_owned())
            .spawn(move || acceptor_loop(&shared, &listener, &conn_count))
            // co-lint:allow(no-panic) server startup: failing to spawn an OS thread is unrecoverable
            .expect("spawn acceptor")
    };
    let repairer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("co-serve-repair".to_owned())
            .spawn(move || repair_loop(&shared))
            // co-lint:allow(no-panic) server startup: failing to spawn an OS thread is unrecoverable
            .expect("spawn repairer")
    };
    Ok(ServeHandle {
        shared,
        addr,
        acceptor: Some(acceptor),
        workers,
        repairer: Some(repairer),
        conn_count,
    })
}

/// Background self-healing: while the durability layer is read-only,
/// attempt a counted repair with exponential backoff (the read-only
/// retry hint up to 4s), so a server whose disk recovers returns to
/// `Healthy` even with no publish traffic to trigger opportunistic
/// repair. Healthy and wedged layers cost one health read per tick.
fn repair_loop(shared: &Arc<Shared>) {
    let floor = Duration::from_millis(READ_ONLY_RETRY_HINT_MS);
    let ceil = Duration::from_secs(4);
    let mut backoff = floor;
    while shared.state() != STOPPED {
        if shared.server.durability_health() == DurabilityHealth::ReadOnly {
            backoff = match shared.server.try_repair() {
                Ok(_) => floor,
                Err(_) => (backoff * 2).min(ceil),
            };
        } else {
            backoff = floor;
        }
        // Sleep in slices so a stop is noticed promptly.
        let deadline = Instant::now() + backoff;
        while Instant::now() < deadline && shared.state() != STOPPED {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl ServeHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (idempotent): stop accepting, reject new
    /// submissions, let admitted work finish. Call [`join`] to wait for
    /// completion and the durable flush.
    ///
    /// [`join`]: ServeHandle::join
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain has begun (or completed).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.state() != RUNNING
    }

    /// The live counter set (core + serve layers).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// The underlying optimizer server.
    #[must_use]
    pub fn server(&self) -> &Arc<OptimizerServer> {
        &self.shared.server
    }

    /// Drain and wait for completion: joins the acceptor and workers
    /// (every admitted workload finishes first), flushes durable state
    /// (snapshot + journal truncate), stops session threads, and waits
    /// for connections to wind down. Returns the final counter set.
    ///
    /// # Errors
    ///
    /// Propagates the durable-flush failure (e.g. a wedged journal);
    /// the serve threads are stopped regardless.
    pub fn join(&mut self) -> Result<StatsSnapshot, GraphError> {
        self.shared.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let flush = self.shared.server.flush_durable();
        self.shared.state.store(STOPPED, Ordering::SeqCst);
        if let Some(repairer) = self.repairer.take() {
            let _ = repairer.join();
        }
        let patience = Instant::now() + Duration::from_secs(10);
        while self.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < patience {
            std::thread::sleep(Duration::from_millis(10));
        }
        flush.map(|()| self.shared.snapshot())
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        // A handle dropped without `join` still winds everything down
        // (without the graceful flush guarantees).
        self.shared.state.store(STOPPED, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(repairer) = self.repairer.take() {
            let _ = repairer.join();
        }
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener, conn_count: &Arc<AtomicUsize>) {
    while shared.state() == RUNNING {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let faults = shared.config.faults.as_deref();
                if faults.is_some_and(|f| f.take_net_fault(NetFault::AcceptFail)) {
                    // Simulated accept failure: the connection dies
                    // before a single byte is served.
                    drop(stream);
                    continue;
                }
                if conn_count.load(Ordering::SeqCst) >= shared.config.max_connections {
                    let retry = shared.retry_after_ms(shared.config.queue_depth);
                    turn_away(&stream, retry);
                    continue;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                conn_count.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                let conn_guard = Arc::clone(conn_count);
                let session = shared.session_seq.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name(format!("co-serve-session-{session}"))
                    .spawn(move || {
                        session_loop(&shared, &stream, session);
                        conn_guard.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    conn_count.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort `Overloaded` to a connection over the cap, then close.
fn turn_away(stream: &TcpStream, retry_after_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut w = stream;
    let _ = write_frame(
        &mut w,
        &Response::Overloaded { retry_after_ms }.encode(),
        None,
    );
    let _ = w.flush();
}

// ---------------------------------------------------------------------
// Session threads
// ---------------------------------------------------------------------

fn session_loop(shared: &Arc<Shared>, stream: &TcpStream, session: u64) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let faults = shared.config.faults.as_deref();
    let mut datasets = SessionDatasets::new();
    loop {
        let payload = match read_frame(&mut (&*stream)) {
            Ok(payload) => payload,
            Err(ProtocolError::Idle) => {
                if shared.state() == STOPPED {
                    return;
                }
                continue;
            }
            Err(ProtocolError::Closed) => return,
            Err(e) if e.is_frame_error() => {
                // The satellite guarantee: a bad frame is a typed error
                // that closes only this connection — reply best-effort,
                // then tear down.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let bad = Response::Bad {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut (&*stream), &bad.encode(), faults);
                return;
            }
            Err(_) => return, // transport I/O error
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let bad = Response::Bad {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut (&*stream), &bad.encode(), faults);
                return;
            }
        };
        let (response, close) = handle_request(shared, request, session, &mut datasets);
        if write_frame(&mut (&*stream), &response.encode(), faults).is_err() || close {
            return;
        }
    }
}

/// Serve one decoded request. Returns the response and whether the
/// connection should close after sending it.
fn handle_request(
    shared: &Arc<Shared>,
    request: Request,
    session: u64,
    datasets: &mut SessionDatasets,
) -> (Response, bool) {
    match request {
        Request::Hello { client: _, proto } => {
            if proto != PROTO_VERSION {
                return (
                    Response::Bad {
                        message: format!(
                            "protocol version {proto} not supported (server speaks {PROTO_VERSION})"
                        ),
                    },
                    true,
                );
            }
            (
                Response::Welcome {
                    session,
                    proto: PROTO_VERSION,
                },
                false,
            )
        }
        Request::RegisterDataset { name, columns } => match datasets.register(&name, columns) {
            Ok(qualified) => (Response::DatasetRegistered { qualified }, false),
            Err(e) => (
                Response::Failed {
                    error: e.to_string(),
                    transient: false,
                    salvaged: 0,
                },
                false,
            ),
        },
        Request::Submit { spec, deadline_ms } => {
            (handle_submit(shared, &spec, deadline_ms, datasets), false)
        }
        Request::Stats => (Response::StatsReply(shared.snapshot()), false),
        Request::Ping => (Response::Pong, false),
        Request::Drain => {
            shared.begin_drain();
            (Response::DrainStarted, false)
        }
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    spec: &crate::spec::WorkloadSpec,
    deadline_ms: Option<u64>,
    datasets: &SessionDatasets,
) -> Response {
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    if shared.state() != RUNNING {
        shared
            .counters
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        return Response::Draining;
    }
    let dag = match compile(spec, datasets) {
        Ok(dag) => dag,
        Err(e) => {
            return Response::Failed {
                error: e.to_string(),
                transient: false,
                salvaged: 0,
            }
        }
    };
    let deadline_ms = deadline_ms.or(shared.config.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = sync_channel(1);
    {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-check under the lock: `begin_drain` orders its transition
        // through this mutex, so a submission admitted here is always
        // seen (and finished) by the draining workers.
        if shared.state() != RUNNING {
            shared
                .counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return Response::Draining;
        }
        if queue.len() >= shared.config.queue_depth {
            shared
                .counters
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = shared.retry_after_ms(queue.len());
            return Response::Overloaded { retry_after_ms };
        }
        queue.push_back(Job {
            dag,
            deadline,
            enqueued: Instant::now(),
            reply: reply_tx,
        });
        shared.queue_cv.notify_one();
    }
    let wait = deadline.map_or(DEFAULT_REPLY_WAIT, |d| {
        d.saturating_duration_since(Instant::now()) + REPLY_MARGIN
    });
    match reply_rx.recv_timeout(wait) {
        Ok(response) => response,
        Err(_) => {
            // The worker outlived even the margin (or died); the
            // session gives up on this submission.
            let waited_ms = deadline_ms.unwrap_or(0);
            Response::TimedOut { waited_ms }
        }
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                // Drain: exit only once the queue is empty, so every
                // admitted workload still runs.
                if shared.state() != RUNNING {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let Job {
            dag,
            deadline,
            enqueued,
            reply,
        } = job;
        let response = run_job(shared, dag, deadline, enqueued);
        let _ = reply.send(response);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[allow(clippy::cast_possible_truncation)] // lint:reason queue waits are far below u64 milliseconds
fn waited_ms(enqueued: Instant) -> u64 {
    enqueued.elapsed().as_millis() as u64
}

fn run_job(
    shared: &Arc<Shared>,
    dag: WorkloadDag,
    deadline: Option<Instant>,
    enqueued: Instant,
) -> Response {
    let queue_ms = enqueued.elapsed().as_secs_f64() * 1e3;
    // Shed work whose deadline already passed while queued: running it
    // would waste a worker on a result nobody is waiting for.
    let remaining = match deadline {
        Some(d) => {
            let now = Instant::now();
            if now >= d {
                shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                return Response::TimedOut {
                    waited_ms: waited_ms(enqueued),
                };
            }
            Some(d - now)
        }
        None => None,
    };
    let started = Instant::now();
    let outcome = (|| {
        let pruned = PrunedWorkload::new(dag)?;
        let planned = shared.server.plan_workload(pruned)?;
        // Deadline propagation: the remaining request budget becomes
        // the executor's workload deadline.
        let config = shared.server.executor_config_with_deadline(remaining);
        let executed = planned.execute(&config);
        shared.server.publish_workload(executed)
    })();
    shared.observe_service(started.elapsed());
    match outcome {
        Ok((_, report)) => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            // lint:reason report counters are small non-negative counts
            Response::Done(WorkloadSummary {
                ops_executed: report.ops_executed as u64,
                artifacts_loaded: report.artifacts_loaded as u64,
                warmstarts: report.warmstarts as u64,
                run_seconds: report.run_seconds(),
                queue_ms,
            })
        }
        Err(workload_error) => {
            if matches!(workload_error.error, GraphError::DeadlineExceeded { .. }) {
                shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                return Response::TimedOut {
                    waited_ms: waited_ms(enqueued),
                };
            }
            // A read-only durability layer rejects the publish
            // retriably — surfaced like `Overloaded`, so the client
            // library backs off and resubmits instead of failing.
            if let GraphError::ReadOnly { retry_after_ms } = workload_error.error {
                return Response::ReadOnly { retry_after_ms };
            }
            Response::Failed {
                error: workload_error.error.to_string(),
                transient: workload_error.error.is_transient(),
                salvaged: workload_error.completed.len() as u64,
            }
        }
    }
}
