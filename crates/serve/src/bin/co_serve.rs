//! `co_serve` — run the networked front-end over a durable
//! [`OptimizerServer`].
//!
//! ```text
//! co_serve [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//!          [--queue-depth N] [--max-connections N] [--deadline-ms MS]
//!          [--budget-mb MB]
//! ```
//!
//! The workspace forbids `unsafe`, so there is no signal handler;
//! graceful drain is triggered by typing `drain` on stdin, by closing
//! stdin (EOF — what a supervisor's stopped pipe looks like), or by a
//! client sending the protocol `Drain` request. All three run the same
//! state machine: stop accepting, finish admitted work, flush durable
//! state, exit.

use co_core::{DurabilityConfig, OptimizerServer, ServerConfig};
use co_serve::{start, ServeConfig};
use std::io::BufRead;
use std::sync::Arc;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "co_serve: networked front-end for the collaborative optimizer\n\
             \n\
               --addr HOST:PORT       bind address (default 127.0.0.1:7431)\n\
               --data-dir DIR         durable data directory (default target/tmp/co_serve)\n\
               --workers N            worker threads (default 4)\n\
               --queue-depth N        admission queue depth (default 64)\n\
               --max-connections N    concurrent connection cap (default 256)\n\
               --deadline-ms MS       default per-request deadline (default none)\n\
               --budget-mb MB         materialization budget (default 256)\n\
             \n\
             Type 'drain' (or close stdin) for a graceful drain."
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7431".to_owned());
    let data_dir =
        arg_value(&args, "--data-dir").unwrap_or_else(|| "target/tmp/co_serve".to_owned());
    let budget_mb: u64 = parse(&args, "--budget-mb", 256);

    let server_config = ServerConfig::collaborative(budget_mb * 1024 * 1024);
    let (server, recovery) =
        match OptimizerServer::open(server_config, DurabilityConfig::new(&data_dir)) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("co_serve: cannot open data directory {data_dir}: {e}");
                std::process::exit(2);
            }
        };
    print!("{}", recovery.render());

    let mut config = ServeConfig::new(addr);
    config.workers = parse(&args, "--workers", config.workers);
    config.queue_depth = parse(&args, "--queue-depth", config.queue_depth);
    config.max_connections = parse(&args, "--max-connections", config.max_connections);
    config.default_deadline_ms = arg_value(&args, "--deadline-ms").and_then(|v| v.parse().ok());

    let mut handle = match start(Arc::new(server), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("co_serve: cannot bind: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "co_serve: listening on {} (data dir {data_dir}); type 'drain' or close stdin to stop",
        handle.local_addr()
    );

    // Block on stdin: a `drain` line or EOF begins the drain. A client
    // Drain request can also start it; poll for that so the process
    // exits either way.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) if line.trim() == "drain" => break,
            Ok(_) if line.trim() == "stats" => {
                println!("{:#?}", handle.stats());
            }
            Ok(_) => {}
            Err(_) => break,
        }
        if handle.is_draining() {
            break;
        }
    }

    println!("co_serve: draining (finishing admitted work, flushing journal)...");
    match handle.join() {
        Ok(stats) => {
            println!(
                "co_serve: drained cleanly — served {} of {} submissions \
                 ({} overload-rejected, {} drain-rejected, {} timed out)",
                stats.served,
                stats.submitted,
                stats.rejected_overload,
                stats.rejected_draining,
                stats.timed_out
            );
        }
        Err(e) => {
            eprintln!("co_serve: drain flush failed: {e}");
            std::process::exit(1);
        }
    }
}
