//! `load_gen` — replay synthetic concurrent clients against a
//! self-hosted `co-serve` front-end through three phases:
//!
//! 1. **open** — a steady population of clients submitting with
//!    retry under generous deadlines (everything should be served);
//! 2. **overload** — a burst well past the admission queue's depth,
//!    single-shot submissions, some with deadlines too tight to
//!    survive the backlog (exercises `Overloaded` and `TimedOut`);
//! 3. **drain** — clients submitting in a loop while the server
//!    drains mid-flight (admitted work finishes, the rest is rejected
//!    with `Draining`, and the data directory must pass egfsck).
//!
//! Emits `target/figures/BENCH_service_load.json` with per-phase
//! served / rejected / timed-out counts and p50/p99 service latency.
//! `--quick` shrinks the population for CI; the default replays
//! thousands of client connections.

use co_core::{DurabilityConfig, OptimizerServer, ServerConfig};
use co_dataframe::ColumnData;
use co_serve::{start, Client, Response, RetryConfig, ServeConfig, SpecStep, WorkloadSpec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scale knobs for one run.
struct Scale {
    /// Concurrent clients per wave in the open phase.
    open_clients: usize,
    /// Waves in the open phase.
    open_waves: usize,
    /// Submissions per open-phase client.
    open_submits: usize,
    /// Concurrent clients in the overload burst.
    burst_clients: usize,
    /// Single-shot submissions per burst client.
    burst_submits: usize,
    /// Clients looping through the drain phase.
    drain_clients: usize,
    /// Dataset rows per client.
    rows: usize,
}

impl Scale {
    fn quick() -> Scale {
        Scale {
            open_clients: 16,
            open_waves: 2,
            open_submits: 2,
            burst_clients: 48,
            burst_submits: 2,
            drain_clients: 16,
            rows: 48,
        }
    }

    fn full() -> Scale {
        Scale {
            open_clients: 120,
            open_waves: 10,
            open_submits: 2,
            burst_clients: 400,
            burst_submits: 3,
            drain_clients: 120,
            rows: 128,
        }
    }

    fn clients(&self) -> usize {
        self.open_clients * self.open_waves + self.burst_clients + self.drain_clients
    }
}

/// What one client observed across its submissions.
#[derive(Default)]
struct Observed {
    latencies_ms: Vec<f64>,
    served: u64,
    rejected_overload: u64,
    rejected_draining: u64,
    timed_out: u64,
    failed: u64,
    disconnected: u64,
}

impl Observed {
    fn absorb(&mut self, other: Observed) {
        self.latencies_ms.extend(other.latencies_ms);
        self.served += other.served;
        self.rejected_overload += other.rejected_overload;
        self.rejected_draining += other.rejected_draining;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
        self.disconnected += other.disconnected;
    }

    fn submitted(&self) -> u64 {
        self.served
            + self.rejected_overload
            + self.rejected_draining
            + self.timed_out
            + self.failed
            + self.disconnected
    }

    fn record(&mut self, response: &Response, elapsed: Duration) {
        match response {
            Response::Done(_) => {
                self.served += 1;
                self.latencies_ms.push(elapsed.as_secs_f64() * 1e3);
            }
            Response::Overloaded { .. } => self.rejected_overload += 1,
            Response::Draining => self.rejected_draining += 1,
            Response::TimedOut { .. } => self.timed_out += 1,
            _ => self.failed += 1,
        }
    }
}

/// Deterministic synthetic columns: client populations share one of 8
/// dataset contents, so the serve layer's content-qualified namespaces
/// both dedup (same seed) and stay disjoint (different seeds).
fn synth_columns(seed: u64, rows: usize) -> Vec<(String, ColumnData)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let f0: Vec<f64> = (0..rows)
        .map(|_| (next() % 10_000) as f64 / 10_000.0)
        .collect();
    let f1: Vec<f64> = (0..rows)
        .map(|_| (next() % 10_000) as f64 / 5_000.0 - 1.0)
        .collect();
    let label: Vec<f64> = f0
        .iter()
        .zip(&f1)
        .map(|(a, b)| f64::from(a + b > 1.0))
        .collect();
    vec![
        ("f0".to_owned(), ColumnData::Float(f0)),
        ("f1".to_owned(), ColumnData::Float(f1)),
        ("label".to_owned(), ColumnData::Float(label)),
    ]
}

/// A small pipeline over the client's dataset; every third client also
/// trains a model (warmstart/reuse pressure on the shared EG).
fn synth_spec(client_id: usize, train: bool) -> WorkloadSpec {
    let mut steps = vec![
        SpecStep::Load {
            dataset: "synth".to_owned(),
        },
        SpecStep::FilterGt {
            input: 0,
            column: "f0".to_owned(),
            value: 0.2,
        },
        SpecStep::Map {
            input: 1,
            column: "f1".to_owned(),
            f: co_serve::MapFnSpec::Abs,
            out: format!("abs_f1_{}", client_id % 4),
        },
        SpecStep::Agg {
            input: 2,
            column: "f0".to_owned(),
            f: co_serve::AggSpec::Mean,
        },
    ];
    let mut outputs = vec![3];
    if train {
        steps.push(SpecStep::TrainLogistic {
            input: 1,
            label: "label".to_owned(),
            lr: 0.1,
            max_iter: 12,
        });
        outputs.push(4);
    }
    WorkloadSpec { steps, outputs }
}

fn connect_and_register(addr: SocketAddr, id: usize, rows: usize) -> Option<Client> {
    let mut client = Client::connect(addr, &format!("load-gen-{id}")).ok()?;
    let columns = synth_columns((id % 8) as u64, rows);
    client.register_dataset("synth", columns).ok()?;
    Some(client)
}

/// Phase 1: steady population, retrying clients, generous deadlines.
fn phase_open(addr: SocketAddr, scale: &Scale) -> Observed {
    let mut total = Observed::default();
    let retry = RetryConfig::default();
    for wave in 0..scale.open_waves {
        let handles: Vec<_> = (0..scale.open_clients)
            .map(|i| {
                let id = wave * scale.open_clients + i;
                let rows = scale.rows;
                let submits = scale.open_submits;
                std::thread::spawn(move || {
                    let mut seen = Observed::default();
                    let Some(mut client) = connect_and_register(addr, id, rows) else {
                        seen.disconnected += 1;
                        return seen;
                    };
                    let spec = synth_spec(id, id.is_multiple_of(3));
                    for _ in 0..submits {
                        let started = Instant::now();
                        match client.submit_with_retry(&spec, Some(10_000), &retry) {
                            Ok(response) => seen.record(&response, started.elapsed()),
                            Err(_) => seen.disconnected += 1,
                        }
                    }
                    seen
                })
            })
            .collect();
        for handle in handles {
            if let Ok(seen) = handle.join() {
                total.absorb(seen);
            }
        }
    }
    total
}

/// Phase 2: a burst past the queue depth, no retry, some deadlines too
/// tight to survive the backlog.
fn phase_overload(addr: SocketAddr, scale: &Scale) -> Observed {
    let handles: Vec<_> = (0..scale.burst_clients)
        .map(|i| {
            let rows = scale.rows;
            let submits = scale.burst_submits;
            std::thread::spawn(move || {
                let mut seen = Observed::default();
                let Some(mut client) = connect_and_register(addr, i, rows) else {
                    seen.disconnected += 1;
                    return seen;
                };
                let spec = synth_spec(i, false);
                for s in 0..submits {
                    // Every other submission carries a 1 ms deadline:
                    // under burst backlog it expires in the queue and
                    // must come back TimedOut, not hold a worker.
                    let deadline = if (i + s) % 2 == 0 {
                        Some(1)
                    } else {
                        Some(10_000)
                    };
                    let started = Instant::now();
                    match client.submit(&spec, deadline) {
                        Ok(response) => seen.record(&response, started.elapsed()),
                        Err(_) => seen.disconnected += 1,
                    }
                }
                seen
            })
        })
        .collect();
    let mut total = Observed::default();
    for handle in handles {
        if let Ok(seen) = handle.join() {
            total.absorb(seen);
        }
    }
    total
}

/// Phase 3: clients loop submissions while the server drains under
/// them. Every submission must resolve to served, a clean rejection,
/// or a disconnect — never a hang.
fn phase_drain(addr: SocketAddr, scale: &Scale, begin_drain: impl FnOnce() + Send) -> Observed {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..scale.drain_clients)
            .map(|i| {
                let rows = scale.rows;
                scope.spawn(move || {
                    let mut seen = Observed::default();
                    let Some(mut client) = connect_and_register(addr, i, rows) else {
                        seen.disconnected += 1;
                        return seen;
                    };
                    let spec = synth_spec(i, false);
                    // Keep submitting until the drain reaches us (or a
                    // safety cap): every client should end its run on a
                    // clean `Draining` rejection or a disconnect.
                    let phase_cap = Instant::now() + Duration::from_secs(10);
                    while Instant::now() < phase_cap {
                        let started = Instant::now();
                        match client.submit(&spec, Some(10_000)) {
                            Ok(response) => {
                                let stop = matches!(response, Response::Draining);
                                let backoff = matches!(response, Response::Overloaded { .. });
                                seen.record(&response, started.elapsed());
                                if stop {
                                    break;
                                }
                                if backoff {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                            }
                            Err(_) => {
                                seen.disconnected += 1;
                                break;
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        // Let the population get mid-publish, then pull the plug.
        std::thread::sleep(Duration::from_millis(250));
        begin_drain();
        let mut total = Observed::default();
        for handle in handles {
            if let Ok(seen) = handle.join() {
                total.absorb(seen);
            }
        }
        total
    })
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // lint:reason quantile index is bounded by the sample count
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let idx = (((sorted.len() - 1) as f64) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn phase_json(name: &str, clients: usize, seen: &Observed) -> String {
    let mut sorted = seen.latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    format!(
        "    {{\"phase\": \"{name}\", \"clients\": {clients}, \"submitted\": {}, \
         \"served\": {}, \"rejected_overload\": {}, \"rejected_draining\": {}, \
         \"timed_out\": {}, \"failed\": {}, \"disconnected\": {}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        seen.submitted(),
        seen.served,
        seen.rejected_overload,
        seen.rejected_draining,
        seen.timed_out,
        seen.failed,
        seen.disconnected,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
    )
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("can create target/figures"); // co-lint:allow(no-panic) load harness: abort on setup failure is the intended behaviour
    dir
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };

    // Fresh durable server under target/tmp/load_gen; the post-drain
    // directory is left behind for egfsck sweeps.
    let data_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/load_gen");
    let _ = std::fs::remove_dir_all(&data_dir);
    let (server, _recovery) = OptimizerServer::open(
        ServerConfig::collaborative(256 * 1024 * 1024),
        DurabilityConfig::new(&data_dir),
    )
    // co-lint:allow(no-panic) load harness: abort on setup failure is the intended behaviour
    .expect("open durable server");

    let mut config = ServeConfig::new("127.0.0.1:0");
    config.workers = if quick { 2 } else { 4 };
    config.queue_depth = if quick { 8 } else { 16 };
    config.max_connections = 4096;
    let mut handle = start(Arc::new(server), config).expect("bind load_gen server"); // co-lint:allow(no-panic) load harness: abort on setup failure is the intended behaviour
    let addr = handle.local_addr();
    println!(
        "load_gen: serving on {addr} ({} synthetic clients, quick={quick})",
        scale.clients()
    );

    let started = Instant::now();
    println!("load_gen: phase 1/3 open...");
    let open = phase_open(addr, &scale);
    println!(
        "  open: {} served / {} submitted",
        open.served,
        open.submitted()
    );
    println!("load_gen: phase 2/3 overload...");
    let overload = phase_overload(addr, &scale);
    println!(
        "  overload: {} served, {} overload-rejected, {} timed out",
        overload.served, overload.rejected_overload, overload.timed_out
    );
    println!("load_gen: phase 3/3 drain...");
    let drain_handle = &handle;
    let drain = phase_drain(addr, &scale, move || drain_handle.begin_drain());
    println!(
        "  drain: {} served, {} drain-rejected, {} disconnected",
        drain.served, drain.rejected_draining, drain.disconnected
    );

    let stats = handle.join().expect("drain flushes cleanly"); // co-lint:allow(no-panic) load harness: a failed drain must fail the run loudly
    let wall = started.elapsed().as_secs_f64();

    // Post-drain invariant check over the data directory the drain
    // just flushed — the run fails loudly if the EG is not clean.
    let fsck = co_graph::fsck::check_data_dir(&data_dir, true).expect("fsck can read data dir"); // co-lint:allow(no-panic) load harness: a failed invariant check must fail the run loudly
    let egfsck_ok = fsck.violations.is_empty();
    println!(
        "load_gen: egfsck over {} — {} vertices, {} violations",
        data_dir.display(),
        fsck.vertices,
        fsck.violations.len()
    );

    let phases = [
        phase_json("open", scale.open_clients * scale.open_waves, &open),
        phase_json("overload", scale.burst_clients, &overload),
        phase_json("drain", scale.drain_clients, &drain),
    ]
    .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"service_load\",\n  \"quick\": {quick},\n  \
         \"clients\": {},\n  \"wall_seconds\": {wall:.3},\n  \"phases\": [\n{phases}\n  ],\n  \
         \"server\": {{\"workloads\": {}, \"submitted\": {}, \"served\": {}, \
         \"rejected_overload\": {}, \"rejected_draining\": {}, \"timed_out\": {}, \
         \"protocol_errors\": {}, \"connections\": {}}},\n  \
         \"egfsck_ok\": {egfsck_ok}\n}}\n",
        scale.clients(),
        stats.workloads,
        stats.submitted,
        stats.served,
        stats.rejected_overload,
        stats.rejected_draining,
        stats.timed_out,
        stats.protocol_errors,
        stats.connections,
    );
    let path = out_dir().join("BENCH_service_load.json");
    std::fs::write(&path, &json).expect("can write BENCH_service_load.json"); // co-lint:allow(no-panic) load harness: abort on teardown failure is the intended behaviour
    println!("  -> wrote {}", path.display());

    assert!(egfsck_ok, "post-drain data directory failed egfsck");
    assert!(
        overload.rejected_overload > 0,
        "overload phase produced no admission rejections — raise the burst"
    );
    assert!(
        drain.rejected_draining > 0 || drain.disconnected > 0,
        "drain phase ended without any client observing the drain"
    );
}
