//! Wire-transportable workload descriptions and per-session namespaces.
//!
//! A [`WorkloadSpec`] is the serializable analogue of a
//! [`co_core::Script`]: an ordered list of steps, each naming its input
//! steps by index, plus the set of requested outputs. The serve layer
//! compiles a spec against the submitting session's registered datasets
//! into a real `WorkloadDag`, so the optimizer, executor, and
//! materializer see exactly the same DAGs an in-process client builds.
//!
//! **Namespacing.** Source artifact identity in the Experiment Graph is
//! derived from the source *name* alone (`ArtifactId::source`), so two
//! remote clients registering different data under the same name would
//! collide. [`SessionDatasets::register`] therefore qualifies every
//! registered dataset with a content hash (`name@<fnv64>`): different
//! content never collides, while identical content registered by any
//! number of clients dedups onto the same artifacts — the collaborative
//! sharing the paper is about, preserved across the process boundary.

use co_core::Script;
use co_dataframe::{Column, ColumnData, DataFrame};
use co_graph::WorkloadDag;
use co_ml::linear::LogisticParams;
use std::collections::HashMap;

/// Cap on steps per spec — an admission guard, not a protocol limit.
pub const MAX_STEPS: usize = 512;

/// A unary numeric transform, wire form of `co_dataframe::ops::MapFn`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapFnSpec {
    /// `ln(1 + x)`.
    Log1p,
    /// Absolute value.
    Abs,
    /// Safe square root.
    Sqrt,
    /// Add a constant.
    AddConst(f64),
    /// Multiply by a constant.
    MulConst(f64),
}

impl MapFnSpec {
    fn to_map_fn(self) -> co_dataframe::ops::MapFn {
        use co_dataframe::ops::MapFn;
        match self {
            MapFnSpec::Log1p => MapFn::Log1p,
            MapFnSpec::Abs => MapFn::Abs,
            MapFnSpec::Sqrt => MapFn::Sqrt,
            MapFnSpec::AddConst(c) => MapFn::AddConst(c),
            MapFnSpec::MulConst(c) => MapFn::MulConst(c),
        }
    }
}

/// An aggregate function, wire form of `co_dataframe::ops::AggFn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// Sum.
    Sum,
    /// Mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Non-missing count.
    Count,
    /// Population standard deviation.
    Std,
}

impl AggSpec {
    fn to_agg_fn(self) -> co_dataframe::ops::AggFn {
        use co_dataframe::ops::AggFn;
        match self {
            AggSpec::Sum => AggFn::Sum,
            AggSpec::Mean => AggFn::Mean,
            AggSpec::Min => AggFn::Min,
            AggSpec::Max => AggFn::Max,
            AggSpec::Count => AggFn::Count,
            AggSpec::Std => AggFn::Std,
        }
    }
}

/// One step of a workload spec. `input` fields index earlier steps.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecStep {
    /// Load a dataset registered in this session.
    Load {
        /// Session-local dataset name (as registered).
        dataset: String,
    },
    /// Projection.
    Select {
        /// Producing step index.
        input: u32,
        /// Columns to keep.
        columns: Vec<String>,
    },
    /// Numeric row filter `column > value`.
    FilterGt {
        /// Producing step index.
        input: u32,
        /// Filter column.
        column: String,
        /// Threshold.
        value: f64,
    },
    /// Unary column transform appending column `out`.
    Map {
        /// Producing step index.
        input: u32,
        /// Input column.
        column: String,
        /// Transform.
        f: MapFnSpec,
        /// Output column name.
        out: String,
    },
    /// Train logistic regression.
    TrainLogistic {
        /// Producing step index.
        input: u32,
        /// Label column.
        label: String,
        /// Learning rate.
        lr: f64,
        /// Iteration budget.
        max_iter: u32,
    },
    /// Whole-column aggregate.
    Agg {
        /// Producing step index.
        input: u32,
        /// Aggregated column.
        column: String,
        /// Aggregate function.
        f: AggSpec,
    },
}

/// A wire-transportable workload: steps in dependency order plus the
/// requested output steps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// Steps; each step's inputs must have smaller indices.
    pub steps: Vec<SpecStep>,
    /// Indices of steps whose results the client requests.
    pub outputs: Vec<u32>,
}

/// Why a spec failed to compile into a workload DAG. These are client
/// errors (reported as a failed submission), not protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// FNV-1a 64 over raw bytes — content fingerprint for namespacing.
fn fnv1a64(chunks: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in chunks {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable content fingerprint of a dataset registration: column names,
/// dtypes, and every value, in order.
#[must_use]
pub fn content_fingerprint(columns: &[(String, ColumnData)]) -> u64 {
    let mut bytes: Vec<u8> = Vec::new();
    for (name, data) in columns {
        bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
        bytes.extend_from_slice(name.as_bytes());
        match data {
            ColumnData::Int(v) => {
                bytes.push(1);
                for x in v {
                    bytes.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                bytes.push(2);
                for x in v {
                    bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            ColumnData::Str(v) => {
                bytes.push(3);
                for s in v {
                    bytes.extend_from_slice(&(s.len() as u64).to_le_bytes());
                    bytes.extend_from_slice(s.as_bytes());
                }
            }
            ColumnData::Bool(v) => {
                bytes.push(4);
                for b in v {
                    bytes.push(u8::from(*b));
                }
            }
        }
    }
    fnv1a64(bytes.into_iter())
}

/// The datasets one session has registered: local name → (qualified
/// source name, frame). Frames hold `Arc`-backed columns, so cloning
/// one into a workload costs a pointer bump per column.
#[derive(Debug, Default)]
pub struct SessionDatasets {
    map: HashMap<String, (String, DataFrame)>,
}

impl SessionDatasets {
    /// An empty namespace.
    #[must_use]
    pub fn new() -> Self {
        SessionDatasets::default()
    }

    /// Register (or replace) a dataset under `name`. Returns the
    /// content-qualified source name used in the shared Experiment
    /// Graph.
    pub fn register(
        &mut self,
        name: &str,
        columns: Vec<(String, ColumnData)>,
    ) -> Result<String, SpecError> {
        if name.is_empty() {
            return Err(SpecError("dataset name is empty".into()));
        }
        if columns.is_empty() {
            return Err(SpecError(format!("dataset {name:?} has no columns")));
        }
        let qualified = format!("{name}@{:016x}", content_fingerprint(&columns));
        let cols: Vec<Column> = columns
            .into_iter()
            .map(|(cname, data)| Column::source(&qualified, &cname, data))
            .collect();
        let frame = DataFrame::new(cols)
            .map_err(|e| SpecError(format!("dataset {name:?} is not a valid frame: {e}")))?;
        self.map.insert(name.to_owned(), (qualified.clone(), frame));
        Ok(qualified)
    }

    /// Look up a registered dataset.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&(String, DataFrame)> {
        self.map.get(name)
    }

    /// Number of registered datasets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no dataset is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Compile a spec against a session's datasets into a workload DAG.
/// Purely structural — nothing executes; schema-level problems are left
/// to the server's static validator, which reports them with node
/// paths.
pub fn compile(spec: &WorkloadSpec, datasets: &SessionDatasets) -> Result<WorkloadDag, SpecError> {
    if spec.steps.is_empty() {
        return Err(SpecError("spec has no steps".into()));
    }
    if spec.steps.len() > MAX_STEPS {
        return Err(SpecError(format!(
            "spec has {} steps; the cap is {MAX_STEPS}",
            spec.steps.len()
        )));
    }
    if spec.outputs.is_empty() {
        return Err(SpecError("spec requests no outputs".into()));
    }
    let mut script = Script::new();
    let mut nodes = Vec::with_capacity(spec.steps.len());
    let input_of = |nodes: &Vec<co_graph::NodeId>, step: usize, input: u32| {
        let input = input as usize;
        if input >= step {
            return Err(SpecError(format!(
                "step {step} references step {input}, which is not earlier"
            )));
        }
        Ok(nodes[input])
    };
    for (i, step) in spec.steps.iter().enumerate() {
        let node = match step {
            SpecStep::Load { dataset } => {
                let (qualified, frame) = datasets.get(dataset).ok_or_else(|| {
                    SpecError(format!(
                        "dataset {dataset:?} is not registered in this session"
                    ))
                })?;
                script.load(qualified, frame.clone())
            }
            SpecStep::Select { input, columns } => {
                let node = input_of(&nodes, i, *input)?;
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                script
                    .select(node, &cols)
                    .map_err(|e| SpecError(format!("step {i} (select): {e}")))?
            }
            SpecStep::FilterGt {
                input,
                column,
                value,
            } => {
                let node = input_of(&nodes, i, *input)?;
                script
                    .filter(node, co_dataframe::ops::Predicate::gt_f(column, *value))
                    .map_err(|e| SpecError(format!("step {i} (filter): {e}")))?
            }
            SpecStep::Map {
                input,
                column,
                f,
                out,
            } => {
                let node = input_of(&nodes, i, *input)?;
                script
                    .map(node, column, f.to_map_fn(), out)
                    .map_err(|e| SpecError(format!("step {i} (map): {e}")))?
            }
            SpecStep::TrainLogistic {
                input,
                label,
                lr,
                max_iter,
            } => {
                let node = input_of(&nodes, i, *input)?;
                script
                    .train_logistic(
                        node,
                        label,
                        LogisticParams {
                            lr: *lr,
                            max_iter: *max_iter as usize,
                            ..LogisticParams::default()
                        },
                    )
                    .map_err(|e| SpecError(format!("step {i} (train_logistic): {e}")))?
            }
            SpecStep::Agg { input, column, f } => {
                let node = input_of(&nodes, i, *input)?;
                script
                    .agg(node, column, f.to_agg_fn())
                    .map_err(|e| SpecError(format!("step {i} (agg): {e}")))?
            }
        };
        nodes.push(node);
    }
    for output in &spec.outputs {
        let node = *nodes.get(*output as usize).ok_or_else(|| {
            SpecError(format!(
                "output {output} is out of range ({} steps)",
                spec.steps.len()
            ))
        })?;
        script
            .output(node)
            .map_err(|e| SpecError(format!("output {output}: {e}")))?;
    }
    Ok(script.into_dag())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<(String, ColumnData)> {
        vec![
            (
                "x".into(),
                ColumnData::Float((0..100).map(f64::from).collect()),
            ),
            (
                "y".into(),
                ColumnData::Int((0..100).map(|i| i64::from(i >= 50)).collect()),
            ),
        ]
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            steps: vec![
                SpecStep::Load {
                    dataset: "train".into(),
                },
                SpecStep::FilterGt {
                    input: 0,
                    column: "x".into(),
                    value: 3.0,
                },
                SpecStep::TrainLogistic {
                    input: 1,
                    label: "y".into(),
                    lr: 0.1,
                    max_iter: 20,
                },
            ],
            outputs: vec![2],
        }
    }

    #[test]
    fn compile_builds_the_script_dag() {
        let mut ds = SessionDatasets::new();
        ds.register("train", columns()).unwrap();
        let dag = compile(&spec(), &ds).unwrap();
        assert_eq!(dag.n_nodes(), 3);
        assert_eq!(dag.terminals().len(), 1);
    }

    #[test]
    fn same_content_same_namespace_different_content_diverges() {
        let mut a = SessionDatasets::new();
        let mut b = SessionDatasets::new();
        let qa = a.register("train", columns()).unwrap();
        let qb = b.register("train", columns()).unwrap();
        assert_eq!(qa, qb, "identical content converges (shared reuse)");

        let mut c = SessionDatasets::new();
        let mut other = columns();
        other[0].1 = ColumnData::Float((0..100).map(|i| f64::from(i) * 2.0).collect());
        let qc = c.register("train", other).unwrap();
        assert_ne!(qa, qc, "different content never collides");

        // And the compiled DAGs agree exactly when the content does.
        let da = compile(&spec(), &a).unwrap();
        let db = compile(&spec(), &b).unwrap();
        let dc = compile(&spec(), &c).unwrap();
        assert_eq!(
            da.nodes()[2].artifact,
            db.nodes()[2].artifact,
            "same content, same artifacts"
        );
        assert_ne!(da.nodes()[2].artifact, dc.nodes()[2].artifact);
    }

    #[test]
    fn forward_and_out_of_range_references_are_rejected() {
        let mut ds = SessionDatasets::new();
        ds.register("train", columns()).unwrap();
        let mut bad = spec();
        bad.steps[1] = SpecStep::FilterGt {
            input: 2,
            column: "x".into(),
            value: 0.0,
        };
        assert!(compile(&bad, &ds).is_err());

        let mut bad = spec();
        bad.outputs = vec![9];
        assert!(compile(&bad, &ds).is_err());
    }

    #[test]
    fn unknown_dataset_and_empty_specs_are_rejected() {
        let ds = SessionDatasets::new();
        assert!(compile(&spec(), &ds).is_err(), "dataset not registered");
        assert!(compile(&WorkloadSpec::default(), &ds).is_err());
        let mut no_out = spec();
        no_out.outputs.clear();
        let mut with_ds = SessionDatasets::new();
        with_ds.register("train", columns()).unwrap();
        assert!(compile(&no_out, &with_ds).is_err());
    }

    #[test]
    fn registration_rejects_degenerate_datasets() {
        let mut ds = SessionDatasets::new();
        assert!(ds.register("", columns()).is_err());
        assert!(ds.register("t", Vec::new()).is_err());
        // Mismatched column lengths are rejected by DataFrame::new.
        let ragged = vec![
            ("a".into(), ColumnData::Int(vec![1, 2, 3])),
            ("b".into(), ColumnData::Int(vec![1])),
        ];
        assert!(ds.register("t", ragged).is_err());
    }
}
