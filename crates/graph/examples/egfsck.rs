//! `egfsck` — offline invariant checker for a durability directory.
//!
//! Loads the Experiment Graph snapshot (if any), replays the write-ahead
//! journal read-only (a torn tail is reported, never truncated), and
//! checks every structural invariant of the recovered graph, its content
//! store, and the persisted quarantine state.
//!
//! Sharded data directories (`eg-<k>.egsnap` / `eg-<k>.wal` /
//! `eg.commit`, DESIGN.md §14) are detected automatically: recovery
//! reconstructs exactly the committed prefix across all shards and the
//! cross-shard invariants (vertex routing, edge symmetry, commit-log
//! consistency) are checked on top of the per-graph ones.
//!
//! ```text
//! cargo run --example egfsck -- <data-dir> [--no-dedup] [--quiet]
//! ```
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors — so the crash-matrix CI step can gate on it directly.

use co_graph::fsck;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut dedup = true;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-dedup" => dedup = false,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: egfsck <data-dir> [--no-dedup] [--quiet]");
                return ExitCode::from(0);
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("egfsck: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: egfsck <data-dir> [--no-dedup] [--quiet]");
        return ExitCode::from(2);
    };
    if !dir.is_dir() {
        eprintln!("egfsck: {} is not a directory", dir.display());
        return ExitCode::from(2);
    }

    let checked = match fsck::detect_shard_layout(&dir) {
        Some(n) => fsck::check_sharded_data_dir(&dir, n, dedup),
        None => fsck::check_data_dir(&dir, dedup),
    };
    match checked {
        Ok(report) => {
            if !quiet || !report.is_clean() {
                print!("{report}");
            }
            ExitCode::from(u8::from(!report.is_clean()))
        }
        Err(e) => {
            eprintln!("egfsck: {e}");
            ExitCode::from(2)
        }
    }
}
