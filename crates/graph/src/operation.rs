//! The operation extensibility trait (paper §4.2, Listing 2).
//!
//! New data-preprocessing or model-training operations implement
//! [`Operation`]: a stable name, a parameter digest, a declared output
//! kind, and a `run` body. The framework derives the operation hash —
//! "a hash based on the operation name and its parameters" (§4.1) — and
//! artifact identities from those.

use crate::artifact::NodeKind;
use crate::error::Result;
use crate::meta::{MetaResult, ValueMeta};
use crate::value::Value;
use co_dataframe::hash;
use co_ml::{ModelKind, TrainedModel};
use std::fmt;
use std::sync::Arc;

/// Stable hash of an operation's name + parameters.
pub type OpHash = u64;

/// A workload operation: either a data-preprocessing operation producing a
/// `Dataset`/`Aggregate`, or a model-training operation producing a
/// `Model` (the paper's `DataOperation` / `TrainOperation` split).
pub trait Operation: Send + Sync {
    /// Operation name (stable across runs).
    fn name(&self) -> &str;

    /// Stable digest of the operation parameters.
    fn params_digest(&self) -> String;

    /// The kind of artifact this operation produces.
    fn output_kind(&self) -> NodeKind;

    /// Execute the operation on its ordered inputs.
    fn run(&self, inputs: &[&Value]) -> Result<Value>;

    /// Static schema transfer: given the inferred metadata of the ordered
    /// inputs, produce the output's metadata *without executing anything*,
    /// or reject the configuration with a typed [`crate::MetaError`].
    ///
    /// The default returns [`ValueMeta::Unknown`], which propagates
    /// silently — custom operations stay valid with zero extra work, and
    /// downstream checks are suppressed rather than spuriously failed.
    fn infer(&self, _inputs: &[&ValueMeta]) -> MetaResult {
        Ok(ValueMeta::Unknown)
    }

    /// Whether this is a training operation that can be warmstarted
    /// (must be declared explicitly, per paper §4.2).
    fn warmstartable(&self) -> bool {
        false
    }

    /// The model family this training operation produces, if any — used to
    /// match warmstart candidates ("same artifact, same type", §6.2).
    fn model_kind(&self) -> Option<ModelKind> {
        None
    }

    /// Execute with a warmstart initialiser. The default ignores the
    /// initialiser; warmstartable training operations override this.
    fn run_warm(&self, inputs: &[&Value], _warmstart: Option<&TrainedModel>) -> Result<Value> {
        self.run(inputs)
    }

    /// Whether this operation *evaluates* a model: its aggregate output is
    /// a score the executor feeds back into the model vertex's quality
    /// attribute `q` (paper §3.2: model meta-data includes "the evaluation
    /// score of the model").
    fn is_evaluation(&self) -> bool {
        false
    }

    /// The operation hash: name + parameter digest.
    fn op_hash(&self) -> OpHash {
        hash::fnv1a_parts(&[self.name(), &self.params_digest()])
    }
}

impl fmt::Debug for dyn Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Operation({} {})", self.name(), self.params_digest())
    }
}

/// Shared handle to an operation.
pub type OpRef = Arc<dyn Operation>;

#[cfg(test)]
mod tests {
    use super::*;
    use co_dataframe::Scalar;

    /// The paper's Listing 2 example, transcribed: a user-defined
    /// operation needs only name/kind/params/run.
    struct ConstOp {
        value: f64,
    }

    impl Operation for ConstOp {
        fn name(&self) -> &str {
            "const"
        }
        fn params_digest(&self) -> String {
            hash::float_digest(self.value)
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Aggregate
        }
        fn run(&self, _inputs: &[&Value]) -> Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(self.value)))
        }
    }

    #[test]
    fn custom_operations_hash_by_name_and_params() {
        let a = ConstOp { value: 1.0 };
        let b = ConstOp { value: 2.0 };
        assert_ne!(a.op_hash(), b.op_hash());
        assert_eq!(a.op_hash(), ConstOp { value: 1.0 }.op_hash());
        assert!(!a.warmstartable());
        assert_eq!(a.model_kind(), None);
        let out = a.run(&[]).unwrap();
        assert_eq!(out.as_aggregate(), Some(&Scalar::Float(1.0)));
        // Default run_warm delegates to run.
        let out = a.run_warm(&[], None).unwrap();
        assert_eq!(out.as_aggregate(), Some(&Scalar::Float(1.0)));
    }
}
