//! Artifact identity and meta-data.

use co_dataframe::hash;
use std::fmt;

/// The three artifact kinds of the paper's data model (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A dataframe.
    Dataset,
    /// A scalar or small collection (e.g. an evaluation score).
    Aggregate,
    /// A trained ML model.
    Model,
}

impl NodeKind {
    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Dataset => "dataset",
            NodeKind::Aggregate => "aggregate",
            NodeKind::Model => "model",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Content-lineage identity of an artifact.
///
/// A source artifact hashes its dataset name; a derived artifact hashes the
/// producing operation and the ordered ids of its inputs. Two artifacts in
/// two different workloads share an id iff the same operation chain
/// produced them from the same sources — which is how the Experiment Graph
/// "quickly detects if it contains the artifacts of the workload DAG by
/// traversing the edges starting from the source" (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub u64);

impl ArtifactId {
    /// Identity of a raw source dataset.
    #[must_use]
    pub fn source(dataset: &str) -> Self {
        ArtifactId(hash::fnv1a_parts(&["source", dataset]))
    }

    /// Identity of the output of `op_hash` applied to `inputs` (order
    /// matters: `join(a, b) != join(b, a)`).
    #[must_use]
    pub fn derived(op_hash: u64, inputs: &[ArtifactId]) -> Self {
        let mut parts = Vec::with_capacity(inputs.len() + 1);
        parts.push(op_hash);
        parts.extend(inputs.iter().map(|a| a.0));
        ArtifactId(hash::combine_all(&parts))
    }
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The always-kept meta-data of an artifact (paper §3.2: names/types/sizes
/// for datasets; type, hyperparameters, and score for models).
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// Artifact kind.
    pub kind: NodeKind,
    /// Human-readable description: schema digest or model params digest.
    pub description: String,
    /// Content size in bytes.
    pub size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_identity_is_stable() {
        assert_eq!(ArtifactId::source("train"), ArtifactId::source("train"));
        assert_ne!(ArtifactId::source("train"), ArtifactId::source("test"));
    }

    #[test]
    fn derived_identity_tracks_op_and_inputs() {
        let a = ArtifactId::source("a");
        let b = ArtifactId::source("b");
        assert_eq!(
            ArtifactId::derived(1, &[a, b]),
            ArtifactId::derived(1, &[a, b])
        );
        assert_ne!(
            ArtifactId::derived(1, &[a, b]),
            ArtifactId::derived(1, &[b, a])
        );
        assert_ne!(
            ArtifactId::derived(1, &[a, b]),
            ArtifactId::derived(2, &[a, b])
        );
        assert_ne!(
            ArtifactId::derived(1, &[a]),
            ArtifactId::derived(1, &[a, a])
        );
    }
}
