//! The workload DAG: the client-side representation of one ML script
//! (paper §3.1, Figure 1).

use crate::artifact::{ArtifactId, NodeKind};
use crate::error::{GraphError, Result};
use crate::operation::OpRef;
use crate::value::Value;
use std::collections::HashMap;

/// Index of a node within one workload DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// One artifact vertex of a workload DAG.
#[derive(Debug, Clone)]
pub struct WorkloadNode {
    /// Content-lineage identity (shared with the Experiment Graph).
    pub artifact: ArtifactId,
    /// Artifact kind (declared by the producing operation).
    pub kind: NodeKind,
    /// Source name for source vertices.
    pub name: Option<String>,
    /// Content, when the client has already computed this vertex (sources
    /// always; intermediate vertices in interactive sessions).
    pub computed: Option<Value>,
    /// Executor annotation: compute time of the producing operation, in
    /// seconds.
    pub compute_time: Option<f64>,
    /// Executor annotation: content size in bytes.
    pub size: Option<u64>,
    /// Model quality (0 for non-models; set by the executor).
    pub quality: f64,
    /// Whether the user requested this vertex's result.
    pub terminal: bool,
    /// Index of the producing edge, if any (sources have none).
    pub producer: Option<usize>,
}

/// One operation edge. Multi-input operations list their ordered inputs —
/// the hyperedge equivalent of the paper's supernodes.
#[derive(Debug, Clone)]
pub struct WorkloadEdge {
    /// The operation.
    pub op: OpRef,
    /// Ordered input nodes.
    pub inputs: Vec<NodeId>,
    /// Output node.
    pub output: NodeId,
    /// Local pruning flag: inactive edges are skipped by the optimizer
    /// and executor (paper §3.1: the pruner "does not remove the edge from
    /// the DAG and only marks them as inactive").
    pub active: bool,
}

/// A workload DAG under construction or optimization.
///
/// Nodes are created in dependency order (an operation's inputs must
/// already exist), so the node index order is a topological order — the
/// executor and the reuse algorithms iterate `0..n_nodes()` directly.
#[derive(Debug, Clone, Default)]
pub struct WorkloadDag {
    nodes: Vec<WorkloadNode>,
    edges: Vec<WorkloadEdge>,
    by_artifact: HashMap<ArtifactId, NodeId>,
}

impl WorkloadDag {
    /// An empty workload.
    #[must_use]
    pub fn new() -> Self {
        WorkloadDag::default()
    }

    /// Add a raw source dataset with its content. Re-adding the same
    /// source returns the existing node.
    pub fn add_source(&mut self, name: &str, value: Value) -> NodeId {
        let artifact = ArtifactId::source(name);
        if let Some(&existing) = self.by_artifact.get(&artifact) {
            return existing;
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(WorkloadNode {
            artifact,
            kind: value.kind(),
            name: Some(name.to_owned()),
            size: Some(value.nbytes() as u64),
            computed: Some(value),
            compute_time: Some(0.0),
            quality: 0.0,
            terminal: false,
            producer: None,
        });
        self.by_artifact.insert(artifact, id);
        id
    }

    /// Apply an operation to existing nodes, producing a new node.
    ///
    /// If this exact operation over these exact inputs already exists in
    /// the workload, the existing node is returned — the intra-workload
    /// redundancy elimination that lets the paper's Workloads 2 and 3 beat
    /// the baseline even on their first run (§7.2).
    pub fn add_op(&mut self, op: OpRef, inputs: &[NodeId]) -> Result<NodeId> {
        for input in inputs {
            if input.0 >= self.nodes.len() {
                return Err(GraphError::UnknownNode(input.0));
            }
        }
        let input_artifacts: Vec<ArtifactId> =
            inputs.iter().map(|n| self.nodes[n.0].artifact).collect();
        let artifact = ArtifactId::derived(op.op_hash(), &input_artifacts);
        if let Some(&existing) = self.by_artifact.get(&artifact) {
            return Ok(existing);
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(WorkloadNode {
            artifact,
            kind: op.output_kind(),
            name: None,
            computed: None,
            compute_time: None,
            size: None,
            quality: 0.0,
            terminal: false,
            producer: Some(self.edges.len()),
        });
        self.edges.push(WorkloadEdge {
            op,
            inputs: inputs.to_vec(),
            output: id,
            active: true,
        });
        self.by_artifact.insert(artifact, id);
        Ok(id)
    }

    /// Mark a node as a terminal vertex (a requested result).
    pub fn mark_terminal(&mut self, node: NodeId) -> Result<()> {
        self.node_mut(node)?.terminal = true;
        Ok(())
    }

    /// Record content the client already holds for this node (interactive
    /// sessions: "every cell invocation ... computes some of the
    /// vertices").
    pub fn set_computed(&mut self, node: NodeId, value: Value) -> Result<()> {
        let n = self.node_mut(node)?;
        n.size = Some(value.nbytes() as u64);
        n.computed = Some(value);
        Ok(())
    }

    /// Executor annotation: measured compute time (seconds) and observed
    /// size for a node.
    pub fn annotate(&mut self, node: NodeId, compute_time: f64, size: u64) -> Result<()> {
        let n = self.node_mut(node)?;
        n.compute_time = Some(compute_time);
        n.size = Some(size);
        Ok(())
    }

    /// Number of nodes (artifacts).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (operations).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> Result<&WorkloadNode> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode(id.0))
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut WorkloadNode> {
        self.nodes
            .get_mut(id.0)
            .ok_or(GraphError::UnknownNode(id.0))
    }

    /// All nodes in topological (= index) order.
    #[must_use]
    pub fn nodes(&self) -> &[WorkloadNode] {
        &self.nodes
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[WorkloadEdge] {
        &self.edges
    }

    /// The producing edge of a node, if it has one.
    #[must_use]
    pub fn producer(&self, id: NodeId) -> Option<&WorkloadEdge> {
        self.nodes
            .get(id.0)
            .and_then(|n| n.producer)
            .map(|e| &self.edges[e])
    }

    /// The parents (operation inputs) of a node.
    #[must_use]
    pub fn parents(&self, id: NodeId) -> Vec<NodeId> {
        self.producer(id)
            .map(|e| e.inputs.clone())
            .unwrap_or_default()
    }

    /// Source nodes (no producer).
    #[must_use]
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].producer.is_none())
            .map(NodeId)
            .collect()
    }

    /// Terminal nodes.
    #[must_use]
    pub fn terminals(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].terminal)
            .map(NodeId)
            .collect()
    }

    /// Look up a node by artifact identity.
    #[must_use]
    pub fn node_by_artifact(&self, artifact: ArtifactId) -> Option<NodeId> {
        self.by_artifact.get(&artifact).copied()
    }

    /// The set of nodes on some path from a source to a terminal —
    /// i.e. the ancestors of the terminals (paper: edges "not in the path
    /// from source to terminal" are pruned).
    pub fn required_nodes(&self) -> Result<Vec<bool>> {
        let terminals = self.terminals();
        if terminals.is_empty() {
            return Err(GraphError::NoTerminals);
        }
        let mut required = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = terminals.iter().map(|t| t.0).collect();
        while let Some(i) = stack.pop() {
            if required[i] {
                continue;
            }
            required[i] = true;
            if let Some(e) = self.nodes[i].producer {
                stack.extend(self.edges[e].inputs.iter().map(|n| n.0));
            }
        }
        Ok(required)
    }

    /// The local pruner (paper §3.1, step 2): deactivate edges whose
    /// output is already computed client-side, and edges not on a
    /// source→terminal path. Returns the number of deactivated edges.
    pub fn prune(&mut self) -> Result<usize> {
        let required = self.required_nodes()?;
        let mut deactivated = 0;
        for edge in &mut self.edges {
            let out = &self.nodes[edge.output.0];
            let keep = required[edge.output.0] && out.computed.is_none();
            if edge.active && !keep {
                edge.active = false;
                deactivated += 1;
            }
        }
        Ok(deactivated)
    }

    /// Total annotated size of all artifacts, in bytes (the `S` column of
    /// the paper's Table 1).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.nodes.iter().filter_map(|n| n.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct AddOne;
    impl Operation for AddOne {
        fn name(&self) -> &str {
            "add_one"
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Aggregate
        }
        fn run(&self, inputs: &[&Value]) -> Result<Value> {
            let x = inputs[0]
                .as_aggregate()
                .and_then(Scalar::as_f64)
                .unwrap_or(0.0);
            Ok(Value::Aggregate(Scalar::Float(x + 1.0)))
        }
    }

    struct Pair;
    impl Operation for Pair {
        fn name(&self) -> &str {
            "pair"
        }
        fn params_digest(&self) -> String {
            String::new()
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Aggregate
        }
        fn run(&self, inputs: &[&Value]) -> Result<Value> {
            let a = inputs[0]
                .as_aggregate()
                .and_then(Scalar::as_f64)
                .unwrap_or(0.0);
            let b = inputs[1]
                .as_aggregate()
                .and_then(Scalar::as_f64)
                .unwrap_or(0.0);
            Ok(Value::Aggregate(Scalar::Float(a + b)))
        }
    }

    fn agg(v: f64) -> Value {
        Value::Aggregate(Scalar::Float(v))
    }

    #[test]
    fn construction_is_topological_and_deduplicated() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg(1.0));
        let a = dag.add_op(Arc::new(AddOne), &[s]).unwrap();
        let b = dag.add_op(Arc::new(AddOne), &[s]).unwrap();
        assert_eq!(a, b); // identical op on identical input deduplicates
        let c = dag.add_op(Arc::new(AddOne), &[a]).unwrap();
        assert_eq!(dag.n_nodes(), 3);
        assert_eq!(dag.n_edges(), 2);
        assert!(s.0 < a.0 && a.0 < c.0);
        assert_eq!(dag.parents(c), vec![a]);
        assert_eq!(dag.sources(), vec![s]);
    }

    #[test]
    fn re_adding_a_source_is_idempotent() {
        let mut dag = WorkloadDag::new();
        let s1 = dag.add_source("s", agg(1.0));
        let s2 = dag.add_source("s", agg(1.0));
        assert_eq!(s1, s2);
        assert_eq!(dag.n_nodes(), 1);
    }

    #[test]
    fn multi_input_ops_are_order_sensitive() {
        let mut dag = WorkloadDag::new();
        let s1 = dag.add_source("a", agg(1.0));
        let s2 = dag.add_source("b", agg(2.0));
        let ab = dag.add_op(Arc::new(Pair), &[s1, s2]).unwrap();
        let ba = dag.add_op(Arc::new(Pair), &[s2, s1]).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(dag.parents(ab), vec![s1, s2]);
    }

    #[test]
    fn pruning_deactivates_off_path_and_computed() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg(1.0));
        let used = dag.add_op(Arc::new(AddOne), &[s]).unwrap();
        let terminal = dag.add_op(Arc::new(AddOne), &[used]).unwrap();
        // A dangling branch the terminal does not need.
        let dangling = dag.add_op(Arc::new(Pair), &[s, used]).unwrap();
        dag.mark_terminal(terminal).unwrap();
        // `used` was computed in a previous interactive cell.
        dag.set_computed(used, agg(2.0)).unwrap();

        let deactivated = dag.prune().unwrap();
        assert_eq!(deactivated, 2);
        let edge_of = |n: NodeId| dag.producer(n).unwrap();
        assert!(!edge_of(dangling).active);
        assert!(!edge_of(used).active); // computed -> skip
        assert!(edge_of(terminal).active);
    }

    #[test]
    fn prune_without_terminals_errors() {
        let mut dag = WorkloadDag::new();
        dag.add_source("s", agg(1.0));
        assert!(matches!(dag.prune(), Err(GraphError::NoTerminals)));
    }

    #[test]
    fn annotations_and_total_size() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("s", agg(1.0));
        let a = dag.add_op(Arc::new(AddOne), &[s]).unwrap();
        dag.annotate(a, 0.25, 100).unwrap();
        assert_eq!(dag.node(a).unwrap().compute_time, Some(0.25));
        assert_eq!(dag.total_size(), 100 + 8);
        assert!(dag.annotate(NodeId(99), 0.0, 0).is_err());
    }

    #[test]
    fn unknown_inputs_are_rejected() {
        let mut dag = WorkloadDag::new();
        assert!(dag.add_op(Arc::new(AddOne), &[NodeId(5)]).is_err());
    }
}
