//! Sharding the Experiment Graph into N lock shards.
//!
//! One global `RwLock<ExperimentGraph>` serialises every publish; on a
//! busy server the lock — not the work — becomes the bottleneck. This
//! module partitions the graph by artifact id (the op-lineage hash, so
//! the partition is stable across runs and machines): vertex `v` lives
//! in shard [`shard_of`]`(v.id, n)`, each shard behind its own
//! `RwLock`. Publishes touching disjoint shard sets proceed in
//! parallel; a publish spanning several shards takes their write locks
//! in **strictly ascending index order** and holds them all until its
//! journal records and the cross-shard commit record are durable —
//! with a single global acquisition order a deadlock is impossible by
//! construction.
//!
//! The pieces:
//!
//! * [`shard_of`] — the partitioning function (a splitmix64 finalizer
//!   over the artifact id, mod N);
//! * [`GraphQuery`] — the read-path trait planners, the executor and
//!   the warmstart search use, so they work against either a plain
//!   [`ExperimentGraph`] or a sharded view;
//! * [`EgView`] — a consistent multi-shard read view (borrowing all N
//!   read guards), routing each query to the owning shard;
//! * [`ShardedEg`] — the shard array itself, with ordered-lock helpers
//!   and per-shard lock-wait accounting;
//! * [`rewire_children`] — the recovery pass that rebuilds cross-shard
//!   children links (per-shard snapshots and journals persist parent
//!   lists only — children are always derived);
//! * [`recover_shards`] — the shared startup-recovery routine (server
//!   and `egfsck`): load per-shard `EGSNAP 3` snapshots, replay the
//!   commit log, then replay each shard journal keeping exactly the
//!   records that are both beyond the shard's snapshot watermark and
//!   named by a commit record. A crash anywhere between the per-shard
//!   appends of one publish rolls the whole publish back.
//!
//! On-disk layout of a sharded data directory (`n` shards):
//!
//! ```text
//! eg-0.wal … eg-<n-1>.wal        one journal per shard (EGWAL 1)
//! eg-0.egsnap … eg-<n-1>.egsnap  per-shard snapshots (EGSNAP 3)
//! eg.commit                      the cross-shard commit log (EGCMT 1)
//! ```
//!
//! The single-journal layout (`eg.wal` / `eg.egsnap`) is unchanged and
//! remains the format written when the server runs with one shard.

use crate::artifact::ArtifactId;
use crate::error::{GraphError, Result};
use crate::experiment::{EgVertex, ExperimentGraph};
use crate::faults::FaultInjector;
use crate::journal::{self, QuarantineEntry};
use crate::lockorder;
use crate::snapshot;
use crate::storage::{ColumnVault, StorageManager};
use crate::value::Value;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Commit-log file name inside a sharded data directory.
pub const COMMIT_FILE: &str = "eg.commit";

/// Journal file name of shard `k` inside a sharded data directory.
#[must_use]
pub fn shard_journal_file(k: usize) -> String {
    format!("eg-{k}.wal")
}

/// Snapshot file name of shard `k` inside a sharded data directory.
#[must_use]
pub fn shard_snapshot_file(k: usize) -> String {
    format!("eg-{k}.egsnap")
}

/// The shard owning an artifact: a splitmix64 finalizer over the id
/// (artifact ids are op-lineage hashes, but finalizing again costs
/// nothing and protects against structured id patterns), mod the shard
/// count. With one shard everything maps to shard 0.
#[must_use]
pub fn shard_of(id: ArtifactId, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    #[allow(clippy::cast_possible_truncation)] // lint:reason < n_shards, which is a usize
    {
        (z % n_shards as u64) as usize
    }
}

/// The read-side interface of the Experiment Graph: everything the
/// planners, the execution snapshot, and the warmstart search need.
/// Implemented by [`ExperimentGraph`] itself (so single-shard callers
/// pass `&eg` unchanged) and by [`EgView`] (a borrowed multi-shard
/// view).
pub trait GraphQuery {
    /// Vertex lookup; `None` when the graph does not know the artifact.
    fn lookup(&self, id: ArtifactId) -> Option<&EgVertex>;
    /// Whether the artifact's content is held by the store right now.
    fn has_content(&self, id: ArtifactId) -> bool;
    /// Fetch stored content (cheap `Arc` clones; honours the store's
    /// injected load faults, like `StorageManager::get`).
    fn load_content(&self, id: ArtifactId) -> Option<Value>;
    /// The fault injector wired into the store(s), if any.
    fn fault_injector(&self) -> Option<Arc<FaultInjector>>;
}

impl GraphQuery for ExperimentGraph {
    fn lookup(&self, id: ArtifactId) -> Option<&EgVertex> {
        self.vertex(id).ok()
    }

    fn has_content(&self, id: ArtifactId) -> bool {
        self.is_materialized(id)
    }

    fn load_content(&self, id: ArtifactId) -> Option<Value> {
        self.storage().get(id)
    }

    fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.storage().fault_injector().map(Arc::clone)
    }
}

/// A borrowed view over all shards of a sharded Experiment Graph,
/// routing every query to the shard owning the artifact. Construct it
/// from the read guards of [`ShardedEg::read_all`]; holding all N read
/// guards makes the view a consistent cut (no publish can be half
/// visible, because a publish holds the write locks of every shard it
/// touches until it commits).
pub struct EgView<'a> {
    shards: Vec<&'a ExperimentGraph>,
}

impl<'a> EgView<'a> {
    /// Build a view over the given shard references, indexed by shard.
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    #[must_use]
    pub fn new(shards: Vec<&'a ExperimentGraph>) -> Self {
        assert!(!shards.is_empty(), "a view needs at least one shard");
        EgView { shards }
    }

    /// The shard owning `id`.
    #[must_use]
    pub fn owner(&self, id: ArtifactId) -> &'a ExperimentGraph {
        self.shards[shard_of(id, self.shards.len())]
    }

    /// Number of shards in the view.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total vertex count across all shards.
    #[must_use]
    pub fn n_vertices(&self) -> usize {
        self.shards.iter().map(|s| s.n_vertices()).sum()
    }
}

impl GraphQuery for EgView<'_> {
    fn lookup(&self, id: ArtifactId) -> Option<&EgVertex> {
        self.owner(id).vertex(id).ok()
    }

    fn has_content(&self, id: ArtifactId) -> bool {
        self.owner(id).is_materialized(id)
    }

    fn load_content(&self, id: ArtifactId) -> Option<Value> {
        self.owner(id).storage().get(id)
    }

    fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        // Every shard's store shares one injector; shard 0 stands in.
        self.shards[0].storage().fault_injector().map(Arc::clone)
    }
}

/// The Experiment Graph as an array of lock shards.
///
/// Locking protocol: any operation taking more than one **write** lock
/// must take them in ascending shard-index order ([`ShardedEg::write_set`]
/// enforces this), and hold all of them until the operation — including
/// its durability writes — is complete. Read-side consistency comes
/// from [`ShardedEg::read_all`], which acquires every read lock
/// (ascending, same order, so readers cannot deadlock writers either).
pub struct ShardedEg {
    shards: Vec<RwLock<ExperimentGraph>>,
    /// Nanoseconds spent *blocked* acquiring each shard's write lock
    /// (uncontended acquisitions cost nothing and are not counted).
    lock_wait_ns: Vec<AtomicU64>,
    vault: Option<Arc<ColumnVault>>,
    /// Identity in the runtime lock-order witness (see
    /// [`crate::lockorder`]); orders are only compared within one
    /// sharded graph.
    witness: u64,
}

/// Read guard for one shard, wrapping the raw lock guard together
/// with its lock-order witness token so release is reported exactly
/// when the lock drops. Derefs to [`ExperimentGraph`].
pub struct ShardReadGuard<'a> {
    inner: RwLockReadGuard<'a, ExperimentGraph>,
    _witness: lockorder::Held,
}

impl std::ops::Deref for ShardReadGuard<'_> {
    type Target = ExperimentGraph;
    fn deref(&self) -> &ExperimentGraph {
        &self.inner
    }
}

/// Write guard for one shard (see [`ShardReadGuard`]).
pub struct ShardWriteGuard<'a> {
    inner: RwLockWriteGuard<'a, ExperimentGraph>,
    _witness: lockorder::Held,
}

impl std::ops::Deref for ShardWriteGuard<'_> {
    type Target = ExperimentGraph;
    fn deref(&self) -> &ExperimentGraph {
        &self.inner
    }
}

impl std::ops::DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ExperimentGraph {
        &mut self.inner
    }
}

impl ShardedEg {
    /// A fresh sharded graph. With more than one shard and `dedup` on,
    /// all shards share one [`ColumnVault`] so cross-shard column
    /// deduplication matches the single-shard store's behaviour.
    #[must_use]
    pub fn new(n_shards: usize, dedup: bool) -> Self {
        let n = n_shards.max(1);
        let vault = (n > 1 && dedup).then(|| Arc::new(ColumnVault::new(n)));
        let shards = (0..n)
            .map(|_| {
                let mut eg = ExperimentGraph::new(dedup);
                if let Some(v) = &vault {
                    eg.set_storage(StorageManager::new_vaulted(Arc::clone(v)));
                }
                RwLock::new(eg)
            })
            .collect();
        ShardedEg {
            shards,
            lock_wait_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            vault,
            witness: lockorder::next_graph_id(),
        }
    }

    /// Assemble a sharded graph from recovered per-shard graphs (see
    /// [`recover_shards`], which also builds the shared vault).
    ///
    /// # Panics
    /// Panics when `graphs` is empty.
    #[must_use]
    pub fn from_graphs(graphs: Vec<ExperimentGraph>, vault: Option<Arc<ColumnVault>>) -> Self {
        assert!(
            !graphs.is_empty(),
            "a sharded graph needs at least one shard"
        );
        let n = graphs.len();
        ShardedEg {
            shards: graphs.into_iter().map(RwLock::new).collect(),
            lock_wait_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            vault,
            witness: lockorder::next_graph_id(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared column vault (present iff sharded + dedup).
    #[must_use]
    pub fn vault(&self) -> Option<&Arc<ColumnVault>> {
        self.vault.as_ref()
    }

    /// The shard index owning an artifact.
    #[must_use]
    pub fn shard_index(&self, id: ArtifactId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Read-lock one shard. The acquisition is reported to the
    /// lock-order witness first (in builds where it is active), so an
    /// ordering hazard panics with both sites instead of deadlocking.
    #[track_caller]
    pub fn read(&self, k: usize) -> ShardReadGuard<'_> {
        let witness = lockorder::acquire(self.witness, k, lockorder::Mode::Read);
        ShardReadGuard {
            inner: self.shards[k].read(),
            _witness: witness,
        }
    }

    /// Write-lock one shard, recording time spent blocked. Reported
    /// to the lock-order witness before blocking (see [`Self::read`]).
    #[track_caller]
    pub fn write(&self, k: usize) -> ShardWriteGuard<'_> {
        let witness = lockorder::acquire(self.witness, k, lockorder::Mode::Write);
        if let Some(guard) = self.shards[k].try_write() {
            return ShardWriteGuard {
                inner: guard,
                _witness: witness,
            };
        }
        let start = Instant::now();
        let guard = self.shards[k].write();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.lock_wait_ns[k].fetch_add(ns, Ordering::Relaxed);
        ShardWriteGuard {
            inner: guard,
            _witness: witness,
        }
    }

    /// Read-lock every shard in ascending order — a consistent cut of
    /// the whole graph (feed the guards to [`EgView::new`]).
    #[track_caller]
    #[must_use]
    pub fn read_all(&self) -> Vec<ShardReadGuard<'_>> {
        let mut guards = Vec::with_capacity(self.shards.len());
        for k in 0..self.shards.len() {
            guards.push(self.read(k));
        }
        guards
    }

    /// Write-lock every shard in ascending order — quiesces all
    /// publishes (used by compaction and eviction sweeps).
    #[track_caller]
    #[must_use]
    pub fn write_all(&self) -> Vec<ShardWriteGuard<'_>> {
        let mut guards = Vec::with_capacity(self.shards.len());
        for k in 0..self.shards.len() {
            guards.push(self.write(k));
        }
        guards
    }

    /// Write-lock the given shard set. `ks` must be strictly ascending
    /// and in range — the ordered-lock protocol that makes cross-shard
    /// publishes deadlock-free.
    ///
    /// # Panics
    /// Panics when `ks` is not strictly ascending (a protocol violation
    /// which could deadlock; failing loudly beats hanging).
    #[track_caller]
    #[must_use]
    pub fn write_set(&self, ks: &[usize]) -> Vec<(usize, ShardWriteGuard<'_>)> {
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "write_set requires strictly ascending shard indices, got {ks:?}"
        );
        let mut guards = Vec::with_capacity(ks.len());
        for &k in ks {
            guards.push((k, self.write(k)));
        }
        guards
    }

    /// Cumulative nanoseconds each shard's write lock kept acquirers
    /// blocked.
    #[must_use]
    pub fn lock_wait_ns(&self) -> Vec<u64> {
        self.lock_wait_ns
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Wire one fault injector into every shard's store.
    pub fn set_fault_injector(&self, faults: &Arc<FaultInjector>) {
        for k in 0..self.shards.len() {
            self.write(k)
                .storage_mut()
                .set_fault_injector(Arc::clone(faults));
        }
    }
}

/// Rebuild children links across a freshly recovered shard array.
/// Per-shard snapshots and journal records persist parent lists only
/// (children are derived state, exactly as in the single-shard
/// formats), so after every shard has loaded, each vertex registers
/// itself with its parents — wherever they live. Returns the (parent,
/// child) pairs whose parent no shard defines; a committed-prefix
/// recovery never produces any, so the server treats a non-empty list
/// as corruption while `egfsck` reports each entry.
#[must_use]
pub fn rewire_children(shards: &mut [ExperimentGraph]) -> Vec<(ArtifactId, ArtifactId)> {
    let n = shards.len();
    let mut links: Vec<Vec<(ArtifactId, ArtifactId)>> = vec![Vec::new(); n];
    let mut unresolved = Vec::new();
    for eg in shards.iter() {
        for id in eg.topo_order() {
            // Registration order does not matter, so a vertex the graph
            // cannot resolve (in-memory corruption) surfaces as an
            // unresolved self-link instead of panicking mid-recovery.
            let Ok(v) = eg.vertex(*id) else {
                unresolved.push((*id, *id));
                continue;
            };
            for &p in &v.parents {
                links[shard_of(p, n)].push((p, v.id));
            }
        }
    }
    for (k, pairs) in links.into_iter().enumerate() {
        for (p, c) in pairs {
            if shards[k].add_child_link(p, c).is_err() {
                unresolved.push((p, c));
            }
        }
    }
    unresolved
}

/// Everything [`recover_shards`] reconstructs from a sharded data
/// directory.
pub struct ShardRecovery {
    /// The recovered shards, children links rewired, indexed by shard.
    pub graphs: Vec<ExperimentGraph>,
    /// The shared column vault the graphs' stores use (present iff
    /// more than one shard and dedup on).
    pub vault: Option<Arc<ColumnVault>>,
    /// Recovered quarantine entries (persisted in shard 0 only).
    pub quarantine: Vec<QuarantineEntry>,
    /// Torn tails found: `(path, valid_len, bytes_discarded)`. The
    /// server truncates each; `egfsck` (read-only) reports them.
    pub torn: Vec<(PathBuf, u64, u64)>,
    /// Journal records applied (committed and beyond the watermark).
    pub deltas_applied: usize,
    /// Journal records skipped: already inside a snapshot watermark, or
    /// never committed (rolled back).
    pub deltas_skipped: usize,
    /// Distinct committed publishes named by the commit log.
    pub committed_publishes: usize,
    /// Highest sequence number seen anywhere (watermarks, journals,
    /// commit log) — the server re-seeds its counter past this.
    pub max_seq: u64,
    /// `(parent, child)` pairs whose parent no shard defines — empty
    /// after any committed-prefix recovery.
    pub unresolved_links: Vec<(ArtifactId, ArtifactId)>,
}

/// Reconstruct exactly the committed prefix from a sharded data
/// directory, without writing anything:
///
/// 1. load each shard's `EGSNAP 3` snapshot (absent ⇒ empty shard),
///    noting its sequence watermark;
/// 2. replay the commit log (torn tail ⇒ scan stops; those publishes
///    were never committed);
/// 3. replay each shard journal, applying a record iff its sequence
///    number is beyond the shard's watermark **and** committed — a
///    record without a sequence number is corruption in this layout;
/// 4. rebuild cross-shard children links ([`rewire_children`]).
///
/// The caller truncates the returned torn tails (server) or reports
/// them (`egfsck`).
pub fn recover_shards(dir: &Path, n_shards: usize, dedup: bool) -> Result<ShardRecovery> {
    let n = n_shards.max(1);
    let mut graphs = Vec::with_capacity(n);
    let mut watermarks = Vec::with_capacity(n);
    let mut qmap: HashMap<u64, (String, usize)> = HashMap::new();
    let mut max_seq = 0u64;
    for k in 0..n {
        let path = dir.join(shard_snapshot_file(k));
        if path.exists() {
            let restored = snapshot::load_shard_full(&path, dedup)?;
            for q in restored.quarantine {
                qmap.insert(q.op_hash, (q.name, q.failures));
            }
            max_seq = max_seq.max(restored.watermark);
            watermarks.push(restored.watermark);
            graphs.push(restored.graph);
        } else {
            watermarks.push(0);
            graphs.push(ExperimentGraph::new(dedup));
        }
    }

    let commit_path = dir.join(COMMIT_FILE);
    let commits = journal::replay_commits(&commit_path)?;
    let mut torn = Vec::new();
    if let Some(at) = commits.torn_at {
        torn.push((commit_path, at, commits.bytes_discarded));
    }
    let committed: HashSet<u64> = commits.records.iter().map(|r| r.seq).collect();
    for r in &commits.records {
        max_seq = max_seq.max(r.seq);
    }

    let mut deltas_applied = 0;
    let mut deltas_skipped = 0;
    for (k, graph) in graphs.iter_mut().enumerate() {
        let path = dir.join(shard_journal_file(k));
        let outcome = journal::replay(&path)?;
        if let Some(at) = outcome.torn_at {
            torn.push((path.clone(), at, outcome.bytes_discarded));
        }
        for (record, delta) in outcome.deltas.iter().enumerate() {
            let Some(seq) = delta.seq else {
                return Err(GraphError::corrupt(
                    path.display().to_string(),
                    record + 1,
                    "sharded journal record carries no sequence number",
                ));
            };
            max_seq = max_seq.max(seq);
            if seq <= watermarks[k] || !committed.contains(&seq) {
                deltas_skipped += 1;
                continue;
            }
            delta.apply_to_shard(graph)?;
            for q in &delta.quarantine_set {
                qmap.insert(q.op_hash, (q.name.clone(), q.failures));
            }
            for h in &delta.quarantine_cleared {
                qmap.remove(h);
            }
            deltas_applied += 1;
        }
    }

    // Re-home every store onto one shared vault (recovered stores are
    // empty — content is never persisted — so the swap loses nothing).
    let vault = (n > 1 && dedup).then(|| Arc::new(ColumnVault::new(n)));
    if let Some(v) = &vault {
        for graph in &mut graphs {
            graph.set_storage(StorageManager::new_vaulted(Arc::clone(v)));
        }
    }

    let unresolved_links = rewire_children(&mut graphs);
    let quarantine = qmap
        .into_iter()
        .map(|(op_hash, (name, failures))| QuarantineEntry {
            op_hash,
            name,
            failures,
        })
        .collect();
    Ok(ShardRecovery {
        graphs,
        vault,
        quarantine,
        torn,
        deltas_applied,
        deltas_skipped,
        committed_publishes: committed.len(),
        max_seq,
        unresolved_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::NodeKind;
    use crate::journal::{CommitLog, CommitRecord, EgDelta, FsyncPolicy, Journal};
    use std::fs;

    fn vertex(id: u64, parents: &[u64]) -> EgVertex {
        EgVertex {
            id: ArtifactId(id),
            kind: NodeKind::Dataset,
            frequency: 1,
            compute_time: 0.5,
            size: 64,
            quality: 0.0,
            description: String::new(),
            source_name: if parents.is_empty() {
                Some("src".to_owned())
            } else {
                None
            },
            op_hash: if parents.is_empty() {
                None
            } else {
                Some(id ^ 7)
            },
            parents: parents.iter().copied().map(ArtifactId).collect(),
            children: Vec::new(),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("co_graph_shard_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 8, 64] {
            for id in 0..200u64 {
                let k = shard_of(ArtifactId(id), n);
                assert!(k < n);
                assert_eq!(k, shard_of(ArtifactId(id), n));
            }
        }
        assert_eq!(shard_of(ArtifactId(u64::MAX), 1), 0);
        // The finalizer spreads consecutive ids: with 8 shards and 200
        // ids, every shard should see traffic.
        let mut hit = [false; 8];
        for id in 0..200u64 {
            hit[shard_of(ArtifactId(id), 8)] = true;
        }
        assert!(hit.iter().all(|h| *h), "{hit:?}");
    }

    #[test]
    fn view_routes_queries_to_the_owning_shard() {
        let n = 4;
        let mut graphs: Vec<ExperimentGraph> = (0..n).map(|_| ExperimentGraph::new(true)).collect();
        let ids = [3u64, 11, 19, 27, 35, 43];
        for &raw in &ids {
            let id = ArtifactId(raw);
            graphs[shard_of(id, n)]
                .restore_vertex_unlinked(vertex(raw, &[]))
                .unwrap();
        }
        let view = EgView::new(graphs.iter().collect());
        for &raw in &ids {
            let v = view.lookup(ArtifactId(raw)).unwrap();
            assert_eq!(v.id.0, raw);
        }
        assert!(view.lookup(ArtifactId(0xdead_beef)).is_none());
        assert_eq!(view.n_vertices(), ids.len());
    }

    #[test]
    fn write_set_enforces_ascending_order() {
        let eg = ShardedEg::new(4, true);
        let guards = eg.write_set(&[0, 2, 3]);
        assert_eq!(
            guards.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        drop(guards);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = eg.write_set(&[2, 1]);
        }))
        .is_err());
    }

    #[test]
    fn contended_write_lock_is_accounted() {
        let eg = Arc::new(ShardedEg::new(2, true));
        let held = Arc::clone(&eg);
        let guard = held.write(0);
        let other = Arc::clone(&eg);
        let waiter = std::thread::spawn(move || {
            let _g = other.write(0);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard);
        waiter.join().unwrap();
        let waits = eg.lock_wait_ns();
        assert!(waits[0] > 0, "{waits:?}");
        assert_eq!(waits[1], 0);
    }

    #[test]
    fn rewire_links_children_across_shards() {
        // Parent 3 and child 5 land in different shards of a 4-way
        // split (verified below), each restored unlinked.
        let n = 4;
        let (p, c) = (3u64, 5u64);
        assert_ne!(shard_of(ArtifactId(p), n), shard_of(ArtifactId(c), n));
        let mut graphs: Vec<ExperimentGraph> = (0..n).map(|_| ExperimentGraph::new(true)).collect();
        graphs[shard_of(ArtifactId(p), n)]
            .restore_vertex_unlinked(vertex(p, &[]))
            .unwrap();
        graphs[shard_of(ArtifactId(c), n)]
            .restore_vertex_unlinked(vertex(c, &[p]))
            .unwrap();
        let unresolved = rewire_children(&mut graphs);
        assert!(unresolved.is_empty(), "{unresolved:?}");
        let parent_shard = &graphs[shard_of(ArtifactId(p), n)];
        assert_eq!(
            parent_shard.vertex(ArtifactId(p)).unwrap().children,
            vec![ArtifactId(c)]
        );
        // A vertex whose parent exists nowhere is reported.
        graphs[shard_of(ArtifactId(9), n)]
            .restore_vertex_unlinked(vertex(9, &[0xdead]))
            .unwrap();
        let unresolved = rewire_children(&mut graphs);
        assert_eq!(unresolved, vec![(ArtifactId(0xdead), ArtifactId(9))]);
    }

    #[test]
    fn recovery_keeps_exactly_the_committed_prefix() {
        let dir = tmp_dir("committed_prefix");
        let n = 2;
        // Publish 1 (committed): vertex 3 in its owning shard.
        // Publish 2 (journalled but never committed — the crash hit
        // between the per-shard appends and the commit append): vertex 5
        // with parent 3, plus a frequency bump of 3.
        let (a, b) = (3u64, 5u64);
        let ka = shard_of(ArtifactId(a), n);
        let kb = shard_of(ArtifactId(b), n);
        assert_ne!(ka, kb);
        let mut journals: Vec<Journal> = (0..n)
            .map(|k| Journal::open(&dir.join(shard_journal_file(k)), FsyncPolicy::Always).unwrap())
            .collect();
        let mut commit = CommitLog::open(&dir.join(COMMIT_FILE)).unwrap();
        journals[ka]
            .append(
                &EgDelta {
                    seq: Some(1),
                    new_vertices: vec![vertex(a, &[])],
                    ..EgDelta::default()
                },
                None,
            )
            .unwrap();
        commit
            .append(
                &CommitRecord {
                    seq: 1,
                    shards: vec![u32::try_from(ka).unwrap()],
                },
                None,
            )
            .unwrap();
        journals[kb]
            .append(
                &EgDelta {
                    seq: Some(2),
                    new_vertices: vec![vertex(b, &[a])],
                    ..EgDelta::default()
                },
                None,
            )
            .unwrap();
        journals[ka]
            .append(
                &EgDelta {
                    seq: Some(2),
                    touched: vec![journal::VertexTouch {
                        id: ArtifactId(a),
                        frequency: 2,
                        compute_time: 0.5,
                        size: 64,
                        quality: 0.0,
                    }],
                    ..EgDelta::default()
                },
                None,
            )
            .unwrap();
        // No commit record for seq 2: the publish rolls back whole.
        drop(journals);
        drop(commit);

        let rec = recover_shards(&dir, n, true).unwrap();
        assert_eq!(rec.deltas_applied, 1);
        assert_eq!(rec.deltas_skipped, 2);
        assert_eq!(rec.committed_publishes, 1);
        assert_eq!(rec.max_seq, 2);
        assert!(rec.torn.is_empty());
        assert!(rec.unresolved_links.is_empty());
        assert!(rec.graphs[ka].contains(ArtifactId(a)));
        assert_eq!(rec.graphs[ka].vertex(ArtifactId(a)).unwrap().frequency, 1);
        assert!(!rec.graphs[kb].contains(ArtifactId(b)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_seqless_records_in_sharded_journals() {
        let dir = tmp_dir("seqless");
        let mut j = Journal::open(&dir.join(shard_journal_file(0)), FsyncPolicy::Always).unwrap();
        j.append(
            &EgDelta {
                seq: None,
                new_vertices: vec![vertex(1, &[])],
                ..EgDelta::default()
            },
            None,
        )
        .unwrap();
        drop(j);
        let err = recover_shards(&dir, 2, true).err().unwrap();
        assert!(err.to_string().contains("sequence number"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_graph_shares_one_vault() {
        let eg = ShardedEg::new(4, true);
        let vault = Arc::clone(eg.vault().unwrap());
        for k in 0..4 {
            let shard = eg.read(k);
            assert!(Arc::ptr_eq(shard.storage().vault().unwrap(), &vault));
        }
        // One shard and non-dedup stores get no vault.
        assert!(ShardedEg::new(1, true).vault().is_none());
        assert!(ShardedEg::new(4, false).vault().is_none());
    }

    #[test]
    fn witness_catches_descending_two_shard_write() {
        if !lockorder::ENABLED {
            // Release build without the lock-witness feature: the
            // witness is compiled out; nothing to observe.
            return;
        }
        let eg = ShardedEg::new(4, false);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _hi = eg.write(3);
            // Deliberate protocol violation: descending second write.
            let _lo = eg.write(1);
        }))
        .expect_err("descending write must be caught before it can deadlock");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("descending write"), "{msg}");
        // Both offending acquisition sites are named (this file).
        assert_eq!(msg.matches("shard.rs").count(), 2, "{msg}");
        // The witness unwound cleanly: the graph is usable afterwards.
        let _ok = eg.write_set(&[1, 3]);
    }

    #[test]
    fn witness_accepts_protocol_locking() {
        let eg = ShardedEg::new(4, false);
        drop(eg.write_set(&[0, 2, 3]));
        drop(eg.read_all());
        drop(eg.write_all());
        let _r = eg.read(1);
        let _w = eg.write(2);
    }
}
