//! Deterministic fault injection for robustness tests.
//!
//! A [`FaultInjector`] is installed on a [`crate::StorageManager`] (and
//! therefore on the Experiment Graph embedding it) and is consulted by
//! the storage layer and the executor:
//!
//! * **load faults** — the n-th `StorageManager::get` call misses, as if
//!   the artifact had been evicted or its content corrupted;
//! * **operation faults** — an operation, looked up by name, fails
//!   transiently or permanently for a bounded number of runs, or panics;
//! * **latency** — an operation's run is delayed by a fixed duration
//!   (to exercise deadlines);
//! * **crash points** — the durability layer (`crate::journal`,
//!   `crate::snapshot`) consults named [`CrashPoint`]s and aborts the
//!   current persistence step exactly as a process crash at that point
//!   would leave the files on disk (torn record, orphaned temp file).
//!
//! All state is interior-mutable and thread-safe, so one injector can
//! drive faults through a shared server from concurrent sessions. All
//! schedules are deterministic: no randomness, only counters.

use crate::error::{GraphError, Result};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// How an injected operation fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `OperationFailed { transient: true }` — eligible for retry.
    Transient,
    /// `OperationFailed { transient: false }` — not retried.
    Permanent,
    /// The operation panics (exercises executor panic isolation).
    Panic,
}

/// A named point inside the durability code path where an injected
/// "crash" can fire. Each simulates the on-disk state a real process
/// death at that instant would leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Die after writing roughly half of the snapshot temp file.
    SnapshotMidWrite,
    /// Die after writing the temp file but before fsyncing it.
    SnapshotPreFsync,
    /// Die after fsyncing the temp file but before the atomic rename.
    SnapshotPreRename,
    /// Die after writing roughly half of a journal record's frame.
    JournalMidAppend,
    /// Die before the journal record reaches the disk at all — the
    /// worst case of an unsynced write (the whole record is lost).
    JournalPreFsync,
    /// Sharded publish: die in the gap between two per-shard journal
    /// appends of one cross-shard publish — some shards hold the
    /// publish's record, others never receive theirs.
    ShardGapAppend,
    /// Sharded publish: die after every per-shard journal append but
    /// before the cross-shard commit record is written — the publish
    /// must be invisible after recovery.
    CommitPreAppend,
}

impl CrashPoint {
    /// Stable name, used in error messages and the crash-matrix test.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::SnapshotMidWrite => "snapshot-mid-write",
            CrashPoint::SnapshotPreFsync => "snapshot-pre-fsync",
            CrashPoint::SnapshotPreRename => "snapshot-pre-rename",
            CrashPoint::JournalMidAppend => "journal-mid-append",
            CrashPoint::JournalPreFsync => "journal-pre-fsync",
            CrashPoint::ShardGapAppend => "shard-gap-append",
            CrashPoint::CommitPreAppend => "commit-pre-append",
        }
    }

    /// Every crash point, for exhaustive crash-matrix tests.
    #[must_use]
    pub fn all() -> [CrashPoint; 7] {
        [
            CrashPoint::SnapshotMidWrite,
            CrashPoint::SnapshotPreFsync,
            CrashPoint::SnapshotPreRename,
            CrashPoint::JournalMidAppend,
            CrashPoint::JournalPreFsync,
            CrashPoint::ShardGapAppend,
            CrashPoint::CommitPreAppend,
        ]
    }
}

/// A named point in a *network* code path (the `co-serve` front-end)
/// where an injected connection-level fault can fire. Unlike
/// [`CrashPoint`]s, which simulate process death during a persistence
/// step, these simulate the peer or the network dying: the process
/// survives, the connection does not — so they prove that a killed
/// connection can never corrupt the shared Experiment Graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFault {
    /// The accepted connection is dropped before any byte is served —
    /// as if the accept itself failed or the peer reset immediately.
    AcceptFail,
    /// The connection dies roughly halfway through writing a frame
    /// (inside the length/CRC header or the early payload).
    MidFrameDisconnect,
    /// The write stalls for the injector's configured stall duration
    /// before proceeding (exercises client read timeouts).
    StalledWrite,
    /// A frame is written with a complete header but a truncated
    /// payload, then the connection closes — a torn frame.
    TornFrame,
}

impl NetFault {
    /// Stable name, used in error messages and the network fault matrix.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetFault::AcceptFail => "accept-fail",
            NetFault::MidFrameDisconnect => "mid-frame-disconnect",
            NetFault::StalledWrite => "stalled-write",
            NetFault::TornFrame => "torn-frame",
        }
    }

    /// Every network fault point, for exhaustive fault-matrix tests.
    #[must_use]
    pub fn all() -> [NetFault; 4] {
        [
            NetFault::AcceptFail,
            NetFault::MidFrameDisconnect,
            NetFault::StalledWrite,
            NetFault::TornFrame,
        ]
    }
}

/// A storage I/O failure the [`crate::vfs`] layer can inject into any
/// durability file operation (journal append, snapshot write, commit
/// log, cold column files). Unlike [`CrashPoint`]s, the process
/// survives: the *operation* fails, exactly as a full disk or a flaky
/// device would make it fail, and the caller must degrade gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFault {
    /// A write fails with "no space left on device" before any byte
    /// lands (ENOSPC).
    Enospc,
    /// A read fails with an I/O error (EIO) — unreadable sector.
    ReadErr,
    /// A write fails with an I/O error (EIO) before any byte lands.
    WriteErr,
    /// A write persists only a prefix of the buffer, then fails — the
    /// torn-record case recovery must truncate.
    ShortWrite,
    /// `fsync` fails. Following fsyncgate semantics the file handle is
    /// *poisoned*: the kernel may have dropped the dirty pages, so no
    /// later write or fsync through the same handle may assume the
    /// data persisted — every subsequent operation on the handle fails
    /// until it is reopened.
    FsyncFail,
}

impl IoFault {
    /// Stable name, used in error messages and the chaos matrix.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoFault::Enospc => "enospc",
            IoFault::ReadErr => "read-err",
            IoFault::WriteErr => "write-err",
            IoFault::ShortWrite => "short-write",
            IoFault::FsyncFail => "fsync-fail",
        }
    }

    /// Every I/O fault point, for exhaustive fault-matrix tests.
    #[must_use]
    pub fn all() -> [IoFault; 5] {
        [
            IoFault::Enospc,
            IoFault::ReadErr,
            IoFault::WriteErr,
            IoFault::ShortWrite,
            IoFault::FsyncFail,
        ]
    }
}

#[derive(Debug)]
struct OpFault {
    kind: FaultKind,
    /// Remaining runs that fault; `usize::MAX` means "forever".
    remaining: usize,
}

/// Deterministic fault schedule. See the module docs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    load_calls: AtomicUsize,
    failed_loads: AtomicUsize,
    fail_loads: Mutex<HashSet<usize>>,
    op_faults: Mutex<HashMap<String, OpFault>>,
    op_latency: Mutex<HashMap<String, Duration>>,
    crash_points: Mutex<HashSet<CrashPoint>>,
    crashes_fired: AtomicUsize,
    /// Remaining firings per network fault point; `usize::MAX` = forever.
    net_faults: Mutex<HashMap<NetFault, usize>>,
    net_faults_fired: AtomicUsize,
    /// Remaining firings per I/O fault; `usize::MAX` = forever.
    io_faults: Mutex<HashMap<IoFault, usize>>,
    io_faults_fired: AtomicUsize,
    /// Stall applied when [`NetFault::StalledWrite`] fires, in
    /// milliseconds (atomically adjustable mid-test).
    net_stall_ms: AtomicUsize,
}

impl FaultInjector {
    /// An injector with no faults scheduled.
    #[must_use]
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Make the `n`-th call to `StorageManager::get` (0-based, counted
    /// over the store's lifetime) miss.
    pub fn fail_nth_load(&self, n: usize) {
        self.fail_loads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(n);
    }

    /// Make the next `times` runs of the operation named `op` fail with
    /// the given kind. Replaces any previous schedule for `op`.
    pub fn fail_op(&self, op: &str, kind: FaultKind, times: usize) {
        self.op_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                op.to_owned(),
                OpFault {
                    kind,
                    remaining: times,
                },
            );
    }

    /// Make every run of `op` fail with the given kind, forever.
    pub fn fail_op_forever(&self, op: &str, kind: FaultKind) {
        self.fail_op(op, kind, usize::MAX);
    }

    /// Delay every run of `op` by `latency`.
    pub fn inject_latency(&self, op: &str, latency: Duration) {
        self.op_latency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(op.to_owned(), latency);
    }

    /// Storage hook: counts the call and reports whether this load
    /// should be dropped (treated as a miss).
    pub fn on_load(&self) -> bool {
        let n = self.load_calls.fetch_add(1, Ordering::SeqCst);
        let drop = self
            .fail_loads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&n);
        if drop {
            self.failed_loads.fetch_add(1, Ordering::SeqCst);
        }
        drop
    }

    /// Executor hook: applies latency and scheduled faults for `op`.
    /// Returns an error (or panics, for [`FaultKind::Panic`]) when a
    /// fault fires.
    pub fn before_run(&self, op: &str) -> Result<()> {
        let latency = self
            .op_latency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(op)
            .copied();
        if let Some(latency) = latency {
            std::thread::sleep(latency);
        }
        let kind = {
            let mut faults = self
                .op_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match faults.get_mut(op) {
                Some(fault) if fault.remaining > 0 => {
                    if fault.remaining != usize::MAX {
                        fault.remaining -= 1;
                    }
                    Some(fault.kind)
                }
                _ => None,
            }
        };
        match kind {
            None => Ok(()),
            Some(FaultKind::Transient) => Err(GraphError::op_failed_transient(
                op,
                "injected transient fault",
            )),
            Some(FaultKind::Permanent) => {
                Err(GraphError::op_failed(op, "injected permanent fault"))
            }
            // co-lint:allow(no-panic) the armed fault IS a panic; the executor catches and accounts it
            Some(FaultKind::Panic) => panic!("injected panic in operation {op:?}"),
        }
    }

    /// Arm a crash point: the next persistence step reaching `point`
    /// "crashes" (one-shot — the point disarms when it fires, so the
    /// recovery that follows runs cleanly).
    pub fn arm_crash(&self, point: CrashPoint) {
        self.crash_points
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(point);
    }

    /// Durability hook: consume `point` if armed. Returns whether the
    /// caller should simulate a crash here.
    pub fn take_crash(&self, point: CrashPoint) -> bool {
        let fired = self
            .crash_points
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&point);
        if fired {
            self.crashes_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Crash points fired so far.
    #[must_use]
    pub fn crashes_fired(&self) -> usize {
        self.crashes_fired.load(Ordering::SeqCst)
    }

    /// Arm a network fault point for the next `times` consultations
    /// (`usize::MAX` = forever). Replaces any previous schedule for
    /// `fault`; `times == 0` disarms it.
    pub fn arm_net_fault(&self, fault: NetFault, times: usize) {
        let mut faults = self
            .net_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if times == 0 {
            faults.remove(&fault);
        } else {
            faults.insert(fault, times);
        }
    }

    /// Serve-layer hook: consume one firing of `fault` if armed.
    /// Returns whether the caller should simulate the fault here.
    pub fn take_net_fault(&self, fault: NetFault) -> bool {
        let fired = {
            let mut faults = self
                .net_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match faults.get_mut(&fault) {
                Some(remaining) if *remaining > 0 => {
                    if *remaining != usize::MAX {
                        *remaining -= 1;
                        if *remaining == 0 {
                            faults.remove(&fault);
                        }
                    }
                    true
                }
                _ => false,
            }
        };
        if fired {
            self.net_faults_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Network fault points fired so far.
    #[must_use]
    pub fn net_faults_fired(&self) -> usize {
        self.net_faults_fired.load(Ordering::SeqCst)
    }

    /// Arm an I/O fault for the next `times` consultations
    /// (`usize::MAX` = forever). Replaces any previous schedule for
    /// `fault`; `times == 0` disarms it.
    pub fn arm_io_fault(&self, fault: IoFault, times: usize) {
        let mut faults = self
            .io_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if times == 0 {
            faults.remove(&fault);
        } else {
            faults.insert(fault, times);
        }
    }

    /// Vfs hook: consume one firing of `fault` if armed. Returns
    /// whether the caller should simulate the fault here.
    pub fn take_io_fault(&self, fault: IoFault) -> bool {
        let fired = {
            let mut faults = self
                .io_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match faults.get_mut(&fault) {
                Some(remaining) if *remaining > 0 => {
                    if *remaining != usize::MAX {
                        *remaining -= 1;
                        if *remaining == 0 {
                            faults.remove(&fault);
                        }
                    }
                    true
                }
                _ => false,
            }
        };
        if fired {
            self.io_faults_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Disarm every I/O fault at once — "the disk came back".
    pub fn clear_io_faults(&self) {
        self.io_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// I/O faults fired so far.
    #[must_use]
    pub fn io_faults_fired(&self) -> usize {
        self.io_faults_fired.load(Ordering::SeqCst)
    }

    /// Configure the stall applied when [`NetFault::StalledWrite`] fires.
    pub fn set_net_stall(&self, stall: Duration) {
        // Stalls beyond usize::MAX ms are clamped; tests use millis.
        let ms = usize::try_from(stall.as_millis()).unwrap_or(usize::MAX);
        self.net_stall_ms.store(ms, Ordering::SeqCst);
    }

    /// The configured stalled-write duration (default 50 ms).
    #[must_use]
    pub fn net_stall(&self) -> Duration {
        let ms = self.net_stall_ms.load(Ordering::SeqCst);
        if ms == 0 {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(ms as u64)
        }
    }

    /// Total `get` calls observed.
    #[must_use]
    pub fn loads_seen(&self) -> usize {
        self.load_calls.load(Ordering::SeqCst)
    }

    /// Loads dropped so far.
    #[must_use]
    pub fn loads_failed(&self) -> usize {
        self.failed_loads.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_load_fails_exactly_once() {
        let f = FaultInjector::new();
        f.fail_nth_load(1);
        assert!(!f.on_load()); // call 0
        assert!(f.on_load()); // call 1: dropped
        assert!(!f.on_load()); // call 2
        assert_eq!(f.loads_seen(), 3);
        assert_eq!(f.loads_failed(), 1);
    }

    #[test]
    fn op_faults_count_down() {
        let f = FaultInjector::new();
        f.fail_op("flaky", FaultKind::Transient, 2);
        assert!(f.before_run("flaky").unwrap_err().is_transient());
        assert!(f.before_run("flaky").is_err());
        assert!(f.before_run("flaky").is_ok());
        assert!(f.before_run("other").is_ok());
    }

    #[test]
    fn permanent_faults_never_clear() {
        let f = FaultInjector::new();
        f.fail_op_forever("broken", FaultKind::Permanent);
        for _ in 0..10 {
            let e = f.before_run("broken").unwrap_err();
            assert!(!e.is_transient());
        }
    }

    #[test]
    fn injected_panics_panic() {
        let f = FaultInjector::new();
        f.fail_op("udf", FaultKind::Panic, 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = f.before_run("udf");
        }));
        assert!(r.is_err());
        assert!(f.before_run("udf").is_ok()); // budget exhausted
    }

    #[test]
    fn crash_points_are_one_shot() {
        let f = FaultInjector::new();
        assert!(!f.take_crash(CrashPoint::SnapshotPreRename));
        f.arm_crash(CrashPoint::SnapshotPreRename);
        f.arm_crash(CrashPoint::JournalMidAppend);
        assert!(f.take_crash(CrashPoint::SnapshotPreRename));
        assert!(!f.take_crash(CrashPoint::SnapshotPreRename), "consumed");
        assert!(f.take_crash(CrashPoint::JournalMidAppend));
        assert_eq!(f.crashes_fired(), 2);
        assert_eq!(CrashPoint::all().len(), 7);
        for p in CrashPoint::all() {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn net_faults_count_down_and_disarm() {
        let f = FaultInjector::new();
        assert!(!f.take_net_fault(NetFault::AcceptFail));
        f.arm_net_fault(NetFault::AcceptFail, 2);
        assert!(f.take_net_fault(NetFault::AcceptFail));
        assert!(f.take_net_fault(NetFault::AcceptFail));
        assert!(!f.take_net_fault(NetFault::AcceptFail), "budget exhausted");
        f.arm_net_fault(NetFault::TornFrame, usize::MAX);
        for _ in 0..5 {
            assert!(f.take_net_fault(NetFault::TornFrame));
        }
        f.arm_net_fault(NetFault::TornFrame, 0); // disarm
        assert!(!f.take_net_fault(NetFault::TornFrame));
        assert_eq!(f.net_faults_fired(), 7);
        assert_eq!(NetFault::all().len(), 4);
        for p in NetFault::all() {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn io_faults_count_down_and_clear() {
        let f = FaultInjector::new();
        assert!(!f.take_io_fault(IoFault::Enospc));
        f.arm_io_fault(IoFault::Enospc, 2);
        assert!(f.take_io_fault(IoFault::Enospc));
        assert!(f.take_io_fault(IoFault::Enospc));
        assert!(!f.take_io_fault(IoFault::Enospc), "budget exhausted");
        f.arm_io_fault(IoFault::FsyncFail, usize::MAX);
        for _ in 0..5 {
            assert!(f.take_io_fault(IoFault::FsyncFail));
        }
        f.clear_io_faults(); // the disk comes back
        assert!(!f.take_io_fault(IoFault::FsyncFail));
        f.arm_io_fault(IoFault::ShortWrite, 3);
        f.arm_io_fault(IoFault::ShortWrite, 0); // disarm
        assert!(!f.take_io_fault(IoFault::ShortWrite));
        assert_eq!(f.io_faults_fired(), 7);
        assert_eq!(IoFault::all().len(), 5);
        for p in IoFault::all() {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn net_stall_defaults_and_configures() {
        let f = FaultInjector::new();
        assert_eq!(f.net_stall(), Duration::from_millis(50));
        f.set_net_stall(Duration::from_millis(7));
        assert_eq!(f.net_stall(), Duration::from_millis(7));
    }

    #[test]
    fn latency_delays_runs() {
        let f = FaultInjector::new();
        f.inject_latency("slow", Duration::from_millis(20));
        let start = std::time::Instant::now();
        f.before_run("slow").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
