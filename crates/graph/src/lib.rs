//! # co-graph
//!
//! The graph data model of the collaborative ML workload optimizer
//! (Derakhshan et al., SIGMOD 2020, §3–§4):
//!
//! * [`WorkloadDag`] — one user workload: vertices are artifacts
//!   (datasets, aggregates, models), edges are operations. Multi-input
//!   operations (the paper's *supernodes*) are modelled as hyperedges with
//!   an ordered input list, which is structurally equivalent.
//! * [`ExperimentGraph`] — the union of all executed workload DAGs. Every
//!   vertex carries `⟨frequency, compute_time, size, materialized⟩` plus a
//!   model-quality attribute `q`, and the graph always keeps artifact
//!   *meta-data* even when the content is not materialized.
//! * [`StorageManager`] — the artifact content store. Dataset content is
//!   keyed by [`co_dataframe::ColumnId`], so columns shared between
//!   artifacts (paper §5.3) are stored once; the gap between the *logical*
//!   size of materialized artifacts and the *real* bytes held is exactly
//!   what Figure 6 of the paper measures.
//! * [`Operation`] — the extensibility trait (paper Listing 2): new data
//!   or training operations implement `run` plus a stable
//!   name/parameter digest.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod cold;
pub mod error;
pub mod experiment;
pub mod export;
pub mod faults;
pub mod fsck;
pub mod journal;
pub mod lockorder;
pub mod meta;
pub mod operation;
pub mod shard;
pub mod snapshot;
pub mod storage;
pub mod value;
pub mod vfs;
pub mod workload;

pub use artifact::{ArtifactId, ArtifactMeta, NodeKind};
pub use cold::{ColdStore, ScrubOutcome};
pub use error::{GraphError, Result};
pub use experiment::{EgVertex, ExperimentGraph};
pub use faults::{CrashPoint, FaultInjector, FaultKind, IoFault, NetFault};
pub use fsck::{FsckCode, FsckReport, Violation};
pub use journal::{CommitLog, CommitRecord, EgDelta, FsyncPolicy, Journal, QuarantineEntry};
pub use meta::{DatasetMeta, MetaCode, MetaError, MetaResult, ModelMeta, ValueMeta};
pub use operation::{OpHash, OpRef, Operation};
pub use shard::{shard_of, EgView, GraphQuery, ShardReadGuard, ShardWriteGuard, ShardedEg};
pub use storage::{ColumnVault, StorageManager};
pub use value::{ModelArtifact, Value};
pub use workload::{NodeId, WorkloadDag, WorkloadEdge, WorkloadNode};
