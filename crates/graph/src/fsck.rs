//! `egfsck` — the Experiment Graph invariant checker.
//!
//! The Experiment Graph is long-lived shared state mutated by concurrent
//! publishers, a materializer with eviction, a crash-recovery path, and a
//! dedup store with manual reference counting. This module recomputes
//! every structural invariant from first principles and reports each
//! discrepancy as a typed [`Violation`]:
//!
//! * **Topology** — the topological order covers every vertex exactly
//!   once, and every parent precedes its child (which also proves
//!   acyclicity);
//! * **Referential integrity** — parent/child links only name vertices
//!   the graph defines, and every link is symmetric;
//! * **Source invariant** — a vertex has no producing op-hash iff it is
//!   registered as a source, and op-hash-less vertices have no parents;
//! * **Content agreement** — every stored artifact and every restored
//!   `mat` flag refers to a vertex the graph knows;
//! * **Storage accounting** — byte counters and per-column reference
//!   counts recomputed from the dedup store's contents
//!   ([`StorageManager::audit`](crate::StorageManager::audit));
//! * **Attribute sanity** — frequencies are positive, compute times
//!   finite and non-negative, qualities in `[0, 1]`;
//! * **Quarantine** — persisted quarantine entries are unique and carry
//!   a positive failure count.
//!
//! Entry points: [`check_graph`] for an in-memory graph,
//! [`check_with_quarantine`] to also vet persisted quarantine entries,
//! and [`check_data_dir`] to rebuild a graph from a durability directory
//! (snapshot + journal replay, read-only) and check the result — the
//! offline `egfsck` CLI (`examples/egfsck.rs`) and the crash-matrix CI
//! step use the latter. The server runs [`check_graph`] after every
//! publish and recovery in debug builds.

use crate::error::Result;
use crate::experiment::{EgVertex, ExperimentGraph};
use crate::journal::{self, QuarantineEntry};
use crate::shard::{self, shard_of};
use crate::snapshot;
use crate::storage::StorageManager;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Snapshot file name inside a durability directory (mirrors the
/// server's `DurabilityConfig::snapshot_path`).
pub const SNAPSHOT_FILE: &str = "eg.egsnap";
/// Journal file name inside a durability directory (mirrors the
/// server's `DurabilityConfig::journal_path`).
pub const JOURNAL_FILE: &str = "eg.wal";

/// Class of an invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsckCode {
    /// The topological order misses, duplicates, or invents vertices.
    TopoInconsistent,
    /// A parent does not precede its child in the topological order
    /// (includes cycles).
    OrderViolation,
    /// A parent/child link names a vertex the graph does not define.
    DanglingReference,
    /// A parent/child link present on one side only.
    AsymmetricLink,
    /// Source registration disagrees with the vertex's op-hash, or a
    /// source has parents.
    SourceInvariant,
    /// The store holds content for an artifact the graph does not know.
    StrayContent,
    /// A restored `mat` flag refers to a vertex the graph does not know.
    StrayRestoredFlag,
    /// The store's recomputed accounting disagrees with its counters.
    StorageAccounting,
    /// A vertex attribute is out of range (frequency, time, quality).
    BadAttribute,
    /// A quarantine entry is duplicated or carries no failures.
    QuarantineInvalid,
    /// A vertex lives in a shard other than the one its id hashes to.
    ShardMisrouted,
}

impl FsckCode {
    /// Stable kebab-case name, used in rendered reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FsckCode::TopoInconsistent => "topo-inconsistent",
            FsckCode::OrderViolation => "order-violation",
            FsckCode::DanglingReference => "dangling-reference",
            FsckCode::AsymmetricLink => "asymmetric-link",
            FsckCode::SourceInvariant => "source-invariant",
            FsckCode::StrayContent => "stray-content",
            FsckCode::StrayRestoredFlag => "stray-restored-flag",
            FsckCode::StorageAccounting => "storage-accounting",
            FsckCode::BadAttribute => "bad-attribute",
            FsckCode::QuarantineInvalid => "quarantine-invalid",
            FsckCode::ShardMisrouted => "shard-misrouted",
        }
    }
}

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violation class.
    pub code: FsckCode,
    /// What is wrong, naming the offending vertex/artifact ids.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code.name(), self.message)
    }
}

/// Result of one fsck pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
    /// Non-fatal observations (torn journal tail, replay statistics).
    pub notes: Vec<String>,
    /// Vertices examined.
    pub vertices: usize,
    /// Stored artifacts examined.
    pub artifacts: usize,
    /// Quarantine entries examined.
    pub quarantine_entries: usize,
}

impl FsckReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any violation of `code` was found.
    #[must_use]
    pub fn has(&self, code: FsckCode) -> bool {
        self.violations.iter().any(|v| v.code == code)
    }

    fn push(&mut self, code: FsckCode, message: String) {
        self.violations.push(Violation { code, message });
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "egfsck: {} vertices, {} stored artifacts, {} quarantine entries: {}",
            self.vertices,
            self.artifacts,
            self.quarantine_entries,
            if self.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Check every structural invariant of an in-memory Experiment Graph.
#[must_use]
pub fn check_graph(eg: &ExperimentGraph) -> FsckReport {
    let mut report = FsckReport {
        vertices: eg.n_vertices(),
        artifacts: eg.storage().n_artifacts(),
        ..FsckReport::default()
    };

    // Topological order: covers every vertex exactly once, invents none.
    let mut position: HashMap<_, usize> = HashMap::with_capacity(eg.n_vertices());
    for (pos, id) in eg.topo_order().iter().enumerate() {
        if !eg.contains(*id) {
            report.push(
                FsckCode::TopoInconsistent,
                format!("topo order names unknown vertex {:016x}", id.0),
            );
        }
        if position.insert(*id, pos).is_some() {
            report.push(
                FsckCode::TopoInconsistent,
                format!("vertex {:016x} appears twice in the topo order", id.0),
            );
        }
    }
    if eg.topo_order().len() != eg.n_vertices() {
        report.push(
            FsckCode::TopoInconsistent,
            format!(
                "topo order covers {} of {} vertices",
                eg.topo_order().len(),
                eg.n_vertices()
            ),
        );
    }

    let sources: HashSet<_> = eg.sources().iter().copied().collect();
    if sources.len() != eg.sources().len() {
        report.push(
            FsckCode::SourceInvariant,
            format!(
                "source list has {} entries but only {} distinct ids",
                eg.sources().len(),
                sources.len()
            ),
        );
    }

    for v in eg.vertices() {
        let my_pos = position.get(&v.id);
        if my_pos.is_none() {
            // Covered by the count mismatch above; still name the vertex.
            report.push(
                FsckCode::TopoInconsistent,
                format!("vertex {:016x} is missing from the topo order", v.id.0),
            );
        }

        // Parent links: defined, ordered before us, and symmetric.
        // Duplicate parents are legal (e.g. a self-join), so symmetry is
        // checked per distinct parent.
        for p in v.parents.iter().collect::<HashSet<_>>() {
            match eg.vertex(*p) {
                Err(_) => report.push(
                    FsckCode::DanglingReference,
                    format!("vertex {:016x} lists unknown parent {:016x}", v.id.0, p.0),
                ),
                Ok(pv) => {
                    if let (Some(my), Some(theirs)) = (my_pos, position.get(p)) {
                        if theirs >= my {
                            report.push(
                                FsckCode::OrderViolation,
                                format!(
                                    "parent {:016x} does not precede child {:016x} in the topo order",
                                    p.0, v.id.0
                                ),
                            );
                        }
                    }
                    if !pv.children.contains(&v.id) {
                        report.push(
                            FsckCode::AsymmetricLink,
                            format!(
                                "vertex {:016x} lists parent {:016x}, which does not list it as a child",
                                v.id.0, p.0
                            ),
                        );
                    }
                }
            }
        }
        for c in &v.children {
            match eg.vertex(*c) {
                Err(_) => report.push(
                    FsckCode::DanglingReference,
                    format!("vertex {:016x} lists unknown child {:016x}", v.id.0, c.0),
                ),
                Ok(cv) => {
                    if !cv.parents.contains(&v.id) {
                        report.push(
                            FsckCode::AsymmetricLink,
                            format!(
                                "vertex {:016x} lists child {:016x}, which does not list it as a parent",
                                v.id.0, c.0
                            ),
                        );
                    }
                }
            }
        }

        // Source invariant: no producing op-hash ⟺ registered source, and
        // a source derives from nothing. (Zero-input *derived* ops are
        // legal: they carry an op-hash and are not sources.)
        let is_source = sources.contains(&v.id);
        if v.op_hash.is_none() != is_source {
            report.push(
                FsckCode::SourceInvariant,
                format!(
                    "vertex {:016x} has {} op-hash but is {}registered as a source",
                    v.id.0,
                    if v.op_hash.is_none() { "no" } else { "an" },
                    if is_source { "" } else { "not " }
                ),
            );
        }
        if v.op_hash.is_none() && !v.parents.is_empty() {
            report.push(
                FsckCode::SourceInvariant,
                format!(
                    "source vertex {:016x} has {} parent(s)",
                    v.id.0,
                    v.parents.len()
                ),
            );
        }

        // Attribute sanity.
        if v.frequency == 0 {
            report.push(
                FsckCode::BadAttribute,
                format!("vertex {:016x} has frequency 0", v.id.0),
            );
        }
        if !v.compute_time.is_finite() || v.compute_time < 0.0 {
            report.push(
                FsckCode::BadAttribute,
                format!("vertex {:016x} has compute time {}", v.id.0, v.compute_time),
            );
        }
        if !v.quality.is_finite() || !(0.0..=1.0).contains(&v.quality) {
            report.push(
                FsckCode::BadAttribute,
                format!("vertex {:016x} has quality {}", v.id.0, v.quality),
            );
        }
    }

    // Content agreement: the store and the restored-mat set only refer
    // to vertices the graph defines. (Overlap between the two is benign:
    // re-materialization clears the restored flag lazily.)
    for id in eg.storage().materialized_ids() {
        if !eg.contains(id) {
            report.push(
                FsckCode::StrayContent,
                format!(
                    "store holds content for artifact {:016x}, which the graph does not define",
                    id.0
                ),
            );
        }
    }
    for id in eg.restored_materialized() {
        if !eg.contains(*id) {
            report.push(
                FsckCode::StrayRestoredFlag,
                format!(
                    "restored mat flag refers to artifact {:016x}, which the graph does not define",
                    id.0
                ),
            );
        }
    }

    // Storage accounting, recomputed from the store's own contents.
    for message in eg.storage().audit() {
        report.push(FsckCode::StorageAccounting, message);
    }

    report
}

/// [`check_graph`] plus vetting of persisted quarantine entries.
///
/// A quarantined op-hash legitimately names an operation absent from the
/// graph (it never succeeded), so membership is *not* checked — only
/// uniqueness and a positive failure count.
#[must_use]
pub fn check_with_quarantine(eg: &ExperimentGraph, quarantine: &[QuarantineEntry]) -> FsckReport {
    let mut report = check_graph(eg);
    report.quarantine_entries = quarantine.len();
    let mut seen = HashSet::with_capacity(quarantine.len());
    for q in quarantine {
        if !seen.insert(q.op_hash) {
            report.push(
                FsckCode::QuarantineInvalid,
                format!(
                    "op {:016x} ({}) is quarantined more than once",
                    q.op_hash, q.name
                ),
            );
        }
        if q.failures == 0 {
            report.push(
                FsckCode::QuarantineInvalid,
                format!(
                    "op {:016x} ({}) is quarantined with zero recorded failures",
                    q.op_hash, q.name
                ),
            );
        }
    }
    report
}

/// Offline check of a durability directory: load the snapshot (if any),
/// replay the journal, and fsck the resulting graph plus the recovered
/// quarantine state. Strictly read-only — unlike server recovery, a torn
/// journal tail is *reported* (as a note), never truncated.
pub fn check_data_dir(dir: &Path, dedup: bool) -> Result<FsckReport> {
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let (mut eg, mut qmap) = if snapshot_path.exists() {
        let restored = snapshot::load_full(&snapshot_path, dedup)?;
        let qmap: HashMap<u64, (String, usize)> = restored
            .quarantine
            .into_iter()
            .map(|q| (q.op_hash, (q.name, q.failures)))
            .collect();
        (restored.graph, qmap)
    } else {
        (ExperimentGraph::new(dedup), HashMap::new())
    };

    let journal_path = dir.join(JOURNAL_FILE);
    let outcome = journal::replay(&journal_path)?;
    for delta in &outcome.deltas {
        delta.apply(&mut eg)?;
        for q in &delta.quarantine_set {
            qmap.insert(q.op_hash, (q.name.clone(), q.failures));
        }
        for h in &delta.quarantine_cleared {
            qmap.remove(h);
        }
    }

    let quarantine: Vec<QuarantineEntry> = qmap
        .into_iter()
        .map(|(op_hash, (name, failures))| QuarantineEntry {
            op_hash,
            name,
            failures,
        })
        .collect();
    let mut report = check_with_quarantine(&eg, &quarantine);
    report.notes.push(format!(
        "snapshot {}, {} journal delta(s) replayed",
        if snapshot_path.exists() {
            "loaded"
        } else {
            "absent"
        },
        outcome.deltas.len()
    ));
    if let Some(at) = outcome.torn_at {
        report.notes.push(format!(
            "journal has a torn tail at byte {at} ({} byte(s) would be discarded on recovery)",
            outcome.bytes_discarded
        ));
    }
    Ok(report)
}

/// Detect a *sharded* data directory and its shard count: the number of
/// contiguous `eg-<k>.wal` / `eg-<k>.egsnap` pairs starting at shard 0.
/// Returns `None` for single-journal (or empty) directories.
#[must_use]
pub fn detect_shard_layout(dir: &Path) -> Option<usize> {
    let mut n = 0;
    while dir.join(shard::shard_journal_file(n)).exists()
        || dir.join(shard::shard_snapshot_file(n)).exists()
    {
        n += 1;
    }
    if n > 0 || dir.join(shard::COMMIT_FILE).exists() {
        Some(n.max(1))
    } else {
        None
    }
}

/// Check every structural invariant across the shards of a sharded
/// Experiment Graph, plus the sharding invariants themselves: each
/// vertex must live in the shard its id hashes to, and parent/child
/// links must resolve and be symmetric *across* shards. Per-shard
/// topological order is validated within each shard (parents in the
/// same shard must precede their children; cross-shard edges have no
/// single order to check — acyclicity there follows from referential
/// integrity plus each edge's parent being published no later than its
/// child).
#[must_use]
pub fn check_shards(shards: &[&ExperimentGraph], quarantine: &[QuarantineEntry]) -> FsckReport {
    let n = shards.len();
    let mut report = FsckReport {
        vertices: shards.iter().map(|s| s.n_vertices()).sum(),
        artifacts: shards.iter().map(|s| s.storage().n_artifacts()).sum(),
        ..FsckReport::default()
    };
    // Resolve an id to its vertex via the owning shard — the only place
    // it may legally live.
    let find = |id: crate::artifact::ArtifactId| -> Option<&EgVertex> {
        shards[shard_of(id, n)].vertex(id).ok()
    };

    for (k, eg) in shards.iter().enumerate() {
        // Per-shard topological order: covers this shard's vertices
        // exactly once.
        let mut position: HashMap<_, usize> = HashMap::with_capacity(eg.n_vertices());
        for (pos, id) in eg.topo_order().iter().enumerate() {
            if !eg.contains(*id) {
                report.push(
                    FsckCode::TopoInconsistent,
                    format!("shard {k} topo order names unknown vertex {:016x}", id.0),
                );
            }
            if position.insert(*id, pos).is_some() {
                report.push(
                    FsckCode::TopoInconsistent,
                    format!(
                        "vertex {:016x} appears twice in shard {k}'s topo order",
                        id.0
                    ),
                );
            }
        }
        if eg.topo_order().len() != eg.n_vertices() {
            report.push(
                FsckCode::TopoInconsistent,
                format!(
                    "shard {k} topo order covers {} of {} vertices",
                    eg.topo_order().len(),
                    eg.n_vertices()
                ),
            );
        }
        let sources: HashSet<_> = eg.sources().iter().copied().collect();
        if sources.len() != eg.sources().len() {
            report.push(
                FsckCode::SourceInvariant,
                format!(
                    "shard {k} source list has {} entries but only {} distinct ids",
                    eg.sources().len(),
                    sources.len()
                ),
            );
        }

        for v in eg.vertices() {
            // The sharding invariant itself.
            let home = shard_of(v.id, n);
            if home != k {
                report.push(
                    FsckCode::ShardMisrouted,
                    format!(
                        "vertex {:016x} lives in shard {k} but hashes to shard {home}",
                        v.id.0
                    ),
                );
            }
            let my_pos = position.get(&v.id);

            for p in v.parents.iter().collect::<HashSet<_>>() {
                match find(*p) {
                    None => report.push(
                        FsckCode::DanglingReference,
                        format!(
                            "vertex {:016x} (shard {k}) lists unknown parent {:016x}",
                            v.id.0, p.0
                        ),
                    ),
                    Some(pv) => {
                        if shard_of(*p, n) == k {
                            if let (Some(my), Some(theirs)) = (my_pos, position.get(p)) {
                                if theirs >= my {
                                    report.push(
                                        FsckCode::OrderViolation,
                                        format!(
                                            "parent {:016x} does not precede child {:016x} in shard {k}'s topo order",
                                            p.0, v.id.0
                                        ),
                                    );
                                }
                            }
                        }
                        if !pv.children.contains(&v.id) {
                            report.push(
                                FsckCode::AsymmetricLink,
                                format!(
                                    "vertex {:016x} lists parent {:016x}, which does not list it as a child",
                                    v.id.0, p.0
                                ),
                            );
                        }
                    }
                }
            }
            for c in &v.children {
                match find(*c) {
                    None => report.push(
                        FsckCode::DanglingReference,
                        format!(
                            "vertex {:016x} (shard {k}) lists unknown child {:016x}",
                            v.id.0, c.0
                        ),
                    ),
                    Some(cv) => {
                        if !cv.parents.contains(&v.id) {
                            report.push(
                                FsckCode::AsymmetricLink,
                                format!(
                                    "vertex {:016x} lists child {:016x}, which does not list it as a parent",
                                    v.id.0, c.0
                                ),
                            );
                        }
                    }
                }
            }

            let is_source = sources.contains(&v.id);
            if v.op_hash.is_none() != is_source {
                report.push(
                    FsckCode::SourceInvariant,
                    format!(
                        "vertex {:016x} has {} op-hash but is {}registered as a source",
                        v.id.0,
                        if v.op_hash.is_none() { "no" } else { "an" },
                        if is_source { "" } else { "not " }
                    ),
                );
            }
            if v.op_hash.is_none() && !v.parents.is_empty() {
                report.push(
                    FsckCode::SourceInvariant,
                    format!(
                        "source vertex {:016x} has {} parent(s)",
                        v.id.0,
                        v.parents.len()
                    ),
                );
            }
            if v.frequency == 0 {
                report.push(
                    FsckCode::BadAttribute,
                    format!("vertex {:016x} has frequency 0", v.id.0),
                );
            }
            if !v.compute_time.is_finite() || v.compute_time < 0.0 {
                report.push(
                    FsckCode::BadAttribute,
                    format!("vertex {:016x} has compute time {}", v.id.0, v.compute_time),
                );
            }
            if !v.quality.is_finite() || !(0.0..=1.0).contains(&v.quality) {
                report.push(
                    FsckCode::BadAttribute,
                    format!("vertex {:016x} has quality {}", v.id.0, v.quality),
                );
            }
        }

        for id in eg.storage().materialized_ids() {
            if !eg.contains(id) {
                report.push(
                    FsckCode::StrayContent,
                    format!(
                        "shard {k}'s store holds content for artifact {:016x}, which it does not define",
                        id.0
                    ),
                );
            }
        }
        for id in eg.restored_materialized() {
            if !eg.contains(*id) {
                report.push(
                    FsckCode::StrayRestoredFlag,
                    format!(
                        "shard {k}'s restored mat flag refers to artifact {:016x}, which it does not define",
                        id.0
                    ),
                );
            }
        }
        for message in eg.storage().audit() {
            report.push(FsckCode::StorageAccounting, format!("shard {k}: {message}"));
        }
    }

    // Cross-shard dedup accounting: the shared vault's refcounts and
    // byte counter, recomputed across every shard's store.
    if let Some(vault) = shards.first().and_then(|s| s.storage().vault()) {
        let managers: Vec<&StorageManager> = shards.iter().map(|s| s.storage()).collect();
        for message in vault.audit(&managers) {
            report.push(FsckCode::StorageAccounting, message);
        }
    }

    report.quarantine_entries = quarantine.len();
    let mut seen = HashSet::with_capacity(quarantine.len());
    for q in quarantine {
        if !seen.insert(q.op_hash) {
            report.push(
                FsckCode::QuarantineInvalid,
                format!(
                    "op {:016x} ({}) is quarantined more than once",
                    q.op_hash, q.name
                ),
            );
        }
        if q.failures == 0 {
            report.push(
                FsckCode::QuarantineInvalid,
                format!(
                    "op {:016x} ({}) is quarantined with zero recorded failures",
                    q.op_hash, q.name
                ),
            );
        }
    }
    report
}

/// Offline check of a *sharded* durability directory: reconstruct
/// exactly the committed prefix ([`shard::recover_shards`], read-only —
/// torn tails are reported, never truncated) and run [`check_shards`]
/// over the result.
pub fn check_sharded_data_dir(dir: &Path, n_shards: usize, dedup: bool) -> Result<FsckReport> {
    let recovery = shard::recover_shards(dir, n_shards, dedup)?;
    let refs: Vec<&ExperimentGraph> = recovery.graphs.iter().collect();
    let mut report = check_shards(&refs, &recovery.quarantine);
    for (parent, child) in &recovery.unresolved_links {
        report.push(
            FsckCode::DanglingReference,
            format!(
                "recovered vertex {:016x} lists parent {:016x}, which no shard defines",
                child.0, parent.0
            ),
        );
    }
    report.notes.push(format!(
        "{} shard(s): {} committed publish(es), {} journal record(s) applied, {} skipped (pre-watermark or uncommitted)",
        recovery.graphs.len(),
        recovery.committed_publishes,
        recovery.deltas_applied,
        recovery.deltas_skipped,
    ));
    for (path, at, discarded) in &recovery.torn {
        report.notes.push(format!(
            "{} has a torn tail at byte {at} ({discarded} byte(s) would be discarded on recovery)",
            path.display()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactId, NodeKind};
    use crate::operation::Operation;
    use crate::value::Value;
    use crate::workload::WorkloadDag;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct Step(&'static str, f64);

    impl Operation for Step {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            co_dataframe::hash::float_digest(self.1)
        }
        fn output_kind(&self) -> NodeKind {
            NodeKind::Dataset
        }
        fn run(&self, _inputs: &[&Value]) -> Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(self.1)))
        }
    }

    /// src -> a -> b, src -> c; all annotated.
    fn healthy_graph() -> (ExperimentGraph, Vec<ArtifactId>) {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag.add_op(Arc::new(Step("a", 1.0)), &[s]).unwrap();
        let b = dag.add_op(Arc::new(Step("b", 2.0)), &[a]).unwrap();
        let c = dag.add_op(Arc::new(Step("c", 3.0)), &[s]).unwrap();
        dag.mark_terminal(b).unwrap();
        dag.mark_terminal(c).unwrap();
        for (n, t) in [(a, 1.0), (b, 2.0), (c, 3.0)] {
            dag.annotate(n, t, 10).unwrap();
        }
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let ids = dag.nodes().iter().map(|n| n.artifact).collect();
        (eg, ids)
    }

    #[test]
    fn healthy_graph_is_clean() {
        let (eg, _) = healthy_graph();
        let report = check_graph(&eg);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.vertices, 4);
    }

    #[test]
    fn dangling_parent_is_detected() {
        let (mut eg, ids) = healthy_graph();
        eg.vertex_mut(ids[1]).unwrap().parents = vec![ArtifactId(0xdead)];
        let report = check_graph(&eg);
        assert!(report.has(FsckCode::DanglingReference), "{report}");
        // The old parent still lists us as a child: asymmetric too.
        assert!(report.has(FsckCode::AsymmetricLink), "{report}");
    }

    #[test]
    fn rewired_edge_breaking_topo_order_is_detected() {
        let (mut eg, ids) = healthy_graph();
        // Make `a` (position 1) claim the later `c` (position 3) as a
        // parent: order violation (the shape a cycle would take).
        eg.vertex_mut(ids[1]).unwrap().parents.push(ids[3]);
        let report = check_graph(&eg);
        assert!(report.has(FsckCode::OrderViolation), "{report}");
    }

    #[test]
    fn asymmetric_child_link_is_detected() {
        let (mut eg, ids) = healthy_graph();
        eg.vertex_mut(ids[0])
            .unwrap()
            .children
            .retain(|c| *c != ids[1]);
        let report = check_graph(&eg);
        assert!(report.has(FsckCode::AsymmetricLink), "{report}");
    }

    #[test]
    fn source_invariant_is_detected() {
        let (mut eg, ids) = healthy_graph();
        // A derived vertex masquerading as a source.
        eg.vertex_mut(ids[2]).unwrap().op_hash = None;
        let report = check_graph(&eg);
        assert!(report.has(FsckCode::SourceInvariant), "{report}");
    }

    #[test]
    fn bad_attributes_are_detected() {
        let (mut eg, ids) = healthy_graph();
        eg.vertex_mut(ids[1]).unwrap().frequency = 0;
        eg.vertex_mut(ids[2]).unwrap().quality = 2.0;
        eg.vertex_mut(ids[3]).unwrap().compute_time = f64::NAN;
        let report = check_graph(&eg);
        let bad = report
            .violations
            .iter()
            .filter(|v| v.code == FsckCode::BadAttribute)
            .count();
        assert_eq!(bad, 3, "{report}");
    }

    #[test]
    fn stray_content_and_restored_flags_are_detected() {
        let (mut eg, _) = healthy_graph();
        eg.storage_mut()
            .store(ArtifactId(0xbeef), &Value::Aggregate(Scalar::Float(1.0)));
        eg.mark_restored_materialized(ArtifactId(0xfeed));
        let report = check_graph(&eg);
        assert!(report.has(FsckCode::StrayContent), "{report}");
        assert!(report.has(FsckCode::StrayRestoredFlag), "{report}");
    }

    #[test]
    fn quarantine_duplicates_and_zero_failures_are_detected() {
        let (eg, _) = healthy_graph();
        let q = |h: u64, f: usize| QuarantineEntry {
            op_hash: h,
            name: "op".to_owned(),
            failures: f,
        };
        let report = check_with_quarantine(&eg, &[q(1, 2), q(1, 2), q(2, 0)]);
        let bad = report
            .violations
            .iter()
            .filter(|v| v.code == FsckCode::QuarantineInvalid)
            .count();
        assert_eq!(bad, 2, "{report}");
        // Hashes never seen by the graph are fine by design.
        assert!(check_with_quarantine(&eg, &[q(0xabc, 1)]).is_clean());
    }

    #[test]
    fn sharded_check_validates_routing_and_cross_shard_links() {
        use crate::shard::{rewire_children, shard_of};
        let n = 4;
        let mk = |id: u64, parents: &[u64]| EgVertex {
            id: ArtifactId(id),
            kind: NodeKind::Dataset,
            frequency: 1,
            compute_time: 0.1,
            size: 8,
            quality: 0.0,
            description: String::new(),
            source_name: parents.is_empty().then(|| "src".to_owned()),
            op_hash: (!parents.is_empty()).then_some(id ^ 7),
            parents: parents.iter().copied().map(ArtifactId).collect(),
            children: Vec::new(),
        };
        let mut graphs: Vec<ExperimentGraph> = (0..n).map(|_| ExperimentGraph::new(true)).collect();
        let (p, c) = (3u64, 5u64);
        assert_ne!(shard_of(ArtifactId(p), n), shard_of(ArtifactId(c), n));
        graphs[shard_of(ArtifactId(p), n)]
            .restore_vertex_unlinked(mk(p, &[]))
            .unwrap();
        graphs[shard_of(ArtifactId(c), n)]
            .restore_vertex_unlinked(mk(c, &[p]))
            .unwrap();
        let unresolved = rewire_children(&mut graphs);
        assert!(unresolved.is_empty());
        let refs: Vec<&ExperimentGraph> = graphs.iter().collect();
        let report = check_shards(&refs, &[]);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.vertices, 2);

        // Plant a vertex in the wrong shard: routing *and* the now
        // half-visible links trip.
        let wrong = (shard_of(ArtifactId(7), n) + 1) % n;
        graphs[wrong].restore_vertex_unlinked(mk(7, &[])).unwrap();
        let refs: Vec<&ExperimentGraph> = graphs.iter().collect();
        let report = check_shards(&refs, &[]);
        assert!(report.has(FsckCode::ShardMisrouted), "{report}");
    }

    #[test]
    fn self_join_duplicate_parents_are_legal() {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("src", Value::Aggregate(Scalar::Float(0.0)));
        let j = dag
            .add_op(Arc::new(Step("selfjoin", 1.0)), &[s, s])
            .unwrap();
        dag.mark_terminal(j).unwrap();
        dag.annotate(j, 1.0, 10).unwrap();
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        let report = check_graph(&eg);
        assert!(report.is_clean(), "{report}");
    }
}
