//! Error type for graph construction, execution, and storage.
//!
//! The taxonomy distinguishes *transient* failures (worth retrying — a
//! flaky external resource, an injected transient fault) from
//! *permanent* ones (a type mismatch, a panic, a quarantined operation).
//! The executor's retry policy consults [`GraphError::is_transient`].

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by DAG construction, operation execution, and the
/// artifact store.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id does not exist in the workload DAG.
    UnknownNode(usize),
    /// An artifact id does not exist in the Experiment Graph.
    UnknownArtifact(u64),
    /// Adding an edge would create a cycle or re-define a node's producer.
    InvalidStructure(String),
    /// An operation received the wrong number or kinds of inputs.
    BadOperationInput { op: String, message: String },
    /// An operation failed while running. `transient` failures (flaky
    /// external resources) may be retried; permanent ones may not.
    OperationFailed {
        op: String,
        message: String,
        transient: bool,
    },
    /// An operation panicked while running; the panic was caught and
    /// isolated by the executor.
    OperationPanicked { op: String, message: String },
    /// An operation was fast-failed because it failed permanently
    /// `failures` times in a row and is quarantined.
    Quarantined { op: String, failures: usize },
    /// An operation or workload exceeded its execution deadline.
    DeadlineExceeded { what: String, seconds: f64 },
    /// The requested artifact is not materialized in the store. `detail`
    /// names the workload node and operation when known (empty otherwise).
    NotMaterialized { artifact: u64, detail: String },
    /// A workload has no terminal vertices (nothing to execute).
    NoTerminals,
    /// Static pre-execution validation rejected the workload. Each
    /// diagnostic is a node-path-addressed message (see `co_core::validate`).
    InvalidWorkload { diagnostics: Vec<String> },
    /// An I/O failure while persisting or restoring graph state.
    Io(String),
    /// The durability layer is degraded to read-only: a persistence
    /// failure left the disk behind memory and repair has not caught
    /// up yet. Publishes are rejected — *retriably*: reads, reuse and
    /// warm-starts continue, and once repair drains the backlog the
    /// same publish will succeed. `retry_after_ms` hints when.
    ReadOnly { retry_after_ms: u64 },
    /// A persisted file (snapshot or journal) failed validation. Carries
    /// the file path and the 1-based line/record number so operators can
    /// locate the damage without a hex dump (`record` 0 = the header).
    Corrupt {
        path: String,
        record: usize,
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown workload node: {id}"),
            GraphError::UnknownArtifact(id) => write!(f, "unknown artifact: {id:016x}"),
            GraphError::InvalidStructure(msg) => write!(f, "invalid DAG structure: {msg}"),
            GraphError::BadOperationInput { op, message } => {
                write!(f, "bad input to operation {op:?}: {message}")
            }
            GraphError::OperationFailed {
                op,
                message,
                transient,
            } => {
                let kind = if *transient { "transiently " } else { "" };
                write!(f, "operation {op:?} {kind}failed: {message}")
            }
            GraphError::OperationPanicked { op, message } => {
                write!(f, "operation {op:?} panicked: {message}")
            }
            GraphError::Quarantined { op, failures } => {
                write!(f, "operation {op:?} is quarantined after {failures} consecutive permanent failures")
            }
            GraphError::DeadlineExceeded { what, seconds } => {
                write!(f, "{what} exceeded its deadline of {seconds:.3}s")
            }
            GraphError::NotMaterialized { artifact, detail } => {
                if detail.is_empty() {
                    write!(f, "artifact {artifact:016x} is not materialized")
                } else {
                    write!(f, "artifact {artifact:016x} is not materialized ({detail})")
                }
            }
            GraphError::NoTerminals => write!(f, "workload has no terminal vertices"),
            GraphError::InvalidWorkload { diagnostics } => {
                write!(
                    f,
                    "workload failed static validation ({} diagnostic{}):",
                    diagnostics.len(),
                    if diagnostics.len() == 1 { "" } else { "s" }
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::ReadOnly { retry_after_ms } => write!(
                f,
                "durability layer is read-only while repair catches up; \
                 retry the publish in {retry_after_ms}ms"
            ),
            GraphError::Corrupt {
                path,
                record,
                message,
            } => {
                if *record == 0 {
                    write!(f, "corrupt file {path}: {message}")
                } else {
                    write!(f, "corrupt file {path}, record {record}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphError {
    /// Wrap a dataframe error raised while running an operation.
    #[must_use]
    pub fn from_df(op: &str, e: &co_dataframe::DfError) -> Self {
        GraphError::OperationFailed {
            op: op.to_owned(),
            message: e.to_string(),
            transient: false,
        }
    }

    /// Wrap an ML error raised while running an operation.
    #[must_use]
    pub fn from_ml(op: &str, e: &co_ml::MlError) -> Self {
        GraphError::OperationFailed {
            op: op.to_owned(),
            message: e.to_string(),
            transient: false,
        }
    }

    /// A permanent operation failure (convenience constructor).
    #[must_use]
    pub fn op_failed(op: impl Into<String>, message: impl Into<String>) -> Self {
        GraphError::OperationFailed {
            op: op.into(),
            message: message.into(),
            transient: false,
        }
    }

    /// A transient operation failure — eligible for retry.
    #[must_use]
    pub fn op_failed_transient(op: impl Into<String>, message: impl Into<String>) -> Self {
        GraphError::OperationFailed {
            op: op.into(),
            message: message.into(),
            transient: true,
        }
    }

    /// An unmaterialized-artifact error with no node context.
    #[must_use]
    pub fn not_materialized(artifact: u64) -> Self {
        GraphError::NotMaterialized {
            artifact,
            detail: String::new(),
        }
    }

    /// A corruption error locating the damage by file and record.
    #[must_use]
    pub fn corrupt(path: impl Into<String>, record: usize, message: impl Into<String>) -> Self {
        GraphError::Corrupt {
            path: path.into(),
            record,
            message: message.into(),
        }
    }

    /// A read-only-mode publish rejection with a backoff hint.
    #[must_use]
    pub fn read_only(retry_after_ms: u64) -> Self {
        GraphError::ReadOnly { retry_after_ms }
    }

    /// Whether retrying the failed work could plausibly succeed.
    ///
    /// Explicitly transient operation failures and read-only-mode
    /// publish rejections qualify; panics, structural errors, deadline
    /// overruns, and quarantine fast-fails are permanent by definition.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GraphError::OperationFailed {
                transient: true,
                ..
            } | GraphError::ReadOnly { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UnknownNode(3).to_string().contains('3'));
        assert!(GraphError::NoTerminals.to_string().contains("terminal"));
        let e = GraphError::from_df("filter", &co_dataframe::DfError::ColumnNotFound("x".into()));
        assert!(e.to_string().contains("filter"));
        assert!(GraphError::Io("disk full".into())
            .to_string()
            .contains("disk full"));
        let c = GraphError::corrupt("/data/eg.wal", 12, "bad crc");
        assert!(c.to_string().contains("/data/eg.wal"));
        assert!(c.to_string().contains("12"));
        let header = GraphError::corrupt("/data/eg.egsnap", 0, "bad header");
        assert!(!header.to_string().contains("record"));
        let q = GraphError::Quarantined {
            op: "train".into(),
            failures: 3,
        };
        assert!(q.to_string().contains("quarantined"));
        let p = GraphError::OperationPanicked {
            op: "udf".into(),
            message: "boom".into(),
        };
        assert!(p.to_string().contains("panicked"));
        let d = GraphError::DeadlineExceeded {
            what: "operation \"slow\"".into(),
            seconds: 1.5,
        };
        assert!(d.to_string().contains("deadline"));
        let nm = GraphError::NotMaterialized {
            artifact: 7,
            detail: "node 2, op \"map\"".into(),
        };
        assert!(nm.to_string().contains("node 2"));
    }

    #[test]
    fn transient_classification() {
        assert!(GraphError::op_failed_transient("f", "flaky").is_transient());
        assert!(!GraphError::op_failed("f", "broken").is_transient());
        assert!(!GraphError::OperationPanicked {
            op: "f".into(),
            message: "b".into()
        }
        .is_transient());
        assert!(!GraphError::Quarantined {
            op: "f".into(),
            failures: 3
        }
        .is_transient());
        assert!(!GraphError::not_materialized(1).is_transient());
        assert!(!GraphError::Io("x".into()).is_transient());
        assert!(GraphError::read_only(250).is_transient());
        let ro = GraphError::read_only(250).to_string();
        assert!(ro.contains("read-only"), "{ro}");
        assert!(ro.contains("250"), "{ro}");
    }
}
