//! Error type for graph construction, execution, and storage.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by DAG construction, operation execution, and the
/// artifact store.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id does not exist in the workload DAG.
    UnknownNode(usize),
    /// An artifact id does not exist in the Experiment Graph.
    UnknownArtifact(u64),
    /// Adding an edge would create a cycle or re-define a node's producer.
    InvalidStructure(String),
    /// An operation received the wrong number or kinds of inputs.
    BadOperationInput { op: String, message: String },
    /// An operation failed while running.
    OperationFailed { op: String, message: String },
    /// The requested artifact is not materialized in the store.
    NotMaterialized(u64),
    /// A workload has no terminal vertices (nothing to execute).
    NoTerminals,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown workload node: {id}"),
            GraphError::UnknownArtifact(id) => write!(f, "unknown artifact: {id:016x}"),
            GraphError::InvalidStructure(msg) => write!(f, "invalid DAG structure: {msg}"),
            GraphError::BadOperationInput { op, message } => {
                write!(f, "bad input to operation {op:?}: {message}")
            }
            GraphError::OperationFailed { op, message } => {
                write!(f, "operation {op:?} failed: {message}")
            }
            GraphError::NotMaterialized(id) => {
                write!(f, "artifact {id:016x} is not materialized")
            }
            GraphError::NoTerminals => write!(f, "workload has no terminal vertices"),
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphError {
    /// Wrap a dataframe error raised while running an operation.
    #[must_use]
    pub fn from_df(op: &str, e: &co_dataframe::DfError) -> Self {
        GraphError::OperationFailed { op: op.to_owned(), message: e.to_string() }
    }

    /// Wrap an ML error raised while running an operation.
    #[must_use]
    pub fn from_ml(op: &str, e: &co_ml::MlError) -> Self {
        GraphError::OperationFailed { op: op.to_owned(), message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UnknownNode(3).to_string().contains('3'));
        assert!(GraphError::NoTerminals.to_string().contains("terminal"));
        let e = GraphError::from_df("filter", &co_dataframe::DfError::ColumnNotFound("x".into()));
        assert!(e.to_string().contains("filter"));
    }
}
