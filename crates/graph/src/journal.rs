//! Write-ahead journal for the Experiment Graph.
//!
//! The EG is the shared asset a collaborative environment accumulates
//! over weeks (paper §3.2); a crash must not lose workloads committed
//! since the last snapshot. Each committed workload's EG delta — new
//! vertices, frequency bumps, materialization changes, quarantine
//! changes — is appended to the journal as one length-prefixed,
//! CRC-checksummed record inside the server's publish critical section.
//! Recovery loads the newest valid snapshot (`crate::snapshot`), then
//! [`replay`]s the journal on top of it, stopping at — and truncating —
//! the first torn record instead of failing.
//!
//! ## File format (`EGWAL 1`)
//!
//! An 8-byte magic (`b"EGWAL 1\n"`) followed by records:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The payload is UTF-8 text, one line per delta entry, using the same
//! field escaping as the snapshot format:
//!
//! | line | meaning |
//! |------|---------|
//! | `S\t<seq>` | publish sequence number (sharded layout only) |
//! | `V\t<10 vertex fields>` | a vertex new to the graph |
//! | `F\t<id>\t<freq>\t<t>\t<s>\t<q>` | refreshed absolute attributes of an existing vertex |
//! | `M+\t<id>` / `M-\t<id>` | artifact content materialized / evicted |
//! | `Q+\t<hash>\t<failures>\t<name>` / `Q-\t<hash>` | operation quarantined / released |
//!
//! `F` records carry *absolute* values (not increments), so replaying a
//! record whose effects are already contained in a newer snapshot — the
//! window between snapshot rename and journal truncation during
//! compaction — is idempotent.
//!
//! ## Sharded layout: the cross-shard commit log (`EGCMT 1`)
//!
//! With the Experiment Graph split into N lock shards, each shard owns
//! one journal (`eg-<k>.wal`) and a publish spanning several shards
//! appends one record per touched shard, all tagged with the same
//! publish sequence number (`S` line). Atomicity across those appends
//! is decided by a separate *commit log* (`eg.commit`): after the last
//! per-shard append, one [`CommitRecord`] naming the sequence number
//! and the touched shards is appended. Recovery replays the commit log
//! first and then skips any per-shard record whose sequence number was
//! never committed — a crash between per-shard appends (or before the
//! commit record) therefore rolls the whole publish back, exactly.

use crate::artifact::ArtifactId;
use crate::error::{GraphError, Result};
use crate::experiment::{EgVertex, ExperimentGraph};
use crate::faults::{CrashPoint, FaultInjector};
use crate::snapshot::{escape, parse_vertex_fields, unescape, vertex_fields, ParseCtx};
use crate::vfs::{self, VfsFile};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub const WAL_MAGIC: &[u8; 8] = b"EGWAL 1\n";

/// Magic bytes opening every cross-shard commit log.
pub const COMMIT_MAGIC: &[u8; 8] = b"EGCMT 1\n";

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3, the polynomial used by zip/png). Detects every
/// single-byte corruption and every error burst up to 32 bits.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When journal appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: a committed workload survives any crash.
    Always,
    /// fsync after every N appends: bounded loss window, higher throughput.
    EveryN(u32),
    /// Never fsync explicitly; the OS decides (fastest, weakest).
    Never,
}

/// A persisted quarantine entry: the op hash (the cross-session identity
/// the quarantine is keyed by), its display name, and the consecutive
/// permanent-failure count at persistence time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// `Operation::op_hash()` of the quarantined operation.
    pub op_hash: u64,
    /// Operation display name (for diagnostics).
    pub name: String,
    /// Consecutive permanent failures recorded when persisted.
    pub failures: usize,
}

/// Refreshed absolute attributes of a vertex that an already-known
/// workload touched (frequency bump + measurement refresh).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexTouch {
    /// The touched vertex.
    pub id: ArtifactId,
    /// Absolute frequency after the touch.
    pub frequency: u64,
    /// Absolute compute time after the touch.
    pub compute_time: f64,
    /// Absolute size after the touch.
    pub size: u64,
    /// Absolute quality after the touch.
    pub quality: f64,
}

/// One committed workload's effect on the Experiment Graph — the unit
/// of journaling and replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EgDelta {
    /// Publish sequence number (sharded layout only; `None` in the
    /// single-journal layout, keeping its encoding bit-identical).
    pub seq: Option<u64>,
    /// Vertices this workload added, in parents-first order.
    pub new_vertices: Vec<EgVertex>,
    /// Existing vertices it touched (absolute values, replay-idempotent).
    pub touched: Vec<VertexTouch>,
    /// Artifacts whose content the updater/materializer stored.
    pub mat_added: Vec<ArtifactId>,
    /// Artifacts whose content was evicted.
    pub mat_removed: Vec<ArtifactId>,
    /// Quarantine entries added or updated.
    pub quarantine_set: Vec<QuarantineEntry>,
    /// Op hashes released from quarantine.
    pub quarantine_cleared: Vec<u64>,
}

impl EgDelta {
    /// Whether the delta records no change at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_vertices.is_empty()
            && self.touched.is_empty()
            && self.mat_added.is_empty()
            && self.mat_removed.is_empty()
            && self.quarantine_set.is_empty()
            && self.quarantine_cleared.is_empty()
    }

    /// Serialise the delta to its journal-payload text.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        if let Some(seq) = self.seq {
            let _ = writeln!(out, "S\t{seq:x}");
        }
        for v in &self.new_vertices {
            let _ = writeln!(out, "V\t{}", vertex_fields(v));
        }
        for t in &self.touched {
            let _ = writeln!(
                out,
                "F\t{:x}\t{}\t{}\t{}\t{}",
                t.id.0, t.frequency, t.compute_time, t.size, t.quality
            );
        }
        for id in &self.mat_added {
            let _ = writeln!(out, "M+\t{:x}", id.0);
        }
        for id in &self.mat_removed {
            let _ = writeln!(out, "M-\t{:x}", id.0);
        }
        for q in &self.quarantine_set {
            let _ = writeln!(
                out,
                "Q+\t{:x}\t{}\t{}",
                q.op_hash,
                q.failures,
                escape(&q.name)
            );
        }
        for h in &self.quarantine_cleared {
            let _ = writeln!(out, "Q-\t{h:x}");
        }
        out
    }

    /// Parse a journal payload. `origin` and `record` (1-based) name the
    /// file and record in any error.
    pub fn decode(payload: &str, origin: &str, record: usize) -> Result<EgDelta> {
        let ctx = ParseCtx { origin, record };
        let mut delta = EgDelta::default();
        for line in payload.lines() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "S" if fields.len() == 2 => {
                    delta.seq = Some(
                        u64::from_str_radix(fields[1], 16)
                            .map_err(|_| ctx.err("bad sequence number in S entry"))?,
                    );
                }
                "V" if fields.len() == 11 => {
                    delta
                        .new_vertices
                        .push(parse_vertex_fields(&fields[1..], &ctx)?);
                }
                "F" if fields.len() == 5 => {
                    delta.touched.push(VertexTouch {
                        id: parse_id(fields[1], &ctx)?,
                        frequency: fields[2]
                            .parse()
                            .map_err(|_| ctx.err("bad frequency in F entry"))?,
                        compute_time: fields[3]
                            .parse()
                            .map_err(|_| ctx.err("bad compute time in F entry"))?,
                        size: fields[4]
                            .parse()
                            .map_err(|_| ctx.err("bad size in F entry"))?,
                        quality: 0.0,
                    });
                }
                "F" if fields.len() == 6 => {
                    delta.touched.push(VertexTouch {
                        id: parse_id(fields[1], &ctx)?,
                        frequency: fields[2]
                            .parse()
                            .map_err(|_| ctx.err("bad frequency in F entry"))?,
                        compute_time: fields[3]
                            .parse()
                            .map_err(|_| ctx.err("bad compute time in F entry"))?,
                        size: fields[4]
                            .parse()
                            .map_err(|_| ctx.err("bad size in F entry"))?,
                        quality: fields[5]
                            .parse()
                            .map_err(|_| ctx.err("bad quality in F entry"))?,
                    });
                }
                "M+" if fields.len() == 2 => delta.mat_added.push(parse_id(fields[1], &ctx)?),
                "M-" if fields.len() == 2 => delta.mat_removed.push(parse_id(fields[1], &ctx)?),
                "Q+" if fields.len() == 4 => {
                    delta.quarantine_set.push(QuarantineEntry {
                        op_hash: u64::from_str_radix(fields[1], 16)
                            .map_err(|_| ctx.err("bad op hash in Q+ entry"))?,
                        failures: fields[2]
                            .parse()
                            .map_err(|_| ctx.err("bad failure count in Q+ entry"))?,
                        name: unescape(fields[3]).map_err(|m| ctx.err(m))?,
                    });
                }
                "Q-" if fields.len() == 2 => delta.quarantine_cleared.push(
                    u64::from_str_radix(fields[1], 16)
                        .map_err(|_| ctx.err("bad op hash in Q- entry"))?,
                ),
                tag => {
                    return Err(ctx.err(format!(
                        "unknown or malformed journal entry {tag:?} ({} fields)",
                        fields.len()
                    )))
                }
            }
        }
        Ok(delta)
    }

    /// Apply the delta to a graph during recovery. New vertices are
    /// inserted (parents must precede them, as the publish order
    /// guarantees); vertices that already exist — replay over a snapshot
    /// taken after this record — have their absolute attributes
    /// overwritten, so application is idempotent. Materialization
    /// changes land in the graph's restored-materialization set (content
    /// itself is never persisted; see `crate::snapshot`).
    pub fn apply(&self, eg: &mut ExperimentGraph) -> Result<()> {
        for v in &self.new_vertices {
            if eg.contains(v.id) {
                let dst = eg.vertex_mut(v.id)?;
                dst.frequency = v.frequency;
                dst.compute_time = v.compute_time;
                dst.size = v.size;
                dst.quality = v.quality;
            } else {
                eg.restore_vertex(v.clone())?;
            }
        }
        for t in &self.touched {
            let dst = eg.vertex_mut(t.id)?;
            dst.frequency = t.frequency;
            dst.compute_time = t.compute_time;
            dst.size = t.size;
            dst.quality = t.quality;
        }
        for id in &self.mat_added {
            eg.mark_restored_materialized(*id);
        }
        for id in &self.mat_removed {
            eg.unmark_restored_materialized(*id);
        }
        Ok(())
    }

    /// Apply the delta to *one shard* of a sharded graph during
    /// recovery. Same semantics as [`EgDelta::apply`] except that new
    /// vertices are inserted without lineage resolution — their parents
    /// may live in other shards, and children links are rebuilt by the
    /// recovery rewire pass afterwards.
    pub fn apply_to_shard(&self, eg: &mut ExperimentGraph) -> Result<()> {
        for v in &self.new_vertices {
            if eg.contains(v.id) {
                let dst = eg.vertex_mut(v.id)?;
                dst.frequency = v.frequency;
                dst.compute_time = v.compute_time;
                dst.size = v.size;
                dst.quality = v.quality;
            } else {
                eg.restore_vertex_unlinked(v.clone())?;
            }
        }
        for t in &self.touched {
            let dst = eg.vertex_mut(t.id)?;
            dst.frequency = t.frequency;
            dst.compute_time = t.compute_time;
            dst.size = t.size;
            dst.quality = t.quality;
        }
        for id in &self.mat_added {
            eg.mark_restored_materialized(*id);
        }
        for id in &self.mat_removed {
            eg.unmark_restored_materialized(*id);
        }
        Ok(())
    }
}

fn parse_id(field: &str, ctx: &ParseCtx<'_>) -> Result<ArtifactId> {
    u64::from_str_radix(field, 16)
        .map(ArtifactId)
        .map_err(|_| ctx.err(format!("bad artifact id {field:?}")))
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> GraphError {
    GraphError::Io(format!("cannot {what} journal {}: {e}", path.display()))
}

fn crash_err(point: CrashPoint) -> GraphError {
    GraphError::Io(format!("injected crash at {}", point.name()))
}

fn should_crash(faults: Option<&FaultInjector>, point: CrashPoint) -> bool {
    faults.is_some_and(|f| f.take_crash(point))
}

/// An open, append-only journal file. All I/O flows through
/// [`crate::vfs`], so injected [`crate::faults::IoFault`]s surface here
/// as ordinary errors — after any failed append the journal marks
/// itself *damaged* and refuses further appends until reopened (the
/// file may hold a torn record, and appending past it would orphan
/// every later record behind the tear).
#[derive(Debug)]
pub struct Journal {
    file: VfsFile,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    len: u64,
    damaged: bool,
}

impl Journal {
    /// Open (or create) a journal for appending. A fresh or empty file
    /// gets the magic written and synced; an existing file must open
    /// with a valid magic — run [`replay`] (which truncates torn tails,
    /// including a torn magic) before opening.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Journal> {
        Journal::open_with(path, policy, None)
    }

    /// [`Journal::open`] with a fault injector consulted by the
    /// open-time magic write/validation (repair paths reopen journals
    /// while faults may still be armed).
    pub fn open_with(
        path: &Path,
        policy: FsyncPolicy,
        faults: Option<&FaultInjector>,
    ) -> Result<Journal> {
        let mut file = VfsFile::open_append(path, faults).map_err(|e| io_err("open", path, &e))?;
        let mut len = file.len().map_err(|e| io_err("stat", path, &e))?;
        if len == 0 {
            file.write_all(WAL_MAGIC, faults)
                .map_err(|e| io_err("initialise", path, &e))?;
            file.sync(faults).map_err(|e| io_err("sync", path, &e))?;
            len = WAL_MAGIC.len() as u64;
        } else {
            if len < WAL_MAGIC.len() as u64 {
                return Err(GraphError::corrupt(
                    path.display().to_string(),
                    0,
                    "file shorter than the journal magic",
                ));
            }
            let mut magic = [0u8; 8];
            file.read_exact(&mut magic, faults)
                .map_err(|e| io_err("read", path, &e))?;
            if &magic != WAL_MAGIC {
                return Err(GraphError::corrupt(
                    path.display().to_string(),
                    0,
                    format!("bad journal magic {magic:?}"),
                ));
            }
        }
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            len,
            damaged: false,
        })
    }

    /// Current file length in bytes (magic + records).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a failed append or sync has left this journal in an
    /// unknown on-disk state (possible torn record, poisoned handle).
    /// A damaged journal refuses appends until reopened by repair.
    #[must_use]
    pub fn is_damaged(&self) -> bool {
        self.damaged || self.file.is_poisoned()
    }

    /// Append one delta as a length-prefixed, CRC-checksummed record,
    /// honouring the fsync policy. With a fault injector armed, the
    /// journal crash points fire here: `JournalMidAppend` leaves a torn
    /// record on disk (for recovery to detect and truncate);
    /// `JournalPreFsync` models the worst case of an unsynced write —
    /// the record never reaches the disk at all. Injected
    /// [`crate::faults::IoFault`]s fire inside the vfs write/sync calls;
    /// any failure marks the journal damaged.
    pub fn append(&mut self, delta: &EgDelta, faults: Option<&FaultInjector>) -> Result<()> {
        if self.is_damaged() {
            return Err(GraphError::Io(format!(
                "journal {} is damaged by an earlier failed append; reopen it before appending",
                self.path.display()
            )));
        }
        let payload = delta.encode();
        let bytes = payload.as_bytes();
        if should_crash(faults, CrashPoint::JournalPreFsync) {
            return Err(crash_err(CrashPoint::JournalPreFsync));
        }
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(
            &u32::try_from(bytes.len())
                .map_err(|_| {
                    GraphError::Io(format!("journal record too large: {} bytes", bytes.len()))
                })?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        if should_crash(faults, CrashPoint::JournalMidAppend) {
            let torn = &frame[..8 + bytes.len() / 2];
            let _ = self.file.write_all(torn, None);
            let _ = self.file.sync(None);
            self.len += torn.len() as u64;
            self.damaged = true;
            return Err(crash_err(CrashPoint::JournalMidAppend));
        }
        if let Err(e) = self.file.write_all(&frame, faults) {
            self.damaged = true;
            return Err(io_err("append to", &self.path, &e));
        }
        self.len += frame.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync(faults)?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync(faults)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Flush appended records to disk. A failed fsync poisons the
    /// underlying handle (fsyncgate — see [`crate::vfs`]): the journal
    /// is damaged and must be reopened, never retried in place.
    pub fn sync(&mut self, faults: Option<&FaultInjector>) -> Result<()> {
        if let Err(e) = self.file.sync(faults) {
            self.damaged = true;
            return Err(io_err("sync", &self.path, &e));
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Truncate the journal back to just its magic — called after a
    /// snapshot has durably captured everything the journal held
    /// (compaction).
    pub fn reset(&mut self, faults: Option<&FaultInjector>) -> Result<()> {
        if let Err(e) = self.file.set_len(WAL_MAGIC.len() as u64, faults) {
            self.damaged = true;
            return Err(io_err("truncate", &self.path, &e));
        }
        if let Err(e) = self.file.sync(faults) {
            self.damaged = true;
            return Err(io_err("sync", &self.path, &e));
        }
        self.len = WAL_MAGIC.len() as u64;
        self.unsynced = 0;
        Ok(())
    }
}

/// The result of scanning a journal at startup.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Fully verified records, in append order.
    pub deltas: Vec<EgDelta>,
    /// Byte offset where a torn tail begins (the file should be
    /// truncated to this length), if one was detected.
    pub torn_at: Option<u64>,
    /// Bytes past `torn_at` that will be discarded.
    pub bytes_discarded: u64,
}

/// Scan a journal file, verifying each record's length and CRC. A
/// missing or empty file yields an empty outcome. A *torn tail* — a
/// record whose frame is incomplete or whose CRC does not match, the
/// signature of a crash mid-append — ends the scan; everything before
/// it is returned and `torn_at` tells the caller where to truncate.
/// Decode the 8-byte `(len, crc)` record header at `off`, or `None`
/// when fewer than 8 bytes remain — the torn-tail case every replay
/// loop handles, so header decoding itself can never panic.
fn header_at(bytes: &[u8], off: usize) -> Option<(usize, u32)> {
    let len: [u8; 4] = bytes.get(off..off + 4)?.try_into().ok()?;
    let crc: [u8; 4] = bytes.get(off + 4..off + 8)?.try_into().ok()?;
    Some((u32::from_le_bytes(len) as usize, u32::from_le_bytes(crc)))
}

/// A record that passes its CRC but does not parse is real corruption
/// and is reported as an error naming the file and record number.
pub fn replay(path: &Path) -> Result<ReplayOutcome> {
    replay_with(path, None)
}

/// [`replay`] with a fault injector consulted by the file read
/// ([`crate::faults::IoFault::ReadErr`] makes the scan itself fail, as
/// an unreadable sector would).
pub fn replay_with(path: &Path, faults: Option<&FaultInjector>) -> Result<ReplayOutcome> {
    let bytes = match vfs::read(path, faults) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayOutcome::default()),
        Err(e) => return Err(io_err("read", path, &e)),
    };
    let mut outcome = ReplayOutcome::default();
    if bytes.is_empty() {
        return Ok(outcome);
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A crash while initialising the file: everything is a torn tail.
        outcome.torn_at = Some(0);
        outcome.bytes_discarded = bytes.len() as u64;
        return Ok(outcome);
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(GraphError::corrupt(
            path.display().to_string(),
            0,
            format!("bad journal magic {:?}", &bytes[..WAL_MAGIC.len()]),
        ));
    }
    let origin = path.display().to_string();
    let mut off = WAL_MAGIC.len();
    let mut record = 0usize;
    while off < bytes.len() {
        record += 1;
        let torn = |outcome: &mut ReplayOutcome| {
            outcome.torn_at = Some(off as u64);
            outcome.bytes_discarded = (bytes.len() - off) as u64;
        };
        let Some((len, crc)) = header_at(&bytes, off) else {
            torn(&mut outcome);
            break;
        };
        let start = off + 8;
        if bytes.len() - start < len {
            torn(&mut outcome);
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            torn(&mut outcome);
            break;
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| GraphError::corrupt(&origin, record, "payload is not UTF-8"))?;
        outcome.deltas.push(EgDelta::decode(text, &origin, record)?);
        off = start + len;
    }
    Ok(outcome)
}

/// One committed cross-shard publish: its sequence number and the
/// shards whose journals hold its per-shard records. Appending this
/// record to the commit log is the *commit point* of a sharded publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The publish sequence number (matches the `S` line of every
    /// per-shard journal record the publish wrote).
    pub seq: u64,
    /// Indices of the shards the publish touched, ascending.
    pub shards: Vec<u32>,
}

impl CommitRecord {
    /// Serialise the record to its commit-log payload text.
    #[must_use]
    pub fn encode(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| format!("{s:x}")).collect();
        format!("C\t{:x}\t{}\n", self.seq, shards.join(","))
    }

    /// Parse a commit-log payload. `origin` and `record` (1-based) name
    /// the file and record in any error.
    pub fn decode(payload: &str, origin: &str, record: usize) -> Result<CommitRecord> {
        let ctx = ParseCtx { origin, record };
        let line = payload
            .lines()
            .next()
            .ok_or_else(|| ctx.err("empty commit record"))?;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 || fields[0] != "C" {
            return Err(ctx.err(format!("malformed commit record {line:?}")));
        }
        let seq = u64::from_str_radix(fields[1], 16)
            .map_err(|_| ctx.err("bad sequence number in commit record"))?;
        let mut shards = Vec::new();
        if !fields[2].is_empty() {
            for part in fields[2].split(',') {
                shards.push(
                    u32::from_str_radix(part, 16)
                        .map_err(|_| ctx.err(format!("bad shard index {part:?}")))?,
                );
            }
        }
        if shards.is_empty() {
            return Err(ctx.err("commit record names no shards"));
        }
        if shards.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ctx.err("commit record shards are not strictly ascending"));
        }
        if payload.lines().count() > 1 {
            return Err(ctx.err("trailing lines after commit record"));
        }
        Ok(CommitRecord { seq, shards })
    }
}

/// The open, append-only cross-shard commit log (`eg.commit`). Framing
/// is identical to the journal (`[len][crc32][payload]`) under its own
/// magic, so torn tails are detected and truncated the same way.
#[derive(Debug)]
pub struct CommitLog {
    file: VfsFile,
    path: PathBuf,
    len: u64,
    damaged: bool,
}

impl CommitLog {
    /// Open (or create) a commit log for appending. Run
    /// [`replay_commits`] first so torn tails are truncated.
    pub fn open(path: &Path) -> Result<CommitLog> {
        CommitLog::open_with(path, None)
    }

    /// [`CommitLog::open`] with a fault injector consulted by the
    /// open-time magic write/validation.
    pub fn open_with(path: &Path, faults: Option<&FaultInjector>) -> Result<CommitLog> {
        let mut file = VfsFile::open_append(path, faults).map_err(|e| io_err("open", path, &e))?;
        let mut len = file.len().map_err(|e| io_err("stat", path, &e))?;
        if len == 0 {
            file.write_all(COMMIT_MAGIC, faults)
                .map_err(|e| io_err("initialise", path, &e))?;
            file.sync(faults).map_err(|e| io_err("sync", path, &e))?;
            len = COMMIT_MAGIC.len() as u64;
        } else {
            if len < COMMIT_MAGIC.len() as u64 {
                return Err(GraphError::corrupt(
                    path.display().to_string(),
                    0,
                    "file shorter than the commit-log magic",
                ));
            }
            let mut magic = [0u8; 8];
            file.read_exact(&mut magic, faults)
                .map_err(|e| io_err("read", path, &e))?;
            if &magic != COMMIT_MAGIC {
                return Err(GraphError::corrupt(
                    path.display().to_string(),
                    0,
                    format!("bad commit-log magic {magic:?}"),
                ));
            }
        }
        Ok(CommitLog {
            file,
            path: path.to_path_buf(),
            len,
            damaged: false,
        })
    }

    /// Current file length in bytes (magic + records).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Whether a failed append or sync has left this log in an unknown
    /// on-disk state. A damaged log refuses appends until reopened.
    #[must_use]
    pub fn is_damaged(&self) -> bool {
        self.damaged || self.file.is_poisoned()
    }

    /// Append one commit record and fsync it — the commit point of a
    /// cross-shard publish. With [`CrashPoint::CommitPreAppend`] armed
    /// the record is never written (the publish stays uncommitted).
    pub fn append(&mut self, record: &CommitRecord, faults: Option<&FaultInjector>) -> Result<()> {
        if self.is_damaged() {
            return Err(GraphError::Io(format!(
                "commit log {} is damaged by an earlier failed append; reopen it before appending",
                self.path.display()
            )));
        }
        if should_crash(faults, CrashPoint::CommitPreAppend) {
            return Err(crash_err(CrashPoint::CommitPreAppend));
        }
        let payload = record.encode();
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(
            &u32::try_from(bytes.len())
                .map_err(|_| {
                    GraphError::Io(format!("commit record too large: {} bytes", bytes.len()))
                })?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        if let Err(e) = self.file.write_all(&frame, faults) {
            self.damaged = true;
            return Err(io_err("append to", &self.path, &e));
        }
        self.len += frame.len() as u64;
        if let Err(e) = self.file.sync(faults) {
            self.damaged = true;
            return Err(io_err("sync", &self.path, &e));
        }
        Ok(())
    }

    /// Truncate the commit log back to just its magic (compaction: the
    /// shard snapshots now durably hold everything it decided).
    pub fn reset(&mut self, faults: Option<&FaultInjector>) -> Result<()> {
        if let Err(e) = self.file.set_len(COMMIT_MAGIC.len() as u64, faults) {
            self.damaged = true;
            return Err(io_err("truncate", &self.path, &e));
        }
        if let Err(e) = self.file.sync(faults) {
            self.damaged = true;
            return Err(io_err("sync", &self.path, &e));
        }
        self.len = COMMIT_MAGIC.len() as u64;
        Ok(())
    }
}

/// The result of scanning a commit log at startup.
#[derive(Debug, Default)]
pub struct CommitReplay {
    /// Fully verified commit records, in append order.
    pub records: Vec<CommitRecord>,
    /// Byte offset where a torn tail begins, if one was detected.
    pub torn_at: Option<u64>,
    /// Bytes past `torn_at` that will be discarded.
    pub bytes_discarded: u64,
}

/// Scan a commit log, verifying each record's length and CRC — same
/// torn-tail semantics as [`replay`]: a torn record ends the scan (a
/// publish whose commit record is torn was never committed); a record
/// that passes its CRC but does not parse is real corruption.
pub fn replay_commits(path: &Path) -> Result<CommitReplay> {
    replay_commits_with(path, None)
}

/// [`replay_commits`] with a fault injector consulted by the file read.
pub fn replay_commits_with(path: &Path, faults: Option<&FaultInjector>) -> Result<CommitReplay> {
    let bytes = match vfs::read(path, faults) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CommitReplay::default()),
        Err(e) => return Err(io_err("read", path, &e)),
    };
    let mut outcome = CommitReplay::default();
    if bytes.is_empty() {
        return Ok(outcome);
    }
    if bytes.len() < COMMIT_MAGIC.len() {
        outcome.torn_at = Some(0);
        outcome.bytes_discarded = bytes.len() as u64;
        return Ok(outcome);
    }
    if &bytes[..COMMIT_MAGIC.len()] != COMMIT_MAGIC {
        return Err(GraphError::corrupt(
            path.display().to_string(),
            0,
            format!("bad commit-log magic {:?}", &bytes[..COMMIT_MAGIC.len()]),
        ));
    }
    let origin = path.display().to_string();
    let mut off = COMMIT_MAGIC.len();
    let mut record = 0usize;
    while off < bytes.len() {
        record += 1;
        let torn = |outcome: &mut CommitReplay| {
            outcome.torn_at = Some(off as u64);
            outcome.bytes_discarded = (bytes.len() - off) as u64;
        };
        let Some((len, crc)) = header_at(&bytes, off) else {
            torn(&mut outcome);
            break;
        };
        let start = off + 8;
        if bytes.len() - start < len {
            torn(&mut outcome);
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            torn(&mut outcome);
            break;
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| GraphError::corrupt(&origin, record, "payload is not UTF-8"))?;
        outcome
            .records
            .push(CommitRecord::decode(text, &origin, record)?);
        off = start + len;
    }
    Ok(outcome)
}

/// Truncate a journal to `valid_len` bytes, discarding a torn tail
/// found by [`replay`]. Lengths shorter than the magic truncate to
/// empty (the next [`Journal::open`] re-initialises the file).
pub fn truncate(path: &Path, valid_len: u64) -> Result<()> {
    truncate_with(path, valid_len, None)
}

/// [`truncate`] with a fault injector consulted by the write (repair
/// paths truncate torn tails while faults may still be armed).
pub fn truncate_with(path: &Path, valid_len: u64, faults: Option<&FaultInjector>) -> Result<()> {
    let keep = if valid_len < WAL_MAGIC.len() as u64 {
        0
    } else {
        valid_len
    };
    vfs::truncate(path, keep, faults).map_err(|e| io_err("truncate", path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::NodeKind;
    use std::fs;

    fn vertex(id: u64, parents: &[u64]) -> EgVertex {
        EgVertex {
            id: ArtifactId(id),
            kind: NodeKind::Dataset,
            frequency: 1,
            compute_time: 0.5,
            size: 64,
            quality: 0.0,
            description: "tab\there".to_owned(),
            source_name: if parents.is_empty() {
                Some("src".to_owned())
            } else {
                None
            },
            op_hash: if parents.is_empty() {
                None
            } else {
                Some(id ^ 7)
            },
            parents: parents.iter().copied().map(ArtifactId).collect(),
            children: Vec::new(),
        }
    }

    fn sample_delta() -> EgDelta {
        EgDelta {
            seq: None,
            new_vertices: vec![vertex(1, &[]), vertex(2, &[1])],
            touched: vec![VertexTouch {
                id: ArtifactId(9),
                frequency: 4,
                compute_time: 1.25,
                size: 100,
                quality: 0.875,
            }],
            mat_added: vec![ArtifactId(2)],
            mat_removed: vec![ArtifactId(9)],
            quarantine_set: vec![QuarantineEntry {
                op_hash: 0xdead,
                name: "train\tmodel".to_owned(),
                failures: 3,
            }],
            quarantine_cleared: vec![0xbeef],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("co_graph_journal_{name}.wal"));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn delta_round_trips_through_text() {
        let delta = sample_delta();
        let decoded = EgDelta::decode(&delta.encode(), "<memory>", 1).unwrap();
        assert_eq!(decoded, delta);
    }

    #[test]
    fn decode_rejects_garbage_with_record_context() {
        let err = EgDelta::decode("X\t1", "w.wal", 7).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("w.wal"), "{msg}");
        assert!(msg.contains('7'), "{msg}");
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("round_trip");
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        let delta = sample_delta();
        journal.append(&delta, None).unwrap();
        journal.append(&EgDelta::default(), None).unwrap();
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 2);
        assert_eq!(outcome.deltas[0], delta);
        assert!(outcome.torn_at.is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn");
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(&sample_delta(), None).unwrap();
        let good_len = journal.len_bytes();
        drop(journal);
        // Simulate a crash mid-append: half a record of garbage.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[42, 0, 0, 0, 1]);
        fs::write(&path, &bytes).unwrap();

        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 1);
        assert_eq!(outcome.torn_at, Some(good_len));
        assert_eq!(outcome.bytes_discarded, 5);
        truncate(&path, good_len).unwrap();
        // After truncation the journal is clean and appendable again.
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 1);
        assert!(outcome.torn_at.is_none());
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(&EgDelta::default(), None).unwrap();
        assert_eq!(replay(&path).unwrap().deltas.len(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay_at_prefix() {
        let path = tmp("corrupt");
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(&sample_delta(), None).unwrap();
        let first_len = journal.len_bytes();
        journal.append(&sample_delta(), None).unwrap();
        drop(journal);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a byte inside record 2's payload
        fs::write(&path, &bytes).unwrap();

        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 1);
        assert_eq!(outcome.torn_at, Some(first_len));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_and_reset_clears() {
        let path = tmp("reset");
        assert!(replay(&path).unwrap().deltas.is_empty());
        let mut journal = Journal::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        journal.append(&sample_delta(), None).unwrap();
        journal.reset(None).unwrap();
        assert_eq!(journal.len_bytes(), WAL_MAGIC.len() as u64);
        assert!(replay(&path).unwrap().deltas.is_empty());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_reported_with_path() {
        let path = tmp("magic");
        fs::write(&path, b"NOTAWAL!record").unwrap();
        let err = replay(&path).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn seq_line_round_trips() {
        let mut delta = sample_delta();
        delta.seq = Some(0x1f);
        let encoded = delta.encode();
        assert!(encoded.starts_with("S\t1f\n"), "{encoded}");
        let decoded = EgDelta::decode(&encoded, "<memory>", 1).unwrap();
        assert_eq!(decoded, delta);
        // A delta without a sequence number encodes no S line at all —
        // the single-journal layout is bit-identical to before.
        assert!(!sample_delta().encode().contains("S\t"));
    }

    #[test]
    fn commit_log_round_trips_and_detects_torn_tail() {
        let path = std::env::temp_dir().join("co_graph_journal_commit.commit");
        let _ = fs::remove_file(&path);
        let mut log = CommitLog::open(&path).unwrap();
        let a = CommitRecord {
            seq: 1,
            shards: vec![0, 3, 7],
        };
        let b = CommitRecord {
            seq: 2,
            shards: vec![2],
        };
        log.append(&a, None).unwrap();
        let good_len = log.len_bytes();
        log.append(&b, None).unwrap();
        drop(log);
        let replayed = replay_commits(&path).unwrap();
        assert_eq!(replayed.records, vec![a.clone(), b]);
        assert!(replayed.torn_at.is_none());
        // Tear the second record: replay keeps exactly the prefix.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replayed = replay_commits(&path).unwrap();
        assert_eq!(replayed.records, vec![a]);
        assert_eq!(replayed.torn_at, Some(good_len));
        truncate(&path, good_len).unwrap();
        assert!(replay_commits(&path).unwrap().torn_at.is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_pre_append_crash_leaves_log_untouched() {
        let path = std::env::temp_dir().join("co_graph_journal_commit_crash.commit");
        let _ = fs::remove_file(&path);
        let mut log = CommitLog::open(&path).unwrap();
        let faults = FaultInjector::new();
        faults.arm_crash(CrashPoint::CommitPreAppend);
        let rec = CommitRecord {
            seq: 9,
            shards: vec![1],
        };
        assert!(log.append(&rec, Some(&faults)).is_err());
        assert!(replay_commits(&path).unwrap().records.is_empty());
        log.append(&rec, Some(&faults)).unwrap(); // one-shot
        assert_eq!(replay_commits(&path).unwrap().records.len(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_record_rejects_malformed_payloads() {
        for bad in [
            "",
            "X\t1\t0",
            "C\t1\t",
            "C\tzz\t0",
            "C\t1\t3,1",
            "C\t1\t1,1",
            "C\t1\t0\nC\t2\t0",
        ] {
            assert!(
                CommitRecord::decode(bad, "<memory>", 1).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn failed_append_damages_journal_until_reopen() {
        use crate::faults::IoFault;
        let path = tmp("io_damage");
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(&sample_delta(), None).unwrap();
        let good_len = journal.len_bytes();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::Enospc, 1);
        assert!(journal.append(&sample_delta(), Some(&faults)).is_err());
        assert!(journal.is_damaged());
        // Fault budget is spent, but the journal still refuses appends:
        // the on-disk state is unknown until reopened.
        assert!(journal.append(&sample_delta(), Some(&faults)).is_err());
        drop(journal);
        // ENOSPC landed no bytes, so the committed prefix is intact.
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 1);
        assert!(outcome.torn_at.is_none());
        let mut reopened = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(reopened.len_bytes(), good_len);
        reopened.append(&sample_delta(), None).unwrap();
        assert_eq!(replay(&path).unwrap().deltas.len(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_leaves_truncatable_torn_tail() {
        use crate::faults::IoFault;
        let path = tmp("io_short");
        let mut journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
        journal.append(&sample_delta(), None).unwrap();
        let good_len = journal.len_bytes();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::ShortWrite, 1);
        assert!(journal.append(&sample_delta(), Some(&faults)).is_err());
        drop(journal);
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.deltas.len(), 1);
        assert_eq!(outcome.torn_at, Some(good_len));
        truncate(&path, good_len).unwrap();
        assert!(replay(&path).unwrap().torn_at.is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn apply_is_idempotent_over_absolute_values() {
        let mut eg = ExperimentGraph::new(true);
        let delta = EgDelta {
            new_vertices: vec![vertex(1, &[]), vertex(2, &[1])],
            mat_added: vec![ArtifactId(2)],
            ..EgDelta::default()
        };
        delta.apply(&mut eg).unwrap();
        delta.apply(&mut eg).unwrap(); // replay over an already-applied state
        assert_eq!(eg.n_vertices(), 2);
        assert_eq!(eg.vertex(ArtifactId(1)).unwrap().frequency, 1);
        assert!(eg.was_materialized(ArtifactId(2)));
        let touch = EgDelta {
            touched: vec![VertexTouch {
                id: ArtifactId(1),
                frequency: 5,
                compute_time: 2.0,
                size: 10,
                quality: 0.5,
            }],
            mat_removed: vec![ArtifactId(2)],
            ..EgDelta::default()
        };
        touch.apply(&mut eg).unwrap();
        touch.apply(&mut eg).unwrap();
        assert_eq!(eg.vertex(ArtifactId(1)).unwrap().frequency, 5);
        assert!(!eg.was_materialized(ArtifactId(2)));
    }
}
