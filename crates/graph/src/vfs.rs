//! Virtual file layer for durability I/O, with deterministic storage
//! fault injection.
//!
//! Every byte the durability code persists — journal appends, snapshot
//! temp files and renames, the cross-shard commit log, cold column
//! files — flows through this module, so a single [`IoFault`] schedule
//! on the shared [`FaultInjector`] can make *any* of those operations
//! fail exactly as a full disk (ENOSPC), a flaky device (EIO), a torn
//! write, or a failed `fsync` would.
//!
//! ## fsyncgate semantics
//!
//! A failed `fsync` is not a retriable event: PostgreSQL's "fsyncgate"
//! established that on a failed fsync the kernel may drop the dirty
//! pages *and clear the error*, so a later fsync that succeeds proves
//! nothing about the earlier write. [`VfsFile`] therefore **poisons**
//! the handle on the first failed sync: every subsequent write or sync
//! through it fails until the file is reopened, forcing the caller
//! down the re-open + re-append repair path instead of the fatal
//! "retry and assume persisted" one.
//!
//! All functions return [`std::io::Result`] so callers keep their
//! existing `GraphError::Io` mapping; injected faults are ordinary
//! [`std::io::Error`]s whose messages carry an `injected` marker plus
//! the fault name.

use crate::faults::{FaultInjector, IoFault};
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

fn injected(fault: IoFault) -> io::Error {
    let detail = match fault {
        IoFault::Enospc => "no space left on device",
        IoFault::ReadErr => "input/output error on read",
        IoFault::WriteErr => "input/output error on write",
        IoFault::ShortWrite => "short write: device accepted only a prefix",
        IoFault::FsyncFail => "fsync failed: dirty pages in unknown state",
    };
    io::Error::other(format!("injected {} fault: {detail}", fault.name()))
}

fn poisoned_err(path: &Path) -> io::Error {
    io::Error::other(format!(
        "file handle for {} is poisoned by an earlier failed fsync; \
         the clean range is unknown — reopen the file before writing",
        path.display()
    ))
}

fn fires(faults: Option<&FaultInjector>, fault: IoFault) -> bool {
    faults.is_some_and(|f| f.take_io_fault(fault))
}

/// An open durability file. Wraps [`fs::File`] and consults the fault
/// injector on every write-side operation; carries the fsyncgate
/// poison bit (see the module docs).
#[derive(Debug)]
pub struct VfsFile {
    file: fs::File,
    path: PathBuf,
    poisoned: bool,
}

impl VfsFile {
    /// Open (or create) a file for appending, positioned at its end.
    pub fn open_append(path: &Path, faults: Option<&FaultInjector>) -> io::Result<VfsFile> {
        if fires(faults, IoFault::WriteErr) {
            return Err(injected(IoFault::WriteErr));
        }
        let file = fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        Ok(VfsFile {
            file,
            path: path.to_path_buf(),
            poisoned: false,
        })
    }

    /// Create (truncating) a file for writing — the snapshot temp file.
    pub fn create(path: &Path, faults: Option<&FaultInjector>) -> io::Result<VfsFile> {
        if fires(faults, IoFault::Enospc) {
            return Err(injected(IoFault::Enospc));
        }
        let file = fs::File::create(path)?;
        Ok(VfsFile {
            file,
            path: path.to_path_buf(),
            poisoned: false,
        })
    }

    /// The underlying path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a failed fsync has poisoned this handle.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Current file length in bytes.
    pub fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Read exactly `buf.len()` bytes from the start-relative reader
    /// position (used to validate magics on open).
    pub fn read_exact(&mut self, buf: &mut [u8], faults: Option<&FaultInjector>) -> io::Result<()> {
        if fires(faults, IoFault::ReadErr) {
            return Err(injected(IoFault::ReadErr));
        }
        (&self.file).read_exact(buf)
    }

    /// Append the whole buffer, honouring injected faults:
    /// [`IoFault::Enospc`] and [`IoFault::WriteErr`] fail before any
    /// byte lands; [`IoFault::ShortWrite`] persists roughly half the
    /// buffer and then fails (a torn record for recovery to truncate).
    pub fn write_all(&mut self, buf: &[u8], faults: Option<&FaultInjector>) -> io::Result<()> {
        if self.poisoned {
            return Err(poisoned_err(&self.path));
        }
        if fires(faults, IoFault::Enospc) {
            return Err(injected(IoFault::Enospc));
        }
        if fires(faults, IoFault::WriteErr) {
            return Err(injected(IoFault::WriteErr));
        }
        if fires(faults, IoFault::ShortWrite) {
            let torn = &buf[..buf.len() / 2];
            self.file.write_all(torn)?;
            let _ = self.file.sync_all();
            return Err(injected(IoFault::ShortWrite));
        }
        self.file.write_all(buf)
    }

    /// Flush to disk. On an injected [`IoFault::FsyncFail`] (or a real
    /// sync error) the handle is poisoned — see the module docs.
    pub fn sync(&mut self, faults: Option<&FaultInjector>) -> io::Result<()> {
        if self.poisoned {
            return Err(poisoned_err(&self.path));
        }
        if fires(faults, IoFault::FsyncFail) {
            self.poisoned = true;
            return Err(injected(IoFault::FsyncFail));
        }
        match self.file.sync_all() {
            Ok(()) => Ok(()),
            Err(e) => {
                // A real failed fsync gets the same fsyncgate treatment.
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Truncate the file to `len` bytes and fsync the truncation.
    pub fn set_len(&mut self, len: u64, faults: Option<&FaultInjector>) -> io::Result<()> {
        if self.poisoned {
            return Err(poisoned_err(&self.path));
        }
        if fires(faults, IoFault::WriteErr) {
            return Err(injected(IoFault::WriteErr));
        }
        self.file.set_len(len)
    }
}

/// Read a whole file (recovery-side replay).
pub fn read(path: &Path, faults: Option<&FaultInjector>) -> io::Result<Vec<u8>> {
    if fires(faults, IoFault::ReadErr) {
        return Err(injected(IoFault::ReadErr));
    }
    fs::read(path)
}

/// Read a whole file as UTF-8 text (snapshot load).
pub fn read_to_string(path: &Path, faults: Option<&FaultInjector>) -> io::Result<String> {
    if fires(faults, IoFault::ReadErr) {
        return Err(injected(IoFault::ReadErr));
    }
    fs::read_to_string(path)
}

/// Create a directory and all its parents (store/cold-dir setup).
pub fn create_dir_all(dir: &Path, faults: Option<&FaultInjector>) -> io::Result<()> {
    if fires(faults, IoFault::Enospc) {
        return Err(injected(IoFault::Enospc));
    }
    fs::create_dir_all(dir)
}

/// List a directory's entry paths, sorted for deterministic iteration
/// (cold-store scans, stray-tmp sweeps).
pub fn read_dir_sorted(dir: &Path, faults: Option<&FaultInjector>) -> io::Result<Vec<PathBuf>> {
    if fires(faults, IoFault::ReadErr) {
        return Err(injected(IoFault::ReadErr));
    }
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    Ok(entries)
}

/// Atomically rename `from` onto `to` (the snapshot publish step).
pub fn rename(from: &Path, to: &Path, faults: Option<&FaultInjector>) -> io::Result<()> {
    if fires(faults, IoFault::WriteErr) {
        return Err(injected(IoFault::WriteErr));
    }
    fs::rename(from, to)
}

/// Remove a file (stray-tmp cleanup, cold-column eviction).
pub fn remove_file(path: &Path, faults: Option<&FaultInjector>) -> io::Result<()> {
    if fires(faults, IoFault::WriteErr) {
        return Err(injected(IoFault::WriteErr));
    }
    fs::remove_file(path)
}

/// Truncate the file at `path` to `len` bytes and fsync the result
/// (torn-tail repair).
pub fn truncate(path: &Path, len: u64, faults: Option<&FaultInjector>) -> io::Result<()> {
    if fires(faults, IoFault::WriteErr) {
        return Err(injected(IoFault::WriteErr));
    }
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// Best-effort fsync of a directory (after a rename into it).
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("co_graph_vfs_{name}"));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn plain_io_round_trips() {
        let path = tmp("plain");
        let mut f = VfsFile::create(&path, None).unwrap();
        f.write_all(b"hello", None).unwrap();
        f.sync(None).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        assert!(!f.is_empty().unwrap());
        drop(f);
        assert_eq!(read(&path, None).unwrap(), b"hello");
        let renamed = tmp("plain_renamed");
        rename(&path, &renamed, None).unwrap();
        remove_file(&renamed, None).unwrap();
    }

    #[test]
    fn enospc_fails_without_writing() {
        let path = tmp("enospc");
        let mut f = VfsFile::create(&path, None).unwrap();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::Enospc, 1);
        let err = f.write_all(b"payload", Some(&faults)).unwrap_err();
        assert!(err.to_string().contains("enospc"), "{err}");
        assert_eq!(f.len().unwrap(), 0, "no byte may land");
        f.write_all(b"payload", Some(&faults)).unwrap();
        assert_eq!(f.len().unwrap(), 7);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let path = tmp("short");
        let mut f = VfsFile::create(&path, None).unwrap();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::ShortWrite, 1);
        assert!(f.write_all(b"0123456789", Some(&faults)).is_err());
        assert_eq!(f.len().unwrap(), 5, "exactly the torn prefix");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_fsync_poisons_the_handle() {
        let path = tmp("fsyncgate");
        let mut f = VfsFile::create(&path, None).unwrap();
        f.write_all(b"clean", None).unwrap();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::FsyncFail, 1);
        assert!(f.sync(Some(&faults)).is_err());
        assert!(f.is_poisoned());
        // The fault budget is spent, but the poison persists: no write
        // or sync may ever "retry and assume persisted".
        assert!(f.write_all(b"more", Some(&faults)).is_err());
        assert!(f.sync(Some(&faults)).is_err());
        assert!(f.set_len(0, Some(&faults)).is_err());
        // Reopening the path yields a clean handle.
        let mut reopened = VfsFile::open_append(&path, Some(&faults)).unwrap();
        assert!(!reopened.is_poisoned());
        reopened.write_all(b"!", Some(&faults)).unwrap();
        reopened.sync(Some(&faults)).unwrap();
        fs::remove_file(&path).ok();
    }

    #[test]
    fn read_err_hits_reads_only() {
        let path = tmp("readerr");
        fs::write(&path, b"data").unwrap();
        let faults = FaultInjector::new();
        faults.arm_io_fault(IoFault::ReadErr, 1);
        assert!(read(&path, Some(&faults)).is_err());
        assert_eq!(read(&path, Some(&faults)).unwrap(), b"data");
        fs::remove_file(&path).ok();
    }
}
