//! Meta-data persistence for the Experiment Graph.
//!
//! The paper's EG lives for the lifetime of a collaborative environment;
//! a server restart must not forget it. This module serialises the
//! *meta-data* side of the graph — every vertex's
//! ⟨id, kind, frequency, compute-time, size, quality, description,
//! lineage, mat flag⟩ plus the quarantine set — to a simple
//! line-oriented format, without external serialisation crates.
//!
//! Artifact *content* is deliberately not persisted: EG keeps meta-data
//! for all artifacts but content only for the materialized subset (§3.2),
//! and on restart contents repopulate as workloads execute (sources are
//! re-stored by the updater on their first appearance). A restored graph
//! therefore plans with full cost information immediately, and regains
//! reuse opportunities as content streams back in.
//!
//! ## Format (`EGSNAP 2`)
//!
//! ```text
//! EGSNAP 2
//! V\t<10 vertex fields>\t<mat: 0|1>
//! ...
//! Q\t<op hash hex>\t<failures>\t<escaped name>
//! ...
//! #CRC <crc32 of everything above, 8 hex digits>
//! ```
//!
//! Vertex lines come in topological (parents-first) order; free-text
//! fields escape tabs/newlines/backslashes with `\`. The CRC footer
//! covers every byte before it, so any single-byte corruption is
//! detected at load instead of silently restoring a wrong graph.
//! Snapshots are written atomically: temp file, fsync, rename (see
//! [`save_with`]). The legacy headerless-of-extras `EGSNAP 1` format
//! (no `V` tag, no mat flag, no quarantine, no CRC) still loads.

use crate::artifact::{ArtifactId, NodeKind};
use crate::error::{GraphError, Result};
use crate::experiment::{EgVertex, ExperimentGraph};
use crate::faults::{CrashPoint, FaultInjector};
use crate::journal::{crc32, QuarantineEntry};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const HEADER_V1: &str = "EGSNAP 1";
const HEADER_V2: &str = "EGSNAP 2";
/// Per-shard snapshot of a sharded Experiment Graph: an `EGSNAP 2` body
/// preceded by a `W\t<seq>` watermark line, parsed with *lenient*
/// lineage (a vertex's parents may live in other shards).
const HEADER_V3: &str = "EGSNAP 3";
const CRC_PREFIX: &str = "#CRC ";

/// Origin label for snapshots parsed from in-memory strings.
const IN_MEMORY: &str = "<memory>";

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Strict inverse of [`escape`]: a trailing lone backslash or an unknown
/// escape sequence is a parse error, not silent corruption.
pub(crate) fn unescape(s: &str) -> std::result::Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => return Err(format!("unknown escape sequence \\{other}")),
                None => return Err("trailing lone backslash".to_owned()),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Where a parse is happening: the file (or `<memory>`) and the 1-based
/// record number, threaded into every error so operators can locate
/// damage without a hex dump.
pub(crate) struct ParseCtx<'a> {
    pub origin: &'a str,
    pub record: usize,
}

impl ParseCtx<'_> {
    pub fn err(&self, message: impl Into<String>) -> GraphError {
        GraphError::corrupt(self.origin, self.record, message)
    }
}

fn kind_code(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Dataset => "D",
        NodeKind::Aggregate => "A",
        NodeKind::Model => "M",
    }
}

fn parse_kind(code: &str) -> Option<NodeKind> {
    match code {
        "D" => Some(NodeKind::Dataset),
        "A" => Some(NodeKind::Aggregate),
        "M" => Some(NodeKind::Model),
        _ => None,
    }
}

/// The 10 tab-joined vertex fields shared by snapshot `V` lines and
/// journal `V` records.
pub(crate) fn vertex_fields(v: &EgVertex) -> String {
    let parents: Vec<String> = v.parents.iter().map(|p| format!("{:x}", p.0)).collect();
    format!(
        "{:x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        v.id.0,
        kind_code(v.kind),
        v.frequency,
        v.compute_time,
        v.size,
        v.quality,
        v.op_hash
            .map_or_else(|| "-".to_owned(), |h| format!("{h:x}")),
        v.source_name
            .as_deref()
            .map_or_else(|| "-".to_owned(), escape),
        escape(&v.description),
        parents.join(","),
    )
}

/// Parse the 10 vertex fields back into an [`EgVertex`] (children links
/// are rebuilt on insertion).
pub(crate) fn parse_vertex_fields(fields: &[&str], ctx: &ParseCtx<'_>) -> Result<EgVertex> {
    if fields.len() != 10 {
        return Err(ctx.err(format!("expected 10 vertex fields, got {}", fields.len())));
    }
    let id = ArtifactId(
        u64::from_str_radix(fields[0], 16)
            .map_err(|_| ctx.err(format!("bad artifact id {:?}", fields[0])))?,
    );
    let kind = parse_kind(fields[1]).ok_or_else(|| ctx.err(format!("bad kind {:?}", fields[1])))?;
    let frequency = fields[2].parse().map_err(|_| ctx.err("bad frequency"))?;
    let compute_time = fields[3].parse().map_err(|_| ctx.err("bad compute time"))?;
    let size = fields[4].parse().map_err(|_| ctx.err("bad size"))?;
    let quality = fields[5].parse().map_err(|_| ctx.err("bad quality"))?;
    let op_hash = if fields[6] == "-" {
        None
    } else {
        Some(
            u64::from_str_radix(fields[6], 16)
                .map_err(|_| ctx.err(format!("bad op hash {:?}", fields[6])))?,
        )
    };
    let source_name = if fields[7] == "-" {
        None
    } else {
        Some(unescape(fields[7]).map_err(|m| ctx.err(m))?)
    };
    let description = unescape(fields[8]).map_err(|m| ctx.err(m))?;
    let parents: Vec<ArtifactId> = if fields[9].is_empty() {
        Vec::new()
    } else {
        fields[9]
            .split(',')
            .map(|p| {
                u64::from_str_radix(p, 16)
                    .map(ArtifactId)
                    .map_err(|_| ctx.err(format!("bad parent id {p:?}")))
            })
            .collect::<Result<_>>()?
    };
    Ok(EgVertex {
        id,
        kind,
        frequency,
        compute_time,
        size,
        quality,
        description,
        source_name,
        op_hash,
        parents,
        children: Vec::new(),
    })
}

/// A graph restored from a snapshot, with the persisted quarantine set.
pub struct RestoredSnapshot {
    /// The rebuilt graph (meta-data only; empty content store).
    pub graph: ExperimentGraph,
    /// Quarantine entries active when the snapshot was written.
    pub quarantine: Vec<QuarantineEntry>,
}

/// Serialise the graph's meta-data (no quarantine) to an `EGSNAP 2`
/// string. See [`to_snapshot_with`].
///
/// # Errors
///
/// The graph's topological order lists a vertex the graph cannot
/// resolve — internal corruption that must surface as a typed error
/// (the durability layer degrades to read-only), never a panic.
pub fn to_snapshot(eg: &ExperimentGraph) -> Result<String> {
    to_snapshot_with(eg, &[])
}

/// The typed error for a graph whose topological order lists a vertex
/// the graph cannot resolve: in-memory corruption, reported like any
/// other durability corruption instead of panicking mid-save.
fn unknown_vertex(id: ArtifactId) -> GraphError {
    GraphError::corrupt(
        "<memory>",
        0,
        format!("topo order lists unknown vertex {:x}", id.0),
    )
}

/// Serialise the graph's meta-data and the quarantine set to an
/// `EGSNAP 2` string, CRC footer included.
///
/// # Errors
///
/// The graph's topological order lists an unresolvable vertex (see
/// [`to_snapshot`]).
pub fn to_snapshot_with(eg: &ExperimentGraph, quarantine: &[QuarantineEntry]) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER_V2}");
    for id in eg.topo_order() {
        let v = eg.vertex(*id).map_err(|_| unknown_vertex(*id))?;
        let mat = u8::from(eg.was_materialized(*id));
        let _ = writeln!(out, "V\t{}\t{}", vertex_fields(v), mat);
    }
    for q in quarantine {
        let _ = writeln!(
            out,
            "Q\t{:x}\t{}\t{}",
            q.op_hash,
            q.failures,
            escape(&q.name)
        );
    }
    let _ = writeln!(out, "{CRC_PREFIX}{:08x}", crc32(out.as_bytes()));
    Ok(out)
}

/// Rebuild a graph from a snapshot string (either `EGSNAP 2` or the
/// legacy `EGSNAP 1`), dropping the quarantine set.
pub fn from_snapshot(text: &str, dedup: bool) -> Result<ExperimentGraph> {
    from_snapshot_full(text, dedup, IN_MEMORY).map(|r| r.graph)
}

/// Rebuild a graph and the quarantine set from a snapshot string.
/// `origin` names the source (a file path, usually) in parse errors.
pub fn from_snapshot_full(text: &str, dedup: bool, origin: &str) -> Result<RestoredSnapshot> {
    let header = text.lines().next().unwrap_or("");
    match header {
        HEADER_V2 => from_v2(text, dedup, origin),
        HEADER_V1 => from_v1(text, dedup, origin),
        HEADER_V3 => Err(GraphError::corrupt(
            origin,
            0,
            "this is a per-shard snapshot (EGSNAP 3) — open the data dir with the sharded layout",
        )),
        other => Err(GraphError::corrupt(
            origin,
            0,
            format!("expected header {HEADER_V2:?} or {HEADER_V1:?}, found {other:?}"),
        )),
    }
}

fn check_parents(eg: &ExperimentGraph, v: &EgVertex, ctx: &ParseCtx<'_>) -> Result<()> {
    for p in &v.parents {
        if !eg.contains(*p) {
            return Err(ctx.err(format!("parent {:x} referenced before definition", p.0)));
        }
    }
    Ok(())
}

/// Verify the canonical `#CRC` footer over everything preceding it and
/// return the byte offset where the footer line begins.
fn verify_crc_footer(text: &str, origin: &str) -> Result<usize> {
    let footer_at = text.trim_end_matches('\n').rfind('\n').map_or(0, |i| i + 1);
    let footer = text[footer_at..].trim_end_matches('\n');
    let Some(stated) = footer.strip_prefix(CRC_PREFIX) else {
        return Err(GraphError::corrupt(
            origin,
            0,
            "missing #CRC footer (truncated snapshot?)",
        ));
    };
    // Exactly 8 lowercase hex digits — the writer's canonical form.
    // `from_str_radix` alone would also accept uppercase (and a sign),
    // letting a case-flipping corruption of the footer go unnoticed.
    let canonical = stated.len() == 8
        && stated
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
    if !canonical {
        return Err(GraphError::corrupt(
            origin,
            0,
            format!("bad #CRC footer {footer:?}"),
        ));
    }
    let stated = u32::from_str_radix(stated, 16)
        .map_err(|_| GraphError::corrupt(origin, 0, format!("bad #CRC footer {footer:?}")))?;
    let actual = crc32(&text.as_bytes()[..footer_at]);
    if stated != actual {
        return Err(GraphError::corrupt(
            origin,
            0,
            format!("checksum mismatch: file says {stated:08x}, contents hash to {actual:08x}"),
        ));
    }
    Ok(footer_at)
}

fn from_v2(text: &str, dedup: bool, origin: &str) -> Result<RestoredSnapshot> {
    // Verify the CRC footer over everything preceding it before
    // trusting a single field.
    let footer_at = verify_crc_footer(text, origin)?;
    let mut eg = ExperimentGraph::new(dedup);
    let mut quarantine = Vec::new();
    for (lineno, line) in text[..footer_at].lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = ParseCtx {
            origin,
            record: lineno + 1,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "V" if fields.len() == 12 => {
                let v = parse_vertex_fields(&fields[1..11], &ctx)?;
                let mat = match fields[11] {
                    "0" => false,
                    "1" => true,
                    other => return Err(ctx.err(format!("bad mat flag {other:?}"))),
                };
                check_parents(&eg, &v, &ctx)?;
                let id = v.id;
                eg.restore_vertex(v).map_err(|e| ctx.err(e.to_string()))?;
                if mat {
                    eg.mark_restored_materialized(id);
                }
            }
            "Q" if fields.len() == 4 => quarantine.push(QuarantineEntry {
                op_hash: u64::from_str_radix(fields[1], 16)
                    .map_err(|_| ctx.err("bad op hash in Q line"))?,
                failures: fields[2]
                    .parse()
                    .map_err(|_| ctx.err("bad failure count in Q line"))?,
                name: unescape(fields[3]).map_err(|m| ctx.err(m))?,
            }),
            tag => {
                return Err(ctx.err(format!(
                    "unknown or malformed snapshot line {tag:?} ({} fields)",
                    fields.len()
                )))
            }
        }
    }
    Ok(RestoredSnapshot {
        graph: eg,
        quarantine,
    })
}

fn from_v1(text: &str, dedup: bool, origin: &str) -> Result<RestoredSnapshot> {
    let mut eg = ExperimentGraph::new(dedup);
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = ParseCtx {
            origin,
            record: lineno + 1,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        let v = parse_vertex_fields(&fields, &ctx)?;
        check_parents(&eg, &v, &ctx)?;
        eg.restore_vertex(v).map_err(|e| ctx.err(e.to_string()))?;
    }
    Ok(RestoredSnapshot {
        graph: eg,
        quarantine: Vec::new(),
    })
}

/// One shard restored from an `EGSNAP 3` snapshot. Children links and
/// cross-shard lineage are *not* validated here — run the sharded
/// recovery's rewire pass (`crate::shard`) over all shards afterwards.
pub struct RestoredShardSnapshot {
    /// The rebuilt shard (meta-data only; empty content store).
    pub graph: ExperimentGraph,
    /// Quarantine entries (only shard 0's snapshot carries any).
    pub quarantine: Vec<QuarantineEntry>,
    /// Journal replay skips records with `seq <= watermark`: everything
    /// up to the watermark is already contained in this snapshot.
    pub watermark: u64,
}

/// Serialise one shard's meta-data, quarantine set and sequence
/// watermark to an `EGSNAP 3` string, CRC footer included.
///
/// # Errors
///
/// The graph's topological order lists an unresolvable vertex (see
/// [`to_snapshot`]).
pub fn to_shard_snapshot(
    eg: &ExperimentGraph,
    quarantine: &[QuarantineEntry],
    watermark: u64,
) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER_V3}");
    let _ = writeln!(out, "W\t{watermark:x}");
    for id in eg.topo_order() {
        let v = eg.vertex(*id).map_err(|_| unknown_vertex(*id))?;
        let mat = u8::from(eg.was_materialized(*id));
        let _ = writeln!(out, "V\t{}\t{}", vertex_fields(v), mat);
    }
    for q in quarantine {
        let _ = writeln!(
            out,
            "Q\t{:x}\t{}\t{}",
            q.op_hash,
            q.failures,
            escape(&q.name)
        );
    }
    let _ = writeln!(out, "{CRC_PREFIX}{:08x}", crc32(out.as_bytes()));
    Ok(out)
}

/// Rebuild one shard from an `EGSNAP 3` string. Parents are recorded
/// but not resolved (they may live in other shards); children links are
/// left empty for the recovery rewire pass.
pub fn from_shard_snapshot(text: &str, dedup: bool, origin: &str) -> Result<RestoredShardSnapshot> {
    let header = text.lines().next().unwrap_or("");
    if header != HEADER_V3 {
        return Err(GraphError::corrupt(
            origin,
            0,
            format!("expected header {HEADER_V3:?}, found {header:?}"),
        ));
    }
    let footer_at = verify_crc_footer(text, origin)?;
    let mut eg = ExperimentGraph::new(dedup);
    let mut quarantine = Vec::new();
    let mut watermark = None;
    for (lineno, line) in text[..footer_at].lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = ParseCtx {
            origin,
            record: lineno + 1,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "W" if fields.len() == 2 => {
                if watermark.is_some() {
                    return Err(ctx.err("duplicate W line"));
                }
                watermark =
                    Some(u64::from_str_radix(fields[1], 16).map_err(|_| ctx.err("bad watermark"))?);
            }
            "V" if fields.len() == 12 => {
                let v = parse_vertex_fields(&fields[1..11], &ctx)?;
                let mat = match fields[11] {
                    "0" => false,
                    "1" => true,
                    other => return Err(ctx.err(format!("bad mat flag {other:?}"))),
                };
                let id = v.id;
                eg.restore_vertex_unlinked(v)
                    .map_err(|e| ctx.err(e.to_string()))?;
                if mat {
                    eg.mark_restored_materialized(id);
                }
            }
            "Q" if fields.len() == 4 => quarantine.push(QuarantineEntry {
                op_hash: u64::from_str_radix(fields[1], 16)
                    .map_err(|_| ctx.err("bad op hash in Q line"))?,
                failures: fields[2]
                    .parse()
                    .map_err(|_| ctx.err("bad failure count in Q line"))?,
                name: unescape(fields[3]).map_err(|m| ctx.err(m))?,
            }),
            tag => {
                return Err(ctx.err(format!(
                    "unknown or malformed shard-snapshot line {tag:?} ({} fields)",
                    fields.len()
                )))
            }
        }
    }
    let watermark = watermark
        .ok_or_else(|| GraphError::corrupt(origin, 0, "shard snapshot is missing its W line"))?;
    Ok(RestoredShardSnapshot {
        graph: eg,
        quarantine,
        watermark,
    })
}

/// Write one shard's snapshot atomically (same temp+fsync+rename
/// discipline and crash points as [`save_with`]).
pub fn save_shard_with(
    eg: &ExperimentGraph,
    quarantine: &[QuarantineEntry],
    watermark: u64,
    path: &Path,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let text = to_shard_snapshot(eg, quarantine, watermark)?;
    write_atomic(&text, path, faults)
}

/// Load one shard's snapshot from disk.
pub fn load_shard_full(path: &Path, dedup: bool) -> Result<RestoredShardSnapshot> {
    let text = crate::vfs::read_to_string(path, None)
        .map_err(|e| GraphError::Io(format!("cannot read snapshot {}: {e}", path.display())))?;
    from_shard_snapshot(&text, dedup, &path.display().to_string())
}

/// The temp-file path used by atomic saves: `<path>.tmp`.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> GraphError {
    GraphError::Io(format!("cannot {what} snapshot {}: {e}", path.display()))
}

fn should_crash(faults: Option<&FaultInjector>, point: CrashPoint) -> bool {
    faults.is_some_and(|f| f.take_crash(point))
}

fn crash_err(point: CrashPoint) -> GraphError {
    GraphError::Io(format!("injected crash at {}", point.name()))
}

/// Write a snapshot to disk atomically (temp file + fsync + rename).
/// See [`save_with`].
pub fn save(eg: &ExperimentGraph, path: &Path) -> Result<()> {
    save_with(eg, &[], path, None)
}

/// Write a snapshot (graph + quarantine set) to disk atomically:
/// the full contents go to `<path>.tmp`, which is fsynced and then
/// renamed over `path`, so a crash at any point leaves either the old
/// complete snapshot or the new complete snapshot — never a torn mix.
/// With a fault injector armed, the snapshot [`CrashPoint`]s fire here.
pub fn save_with(
    eg: &ExperimentGraph,
    quarantine: &[QuarantineEntry],
    path: &Path,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let text = to_snapshot_with(eg, quarantine)?;
    write_atomic(&text, path, faults)
}

fn write_atomic(text: &str, path: &Path, faults: Option<&FaultInjector>) -> Result<()> {
    let bytes = text.as_bytes();
    let tmp = tmp_path(path);
    {
        let mut file =
            crate::vfs::VfsFile::create(&tmp, faults).map_err(|e| io_err("create", &tmp, &e))?;
        if should_crash(faults, CrashPoint::SnapshotMidWrite) {
            let _ = file.write_all(&bytes[..bytes.len() / 2], None);
            let _ = file.sync(None);
            return Err(crash_err(CrashPoint::SnapshotMidWrite));
        }
        file.write_all(bytes, faults)
            .map_err(|e| io_err("write", &tmp, &e))?;
        if should_crash(faults, CrashPoint::SnapshotPreFsync) {
            return Err(crash_err(CrashPoint::SnapshotPreFsync));
        }
        file.sync(faults).map_err(|e| io_err("sync", &tmp, &e))?;
    }
    if should_crash(faults, CrashPoint::SnapshotPreRename) {
        return Err(crash_err(CrashPoint::SnapshotPreRename));
    }
    crate::vfs::rename(&tmp, path, faults).map_err(|e| io_err("rename", path, &e))?;
    // Make the rename itself durable.
    if let Some(dir) = path.parent() {
        crate::vfs::sync_dir(dir);
    }
    Ok(())
}

/// Load a snapshot from disk, dropping the quarantine set.
pub fn load(path: &Path, dedup: bool) -> Result<ExperimentGraph> {
    load_full(path, dedup).map(|r| r.graph)
}

/// Load a snapshot and the persisted quarantine set from disk.
pub fn load_full(path: &Path, dedup: bool) -> Result<RestoredSnapshot> {
    let text = crate::vfs::read_to_string(path, None)
        .map_err(|e| GraphError::Io(format!("cannot read snapshot {}: {e}", path.display())))?;
    from_snapshot_full(&text, dedup, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::Operation;
    use crate::value::Value;
    use crate::workload::WorkloadDag;
    use co_dataframe::Scalar;
    use std::sync::Arc;

    struct Step(&'static str, NodeKind);
    impl Operation for Step {
        fn name(&self) -> &str {
            self.0
        }
        fn params_digest(&self) -> String {
            "p\tq".to_owned() // exercise escaping through op identity
        }
        fn output_kind(&self) -> NodeKind {
            self.1
        }
        fn run(&self, _inputs: &[&Value]) -> Result<Value> {
            Ok(Value::Aggregate(Scalar::Float(0.0)))
        }
    }

    fn populated() -> ExperimentGraph {
        let mut dag = WorkloadDag::new();
        let s = dag.add_source("train\tcsv", Value::Aggregate(Scalar::Float(0.0)));
        let a = dag
            .add_op(Arc::new(Step("clean", NodeKind::Dataset)), &[s])
            .unwrap();
        let b = dag
            .add_op(Arc::new(Step("other", NodeKind::Dataset)), &[s])
            .unwrap();
        let m = dag
            .add_op(Arc::new(Step("train", NodeKind::Model)), &[a, b])
            .unwrap();
        dag.mark_terminal(m).unwrap();
        dag.annotate(a, 1.5, 100).unwrap();
        dag.annotate(b, 0.5, 200).unwrap();
        dag.annotate(m, 2.25, 50).unwrap();
        dag.node_mut(m).unwrap().quality = 0.875;
        let mut eg = ExperimentGraph::new(true);
        eg.update_with_workload(&dag).unwrap();
        eg.update_with_workload(&dag).unwrap(); // bump frequencies
        eg
    }

    #[test]
    fn round_trips_meta_data() {
        let eg = populated();
        let restored = from_snapshot(&to_snapshot(&eg).unwrap(), true).unwrap();
        assert_eq!(restored.n_vertices(), eg.n_vertices());
        assert_eq!(restored.topo_order(), eg.topo_order());
        assert_eq!(restored.sources(), eg.sources());
        for id in eg.topo_order() {
            let a = eg.vertex(*id).unwrap();
            let b = restored.vertex(*id).unwrap();
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.compute_time, b.compute_time);
            assert_eq!(a.size, b.size);
            assert_eq!(a.quality, b.quality);
            assert_eq!(a.op_hash, b.op_hash);
            assert_eq!(a.source_name, b.source_name);
            assert_eq!(a.parents, b.parents);
            let mut ca = a.children.clone();
            let mut cb = b.children.clone();
            ca.sort();
            cb.sort();
            assert_eq!(ca, cb);
        }
        // Content is not persisted: nothing is materialized, but the
        // mat *flag* survives for durability bookkeeping.
        assert_eq!(restored.storage().n_artifacts(), 0);
        for src in eg.sources() {
            assert!(restored.was_materialized(*src));
        }
        // Derived attributes recompute identically.
        assert_eq!(restored.recreation_costs(), eg.recreation_costs());
        assert_eq!(restored.potentials(), eg.potentials());
    }

    #[test]
    fn quarantine_round_trips() {
        let eg = populated();
        let quarantine = vec![QuarantineEntry {
            op_hash: 0xabc,
            name: "train\tweird".to_owned(),
            failures: 4,
        }];
        let text = to_snapshot_with(&eg, &quarantine).unwrap();
        let restored = from_snapshot_full(&text, true, IN_MEMORY).unwrap();
        assert_eq!(restored.quarantine, quarantine);
        assert_eq!(restored.graph.n_vertices(), eg.n_vertices());
    }

    #[test]
    fn file_round_trip() {
        let eg = populated();
        let path = std::env::temp_dir().join("co_graph_snapshot_test.egsnap");
        save(&eg, &path).unwrap();
        let restored = load(&path, true).unwrap();
        assert_eq!(restored.n_vertices(), eg.n_vertices());
        assert!(!tmp_path(&path).exists(), "atomic save leaves no temp file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loads_legacy_v1_snapshots() {
        // An EGSNAP 1 file from an existing deployment: no V tag, no mat
        // flag, no quarantine, no CRC footer.
        let v1 = "EGSNAP 1\n\
                  aa\tD\t2\t0\t64\t0\t-\tsrc\tdesc\t\n\
                  bb\tM\t2\t1.5\t32\t0.875\tbeef\t-\tmodel\taa\n";
        let restored = from_snapshot_full(v1, true, "legacy.egsnap").unwrap();
        assert_eq!(restored.graph.n_vertices(), 2);
        assert!(restored.quarantine.is_empty());
        assert!(!restored.graph.was_materialized(ArtifactId(0xaa)));
        let m = restored.graph.vertex(ArtifactId(0xbb)).unwrap();
        assert_eq!(m.quality, 0.875);
        assert_eq!(m.parents, vec![ArtifactId(0xaa)]);
        // And a v1 parse error names the file and line.
        let bad = "EGSNAP 1\naa\tD\tnot_a_number\t0\t64\t0\t-\tsrc\tdesc\t\n";
        let err = from_snapshot_full(bad, true, "legacy.egsnap")
            .err()
            .expect("bad v1 line");
        let msg = err.to_string();
        assert!(msg.contains("legacy.egsnap"), "{msg}");
        assert!(msg.contains("record 2"), "{msg}");
    }

    #[test]
    fn shard_snapshot_round_trips_with_watermark() {
        let eg = populated();
        let quarantine = vec![QuarantineEntry {
            op_hash: 0xabc,
            name: "train\tweird".to_owned(),
            failures: 4,
        }];
        let text = to_shard_snapshot(&eg, &quarantine, 0x2a).unwrap();
        let restored = from_shard_snapshot(&text, true, IN_MEMORY).unwrap();
        assert_eq!(restored.watermark, 0x2a);
        assert_eq!(restored.quarantine, quarantine);
        assert_eq!(restored.graph.n_vertices(), eg.n_vertices());
        // The legacy loader refuses a per-shard snapshot outright.
        let err = from_snapshot_full(&text, true, IN_MEMORY).err().unwrap();
        assert!(err.to_string().contains("EGSNAP 3"), "{err}");
        // A v3 file without its watermark line is rejected.
        let body = "EGSNAP 3\n";
        let no_w = format!("{body}{CRC_PREFIX}{:08x}\n", crc32(body.as_bytes()));
        let err = from_shard_snapshot(&no_w, true, IN_MEMORY).err().unwrap();
        assert!(err.to_string().contains("W line"), "{err}");
    }

    #[test]
    fn shard_snapshot_tolerates_foreign_parents() {
        // A shard may hold a vertex whose parent lives in another shard:
        // the parent id is recorded but not resolved at load time.
        let body = "EGSNAP 3\nW\t5\nV\tbb\tM\t2\t1.5\t32\t0.875\tbeef\t-\tmodel\taa\t1\n";
        let text = format!("{body}{CRC_PREFIX}{:08x}\n", crc32(body.as_bytes()));
        let restored = from_shard_snapshot(&text, true, IN_MEMORY).unwrap();
        assert_eq!(restored.watermark, 5);
        let v = restored.graph.vertex(ArtifactId(0xbb)).unwrap();
        assert_eq!(v.parents, vec![ArtifactId(0xaa)]);
        assert!(v.children.is_empty());
        assert!(restored.graph.was_materialized(ArtifactId(0xbb)));
        assert!(!restored.graph.contains(ArtifactId(0xaa)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_snapshot("", true).is_err());
        assert!(from_snapshot("WRONG", true).is_err());
        assert!(from_snapshot("EGSNAP 1\nnot\tenough\tfields", true).is_err());
        // Parent referenced before definition.
        let bad = "EGSNAP 1\nff\tD\t1\t0\t0\t0\t-\t-\tdesc\taa";
        assert!(from_snapshot(bad, true).is_err());
        // v2 without its footer is treated as truncated.
        let headless = "EGSNAP 2\n";
        assert!(from_snapshot(headless, true).is_err());
    }

    #[test]
    fn corruption_is_detected_by_the_crc_footer() {
        let text = to_snapshot(&populated()).unwrap();
        // Flip one byte in the middle of the body.
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        let err = from_snapshot(&corrupted, true).err().expect("corrupt");
        assert!(matches!(err, GraphError::Corrupt { .. }), "{err}");
        // Truncation (losing the footer) is detected too.
        let truncated = &text[..text.len() - 20];
        assert!(from_snapshot(truncated, true).is_err());
    }

    #[test]
    fn strict_unescape_rejects_malformed_escapes() {
        assert_eq!(unescape("a\\tb").unwrap(), "a\tb");
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("unknown\\x").is_err());
        // A vertex line with a bad escape errors with line context
        // instead of silently corrupting the field. The populated graph's
        // source is named "train\tcsv", serialised with an escaped tab —
        // turn that escape into an unknown one.
        let eg = populated();
        let good = to_snapshot(&eg).unwrap();
        assert!(good.contains("train\\tcsv"));
        let bad = good.replacen("train\\tcsv", "train\\zcsv", 1);
        // (fix the CRC so the escape error, not the checksum, fires)
        let body_end = bad.rfind(CRC_PREFIX).unwrap();
        let rebuilt = format!(
            "{}{CRC_PREFIX}{:08x}\n",
            &bad[..body_end],
            crc32(&bad.as_bytes()[..body_end])
        );
        let err = from_snapshot(&rebuilt, true).err().expect("bad escape");
        assert!(err.to_string().contains("escape"), "{err}");
    }

    #[test]
    fn escaping_survives_hostile_names() {
        assert_eq!(unescape(&escape("a\tb\\c\nd")).unwrap(), "a\tb\\c\nd");
        let eg = populated();
        let restored = from_snapshot(&to_snapshot(&eg).unwrap(), true).unwrap();
        let src = restored.sources()[0];
        assert_eq!(
            restored.vertex(src).unwrap().source_name.as_deref(),
            Some("train\tcsv")
        );
    }
}
